"""Shared fixtures for the benchmark suite.

Scale note (see DESIGN.md): the paper's grid runs TPC-H scales 0.01-1 on a
3 GHz machine with PostgreSQL; pure-Python row processing is ~10^3x slower,
so the benchmarks run a proportionally smaller grid (scales 0.0005-0.002 by
default).  The *shapes* — linear growth in s and x, exponential world
counts vs linear representation size, attribute-level beating tuple-level
beating ULDBs — are what the suite reproduces and what EXPERIMENTS.md
records.  Set ``REPRO_BENCH_SCALE`` to raise the base scale.
"""

from __future__ import annotations

import os
import pathlib
from typing import Dict, Tuple

import pytest

from repro.ugen import UncertainTPCH, generate_uncertain

#: Base scale of the benchmark grid (multiplied into every paper scale).
BASE_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.001"))

#: The benchmark grid, shaped like the paper's (Figure 9): relative scales
#: mirror the paper's 0.01 / 0.05 / 0.1 ratios.
SCALES = [BASE_SCALE * f for f in (0.5, 1.0, 2.0)]
CORRELATIONS = [0.1, 0.25, 0.5]
UNCERTAINTIES = [0.001, 0.01, 0.1]

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

_cache: Dict[Tuple, UncertainTPCH] = {}


def uncertain_db(scale: float, x: float, z: float, seed: int = 42) -> UncertainTPCH:
    """Generate (and cache) one uncertain TPC-H instance.

    Deferred auto-indexes are force-built here so measured query times
    never include one-off index construction (lazy indexing would
    otherwise build them inside the first timed run).
    """
    key = (round(scale, 6), x, z, seed)
    if key not in _cache:
        bundle = generate_uncertain(scale=scale, x=x, z=z, seed=seed)
        bundle.udb.build_indexes()
        _cache[key] = bundle
    return _cache[key]


def write_result(name: str, text: str) -> None:
    """Persist a paper-style table under benchmarks/results/ and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")


@pytest.fixture(scope="session")
def default_db() -> UncertainTPCH:
    """The midpoint configuration used by single-config benchmarks."""
    return uncertain_db(BASE_SCALE, 0.01, 0.25)
