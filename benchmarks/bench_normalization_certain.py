"""Section 4 supporting benchmarks — normalization and certain answers.

No paper figure covers these directly, but Section 4 calls normalization
"an expensive operation per se" and certain answers "a conceptually simple
algorithm ... using relational algebra only" on normalized tuple-level
representations.  These benchmarks quantify both on query results of
growing descriptor width.
"""

import pytest

from repro.bench import Table, format_seconds, median_time
from repro.core import (
    certain_answers,
    execute_query,
    normalize_urelations,
)
from repro.core.query import Rel, UProject, USelect
from repro.relational import col, lit
from repro.relational.types import Date
from repro.tpch import q2_inner

from benchmarks.conftest import BASE_SCALE, uncertain_db, write_result


@pytest.fixture(scope="module")
def bundle():
    return uncertain_db(BASE_SCALE, 0.01, 0.25)


@pytest.fixture(scope="module")
def q2_result(bundle):
    """Q2's result: a U-relation with descriptors up to width 4."""
    return execute_query(q2_inner(), bundle.udb)


def test_normalization_of_query_result(benchmark, bundle, q2_result):
    """Algorithm 1 on a real query result."""
    normalized_list, world = benchmark.pedantic(
        lambda: normalize_urelations([q2_result], bundle.udb.world_table),
        rounds=3,
        iterations=1,
    )
    (normalized,) = normalized_list
    assert normalized.d_width == 1
    # normalization may expand rows (completions of partial descriptors)
    assert len(normalized) >= len(q2_result)


def test_certain_answers_on_query_result(benchmark, bundle, q2_result):
    """The Lemma 4.3 relational-algebra certain-answer query."""
    answer = benchmark.pedantic(
        lambda: certain_answers(q2_result, bundle.udb.world_table),
        rounds=3,
        iterations=1,
    )
    possible = {v for _d, _t, v in q2_result}
    assert set(answer.rows) <= possible


def test_normalization_growth_table(benchmark, bundle):
    """Report: result size before/after normalization per query."""

    def build():
        table = Table(
            ["query", "rows before", "max d-width", "rows after", "time"],
            title="Normalization cost on query results (Section 4)",
        )
        queries = {
            "pi_extendedprice(lineitem)": UProject(
                Rel("lineitem", "l"), ["l.extendedprice"]
            ),
            "sigma+pi (Q2 inner)": q2_inner(),
            "sigma_orderdate(orders)": UProject(
                USelect(
                    Rel("orders", "o"),
                    col("o.orderdate") > lit(Date("1995-03-15")),
                ),
                ["o.orderkey", "o.orderdate"],
            ),
        }
        out = {}
        for label, query in queries.items():
            result = execute_query(query, bundle.udb)
            width = max((len(d) for d, _, _ in result), default=1)
            elapsed, (normalized_list, _) = median_time(
                lambda: normalize_urelations([result], bundle.udb.world_table), 3
            )
            (normalized,) = normalized_list
            table.add(label, len(result), width, len(normalized), format_seconds(elapsed))
            out[label] = (len(result), len(normalized))
        write_result("normalization_growth.txt", table.render())
        return out

    out = benchmark.pedantic(build, rounds=1, iterations=1)
    for _label, (before, after) in out.items():
        assert after >= before * 0.5  # sanity: no pathological shrink
