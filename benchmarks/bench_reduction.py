"""Prop. 3.3 ablation — reduction as algebra vs. direct implementation.

The proposition states reduction is expressible as a relational algebra
program (semijoins with α ∧ ψ).  This ablation times the engine-executed
semijoin program against the direct Python implementation on generated
partitions and asserts they produce identical results — evidence that the
"purely relational" claim holds for maintenance operations too, not just
query answering.
"""

import pytest

from repro.bench import Table, format_seconds, median_time
from repro.core.reduction import reduce_partitions, reduce_partitions_relational

from benchmarks.conftest import BASE_SCALE, uncertain_db, write_result


@pytest.fixture(scope="module")
def partitions():
    bundle = uncertain_db(BASE_SCALE, 0.05, 0.25)
    # the 4-partition slice the Figure 13 query touches
    wanted = {"shipdate", "discount", "quantity", "extendedprice"}
    return [
        p
        for p in bundle.udb.partitions("lineitem")
        if set(p.value_names) <= wanted
    ]


def test_reduction_strategies_agree(benchmark, partitions):
    def build():
        relational = reduce_partitions_relational(partitions)
        direct = reduce_partitions(partitions, iterate=False)
        return relational, direct

    relational, direct = benchmark.pedantic(build, rounds=1, iterations=1)
    for a, b in zip(relational, direct):
        assert a == b


def test_reduction_direct(benchmark, partitions):
    benchmark.pedantic(
        lambda: reduce_partitions(partitions, iterate=False), rounds=3, iterations=1
    )


def test_reduction_relational(benchmark, partitions):
    benchmark.pedantic(
        lambda: reduce_partitions_relational(partitions), rounds=1, iterations=1
    )


def test_reduction_report(benchmark, partitions):
    def build():
        t_direct, _ = median_time(
            lambda: reduce_partitions(partitions, iterate=False), 3
        )
        t_relational, _ = median_time(
            lambda: reduce_partitions_relational(partitions), 1
        )
        table = Table(
            ["implementation", "median time", "partitions", "rows"],
            title="Prop. 3.3 reduction: direct vs relational-algebra program",
        )
        rows = sum(len(p) for p in partitions)
        table.add("direct (hash semijoin)", format_seconds(t_direct),
                  len(partitions), rows)
        table.add("algebra (SemiJoin cascade)", format_seconds(t_relational),
                  len(partitions), rows)
        write_result("reduction_ablation.txt", table.render())
        return t_direct, t_relational

    t_direct, t_relational = benchmark.pedantic(build, rounds=1, iterations=1)
    assert t_direct > 0 and t_relational > 0
