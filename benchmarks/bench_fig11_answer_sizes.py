"""Figure 11 — query answer sizes vs uncertainty ratio, per correlation.

The paper plots, for scale 1 and each z in {0.1, 0.25, 0.5}, the answer
sizes of Q1-Q3 against the uncertainty ratio x (log-log).  Shape claims:
answer sizes increase with x and (marginally) with z.
"""

import pytest

from repro.bench import Table
from repro.core import execute_query
from repro.tpch import ALL_QUERIES

from benchmarks.conftest import (
    CORRELATIONS,
    SCALES,
    UNCERTAINTIES,
    uncertain_db,
    write_result,
)

LARGEST = SCALES[-1]


def test_fig11_answer_sizes_table(benchmark):
    """Regenerate the three Figure 11 series (answer size vs x, per z)."""

    def build():
        table = Table(
            ["query", "z", "x", "answer tuples"],
            title=f"Figure 11 analogue: answer sizes at scale {LARGEST}",
        )
        sizes = {}
        for label, wrapped, _inner in ALL_QUERIES:
            for z in CORRELATIONS:
                for x in UNCERTAINTIES:
                    bundle = uncertain_db(LARGEST, x, z)
                    answer = execute_query(wrapped(), bundle.udb)
                    sizes[(label, z, x)] = len(answer)
                    table.add(label, z, x, len(answer))
        write_result("fig11_answer_sizes.txt", table.render())
        return sizes

    sizes = benchmark.pedantic(build, rounds=1, iterations=1)

    # shape: answers grow with x (for the selective queries Q1/Q2)
    for label in ("Q1", "Q2"):
        for z in CORRELATIONS:
            assert sizes[(label, z, 0.1)] >= sizes[(label, z, 0.001)]
    # Q2 strictly grows (its filters touch three uncertain attributes)
    for z in CORRELATIONS:
        assert sizes[("Q2", z, 0.1)] > sizes[("Q2", z, 0.001)]


@pytest.mark.parametrize("x", UNCERTAINTIES)
def test_fig11_q2_answer_computation(benchmark, x):
    """Time Q2 end-to-end per uncertainty ratio (the Figure 11 workload)."""
    from repro.tpch import q2

    bundle = uncertain_db(LARGEST, x, 0.25)
    answer = benchmark.pedantic(
        lambda: execute_query(q2(), bundle.udb), rounds=3, iterations=1
    )
    assert len(answer) > 0
