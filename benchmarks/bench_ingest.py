"""Read-write serving throughput — mixed INSERT / point-lookup (TCP).

The write path's headline number: N concurrent clients each run a mixed
workload over the TCP line protocol — one prepared INSERT of a unique
tuple for every three prepared point lookups — against one `QueryServer`.
Lookups are plan-cache hits served by index scans over the segmented
column store; inserts append one segment per statement under the `dml`
admission class and serialize on the write lock, so the benchmark
measures exactly the contention story the log-structured design promises:
writers queue against each other, readers keep streaming.

Each run appends to ``benchmarks/results/BENCH_ingest.json`` (a
timestamped trajectory, like ``BENCH_serve.json``), and the suite gates on

* correctness under concurrency: every insert issued by every client is
  visible at the end (no lost updates, no coalesced writes), and
* no read-only regression: the most recent ``BENCH_serve.json`` run —
  refreshed by ``make bench-serve`` earlier in the same CI job — still
  meets the serving acceptance bar (>= 2x rps at 4 clients on every
  Figure 12 query), so landing the write path cannot quietly degrade the
  read-only numbers.
"""

from __future__ import annotations

import datetime
import json
import pathlib
import socket
import threading
import time

import pytest

from repro.core.descriptor import Descriptor
from repro.core.udatabase import UDatabase
from repro.core.urelation import URelation, tid_column
from repro.server import QueryServer

from benchmarks.conftest import RESULTS_DIR

#: Seed rows in the served relation (point lookups draw from these ids).
SEED_ROWS = 2000

CLIENT_COUNTS = (1, 4, 8)
MEASURE_SECONDS = 1.0

#: One INSERT per LOOKUPS_PER_INSERT lookups — a write-heavy OLTP-ish mix.
LOOKUPS_PER_INSERT = 3

LOOKUP_SQL = "possible (select grp from items where id = $1)"
INSERT_SQL = "insert into items values ($1, $2)"


def _items_udb() -> UDatabase:
    """A two-partition relation (``id`` | ``grp``) seeded with certain rows."""
    udb = UDatabase()
    tid = tid_column("items")
    rows = [(i, (i, f"g{i % 17}")) for i in range(SEED_ROWS)]
    p_id = URelation.build(
        [(Descriptor(), t, (v[0],)) for t, v in rows], tid, ["id"]
    )
    p_grp = URelation.build(
        [(Descriptor(), t, (v[1],)) for t, v in rows], tid, ["grp"]
    )
    udb.add_relation("items", ["id", "grp"], [p_id, p_grp])
    udb.build_indexes()
    return udb


def append_ingest_run(payload: dict) -> None:
    """Append a timestamped run to ``BENCH_ingest.json`` (trajectory)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = pathlib.Path(RESULTS_DIR) / "BENCH_ingest.json"
    if path.exists():
        data = json.loads(path.read_text())
    else:
        data = {
            "benchmark": "read-write serving throughput (TCP, mixed insert/lookup)",
            "runs": [],
        }
    entry = {
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        )
    }
    entry.update(payload)
    data["runs"].append(entry)
    path.write_text(json.dumps(data, indent=2) + "\n")


class _Client:
    def __init__(self, address):
        self.sock = socket.create_connection(address, timeout=30)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.file = self.sock.makefile("rwb")

    def rpc(self, **request):
        self.file.write(json.dumps(request).encode("utf-8") + b"\n")
        self.file.flush()
        return json.loads(self.file.readline())

    def close(self):
        self.sock.close()


def _measure_mixed(address, clients: int, seconds: float, id_base: int):
    """(requests/sec, inserts issued) for ``clients`` concurrent mixed loops.

    Every client inserts ids from its own disjoint range (``id_base`` +
    a per-slot stripe), so the caller can verify that *every* issued
    insert is visible afterwards.
    """
    barrier = threading.Barrier(clients + 1)
    counts = [0] * clients
    inserted: list = [[] for _ in range(clients)]
    errors = []

    def client_loop(slot: int) -> None:
        try:
            client = _Client(address)
            try:
                ok_l = client.rpc(op="prepare", name="lookup", sql=LOOKUP_SQL)
                ok_i = client.rpc(op="prepare", name="add", sql=INSERT_SQL)
                warm = client.rpc(op="execute", name="lookup", params=[slot])
                if not (ok_l["ok"] and ok_i["ok"] and warm["ok"]):
                    raise AssertionError(f"warmup failed: {ok_l} / {ok_i} / {warm}")
                barrier.wait(timeout=60)
                deadline = time.perf_counter() + seconds
                done = 0
                next_id = id_base + slot * 1_000_000
                while time.perf_counter() < deadline:
                    if done % (LOOKUPS_PER_INSERT + 1) == 0:
                        answer = client.rpc(
                            op="execute", name="add", params=[next_id, "fresh"]
                        )
                        if not (answer["ok"] and answer["count"] == 1):
                            raise AssertionError(f"insert failed: {answer}")
                        inserted[slot].append(next_id)
                        next_id += 1
                    else:
                        key = (done * 37) % SEED_ROWS
                        answer = client.rpc(op="execute", name="lookup", params=[key])
                        if not answer["ok"]:
                            raise AssertionError(f"lookup failed: {answer}")
                    done += 1
                counts[slot] = done
            finally:
                client.close()
        except BaseException as error:
            errors.append((slot, repr(error)))
            barrier.abort()

    threads = [
        threading.Thread(target=client_loop, args=(slot,)) for slot in range(clients)
    ]
    for t in threads:
        t.start()
    try:
        barrier.wait(timeout=60)
    except threading.BrokenBarrierError:
        pass
    started = time.perf_counter()
    for t in threads:
        t.join(timeout=seconds * 20 + 60)
    elapsed = time.perf_counter() - started
    assert not errors, f"client errors: {errors[:3]}"
    all_inserted = [i for slot_ids in inserted for i in slot_ids]
    return sum(counts) / elapsed, all_inserted


def test_ingest_mixed_throughput():
    """rps at 1/4/8 TCP clients on the mixed insert/lookup workload, with
    every issued insert verified visible at the end."""
    udb = _items_udb()
    server = QueryServer(udb, workers=8)
    handle = server.serve_tcp()
    rates = {}
    issued: list = []
    try:
        for round_no, clients in enumerate(CLIENT_COUNTS):
            rps, ids = _measure_mixed(
                handle.address,
                clients,
                MEASURE_SECONDS,
                id_base=SEED_ROWS + round_no * 100_000_000,
            )
            rates[clients] = rps
            issued.extend(ids)
        # correctness gate: no lost updates, no coalesced writes
        check = _Client(handle.address)
        try:
            answer = check.rpc(
                op="query",
                sql=f"possible (select id from items where id >= {SEED_ROWS})",
            )
            assert answer["ok"], answer
            visible = {row[0] for row in answer["rows"]}
        finally:
            check.close()
        missing = set(issued) - visible
        assert not missing, f"lost inserts: {sorted(missing)[:5]} of {len(issued)}"
        stats = server.stats()
        assert stats["admission"]["dml"]["admitted"] >= len(issued)
    finally:
        handle.close()
        server.close()

    payload = {
        "seed_rows": SEED_ROWS,
        "measure_seconds": MEASURE_SECONDS,
        "lookups_per_insert": LOOKUPS_PER_INSERT,
        "rps": {str(c): round(rates[c], 1) for c in CLIENT_COUNTS},
        "inserts": len(issued),
        "executor": stats["executor"],
        "admission": stats["admission"],
    }
    append_ingest_run(payload)
    print("\ningest throughput:", json.dumps(payload["rps"], indent=2))


"""Compaction phase: 5k statements of churn, then VACUUM, then the gate —
post-compaction point lookups must be within 1.2x of a fresh load of the
same logical content.  A compacted stack that stays slower than a rebuilt
one would mean compaction is not actually reclaiming the read path."""

CHURN_STATEMENTS = 5_000
LOOKUP_TRIALS = 5
LOOKUPS_PER_TRIAL = 300


def _median_lookup_seconds(udb, keys) -> float:
    """Best-of-trials median latency of one prepared point lookup."""
    from repro.sql import prepare

    prepared = prepare(LOOKUP_SQL, udb)
    prepared.run(keys[0])  # warm: plan once, fault in indexes
    best = float("inf")
    for _ in range(LOOKUP_TRIALS):
        samples = []
        for i in range(LOOKUPS_PER_TRIAL):
            key = keys[i % len(keys)]
            started = time.perf_counter()
            prepared.run(key)
            samples.append(time.perf_counter() - started)
        samples.sort()
        best = min(best, samples[len(samples) // 2])
    return best


def test_compaction_restores_point_lookup_latency():
    """Churn -> VACUUM returns every partition to one clean segment, and
    point lookups on the compacted store run within 1.2x of a fresh load
    of identical content."""
    from repro.sql import execute_sql, prepare

    udb = _items_udb()
    add = prepare(INSERT_SQL, udb)
    bump = prepare("update items set grp = $2 where id = $1", udb)
    drop = prepare("delete from items where id = $1", udb)
    next_id = SEED_ROWS
    live_churn: list = []
    for i in range(CHURN_STATEMENTS):
        step = i % 5
        if step == 3 and live_churn:
            bump.run(live_churn[i % len(live_churn)], f"g{i % 17}")
        elif step == 4 and len(live_churn) > 1:
            drop.run(live_churn.pop(i % len(live_churn)))
        else:
            add.run(next_id, f"g{next_id % 17}")
            live_churn.append(next_id)
            next_id += 1

    health = udb.segment_health(publish=False)
    segments_before = sum(h["segment_count"] for h in health.values())
    assert segments_before > len(health), "churn produced no segment stacks"

    started = time.perf_counter()
    result = udb.compact()
    vacuum_seconds = time.perf_counter() - started
    for name, h in udb.segment_health(publish=False).items():
        assert h["segment_count"] == 1, f"{name} still stacked: {h}"
        assert h["deleted_ratio"] == 0.0, f"{name} still carries dead rows: {h}"

    # the fresh-load twin: identical logical content, built in one shot
    rows = execute_sql("possible (select id, grp from items)", udb).rows
    fresh = UDatabase()
    tid = tid_column("items")
    fresh.add_relation(
        "items",
        ["id", "grp"],
        [
            URelation.build(
                [(Descriptor(), t, (row[0],)) for t, row in enumerate(rows)],
                tid,
                ["id"],
            ),
            URelation.build(
                [(Descriptor(), t, (row[1],)) for t, row in enumerate(rows)],
                tid,
                ["grp"],
            ),
        ],
    )
    fresh.build_indexes()

    keys = [row[0] for row in rows[:: max(1, len(rows) // 97)]]
    for key in keys[:5]:  # same answers before timing anything
        compacted_answer = sorted(map(tuple, execute_sql(LOOKUP_SQL, udb, params=[key]).rows))
        fresh_answer = sorted(map(tuple, execute_sql(LOOKUP_SQL, fresh, params=[key]).rows))
        assert compacted_answer == fresh_answer, key

    compacted_s = _median_lookup_seconds(udb, keys)
    fresh_s = _median_lookup_seconds(fresh, keys)
    ratio = compacted_s / max(fresh_s, 1e-9)
    assert ratio <= 1.2, (
        f"post-compaction lookups are {ratio:.2f}x a fresh load "
        f"({compacted_s * 1e6:.1f}us vs {fresh_s * 1e6:.1f}us)"
    )

    payload = {
        "phase": "compaction",
        "churn_statements": CHURN_STATEMENTS,
        "segments_before_vacuum": segments_before,
        "rows_dropped": result.rows_dropped,
        "vacuum_seconds": round(vacuum_seconds, 4),
        "lookup_median_us": {
            "compacted": round(compacted_s * 1e6, 2),
            "fresh_load": round(fresh_s * 1e6, 2),
        },
        "latency_ratio": round(ratio, 3),
        "gate": "<= 1.2x fresh load",
    }
    append_ingest_run(payload)
    print("\ncompaction gate:", json.dumps(payload, indent=2))


def test_read_only_serving_numbers_did_not_regress():
    """No-regression gate on the read-only numbers: the latest
    ``BENCH_serve.json`` run (refreshed by ``make bench-serve`` earlier in
    the same CI job) must still meet the serving acceptance bar."""
    path = pathlib.Path(RESULTS_DIR) / "BENCH_serve.json"
    if not path.exists():
        pytest.skip("no BENCH_serve.json baseline; run make bench-serve first")
    runs = json.loads(path.read_text())["runs"]
    assert runs, "BENCH_serve.json holds no runs"
    latest = runs[-1]
    for name, numbers in latest["queries"].items():
        assert numbers["speedup_4v1"] >= 2.0, (
            f"read-only serving regressed: {name} is {numbers['speedup_4v1']}x "
            f"at 4 clients in the latest run ({latest['timestamp']})"
        )
