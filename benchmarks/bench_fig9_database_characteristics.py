"""Figure 9 — database characteristics over the (scale, z, x) grid.

The paper's Figure 9 reports, per parameter setting: the number of
represented worlds (astronomically large, e.g. 10^857), the maximum number
of local worlds in a component (the largest variable domain), and the
database size.  The claim: worlds grow exponentially in x and s while the
representation grows linearly.

This benchmark regenerates the table on the scaled-down grid and asserts
the two shape claims, plus it times the generator itself.
"""

import math

import pytest

from repro.bench import Table
from repro.ugen import generate_uncertain

from benchmarks.conftest import (
    BASE_SCALE,
    CORRELATIONS,
    SCALES,
    UNCERTAINTIES,
    uncertain_db,
    write_result,
)


def test_fig9_characteristics_table(benchmark):
    """Regenerate the Figure 9 table (worlds, local worlds, size)."""

    def build():
        table = Table(
            ["scale", "z", "x", "log10(worlds)", "max lworlds", "repr rows", "ratio"],
            title="Figure 9 analogue: U-relational database characteristics",
        )
        rows = []
        for scale in SCALES:
            for z in CORRELATIONS:
                for x in [0.0] + UNCERTAINTIES:
                    bundle = (
                        uncertain_db(scale, x, z)
                        if x > 0
                        else generate_uncertain(scale=scale, x=0.0, z=z, seed=42)
                    )
                    record = (
                        scale,
                        z,
                        x,
                        round(bundle.log10_worlds(), 1),
                        bundle.max_local_worlds(),
                        bundle.representation_rows(),
                        round(bundle.size_ratio(), 2),
                    )
                    rows.append(record)
                    table.add(*record)
        write_result("fig9_characteristics.txt", table.render())
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)

    # shape assertion 1: worlds grow exponentially in x, size linearly
    by_key = {(s, z, x): r for (s, z, x, *r) in rows}
    for scale in SCALES:
        for z in CORRELATIONS:
            lo = by_key[(scale, z, 0.001)]
            hi = by_key[(scale, z, 0.1)]
            assert hi[0] > 10 * lo[0]          # log10 worlds: >10x more digits
            assert hi[2] < 50 * lo[2]           # rows: far from exponential

    # shape assertion 2: size grows roughly linearly with scale
    for z in CORRELATIONS:
        small = by_key[(SCALES[0], z, 0.01)]
        large = by_key[(SCALES[-1], z, 0.01)]
        factor = SCALES[-1] / SCALES[0]
        assert large[2] / small[2] == pytest.approx(factor, rel=0.5)


def test_fig9_generation_speed(benchmark):
    """Time one generator run at the grid midpoint."""
    result = benchmark.pedantic(
        lambda: generate_uncertain(scale=BASE_SCALE, x=0.01, z=0.25, seed=1),
        rounds=3,
        iterations=1,
    )
    assert result.representation_rows() > 0


def test_fig9_worlds_exceed_paper_scale_when_extrapolated():
    """Sanity: the paper's 10^(8*10^6) world counts are reachable — the
    world count is exponential in uncertain fields, which scale linearly."""
    small = uncertain_db(SCALES[0], 0.1, 0.25)
    large = uncertain_db(SCALES[-1], 0.1, 0.25)
    ratio = large.log10_worlds() / max(small.log10_worlds(), 1e-9)
    assert ratio == pytest.approx(SCALES[-1] / SCALES[0], rel=0.6)
