"""Figures 6-7 / Theorems 5.2 & 5.6 — succinctness separations.

Example 5.1's ring-correlated world-set (t_i.A always equals
t_{(i+1) mod n}.B) separates the representations:

* U-relations: 2n tuples per partition (Figure 6b),
* after sigma_{A=B}(R): still 2n representation tuples (Figure 7b), while
  the WSD of the same answer needs one component with 2^n local worlds
  (Figure 7a) — normalization realizes exactly that blow-up,
* or-sets (k independent binary attributes of one tuple): U-relations 2k
  rows, ULDB 2^k alternatives (Theorem 5.6).

The benchmark measures representation sizes over growing n and asserts the
exponential-vs-linear separation.
"""

import pytest

from repro.bench import Table
from repro.core import (
    Descriptor,
    UDatabase,
    UProject,
    URelation,
    USelect,
    WorldTable,
    execute_query,
)
from repro.core.normalization import normalize_urelations
from repro.core.query import Rel
from repro.core.urelation import tid_column
from repro.relational import col
from repro.uldb import udatabase_to_uldb
from repro.wsd import udatabase_to_wsd

from benchmarks.conftest import write_result


def ring_database(n: int) -> UDatabase:
    """Example 5.1 / Figure 6(b)."""
    world = WorldTable({f"c{i}": ["w1", "w2"] for i in range(n)})
    a_triples, b_triples = [], []
    for i in range(n):
        a_triples.append((Descriptor({f"c{i}": "w1"}), f"t{i}", (1,)))
        a_triples.append((Descriptor({f"c{i}": "w2"}), f"t{i}", (0,)))
        j = (i + 1) % n
        b_triples.append((Descriptor({f"c{i}": "w1"}), f"t{j}", (1,)))
        b_triples.append((Descriptor({f"c{i}": "w2"}), f"t{j}", (0,)))
    udb = UDatabase(world)
    udb.add_relation(
        "r",
        ["A", "B"],
        [
            URelation.build(a_triples, tid_column("r"), ["A"]),
            URelation.build(b_triples, tid_column("r"), ["B"]),
        ],
    )
    return udb


def or_set_database(k: int) -> UDatabase:
    """Theorem 5.6's or-set case: k independent binary fields, one tuple."""
    world = WorldTable({f"v{i}": [1, 2] for i in range(k)})
    parts = []
    for i in range(k):
        parts.append(
            URelation.build(
                [
                    (Descriptor({f"v{i}": 1}), "t", (0,)),
                    (Descriptor({f"v{i}": 2}), "t", (1,)),
                ],
                tid_column("r"),
                [f"a{i}"],
            )
        )
    udb = UDatabase(world)
    udb.add_relation("r", [f"a{i}" for i in range(k)], parts)
    return udb


def test_fig6_7_table(benchmark):
    """Sizes over n for the ring world-set and the sigma_{A=B} answer."""

    def build():
        table = Table(
            ["n", "U-rel rows", "answer rows", "WSD cells", "answer WSD lworlds"],
            title="Figures 6-7 analogue: U-relations vs WSDs on the ring world-set",
        )
        records = {}
        for n in (2, 4, 6, 8, 10):
            udb = ring_database(n)
            u_rows = sum(len(p) for p in udb.partitions("r"))
            wsd = udatabase_to_wsd(udb)
            query = UProject(USelect(Rel("r"), col("A").eq(col("B"))), ["A", "B"])
            answer = execute_query(query, udb)
            _, answer_world = normalize_urelations([answer], udb.world_table)
            lworlds = answer_world.max_domain_size()
            records[n] = (u_rows, len(answer), wsd.size_cells(), lworlds)
            table.add(n, u_rows, len(answer), wsd.size_cells(), lworlds)
        write_result("fig6_7_succinctness.txt", table.render())
        return records

    records = benchmark.pedantic(build, rounds=1, iterations=1)

    for n, (u_rows, answer_rows, _cells, lworlds) in records.items():
        assert u_rows == 4 * n          # 2n per partition (Figure 6b)
        assert answer_rows == 2 * n     # linear answer (Figure 7b)
        assert lworlds == 2 ** n        # exponential WSD (Figure 7a)


def test_theorem_5_6_uldb_blowup(benchmark):
    """Or-set separation: ULDB alternatives are exponential in the arity."""

    def build():
        table = Table(
            ["k", "U-rel rows", "ULDB alternatives"],
            title="Theorem 5.6 analogue: U-relations vs ULDBs on or-set relations",
        )
        records = {}
        for k in (2, 4, 6, 8, 10):
            udb = or_set_database(k)
            u_rows = sum(len(p) for p in udb.partitions("r"))
            uldb = udatabase_to_uldb(udb)
            alts = uldb.get("r").alternative_count()
            records[k] = (u_rows, alts)
            table.add(k, u_rows, alts)
        write_result("thm5_6_uldb_blowup.txt", table.render())
        return records

    records = benchmark.pedantic(build, rounds=1, iterations=1)
    for k, (u_rows, alts) in records.items():
        assert u_rows == 2 * k
        assert alts == 2 ** k


def test_psi_join_stays_linear(benchmark):
    """Timing: the U-relational sigma_{A=B} answer is computed without
    expanding worlds (polynomial; Example 5.3's point)."""
    udb = ring_database(12)
    query = UProject(USelect(Rel("r"), col("A").eq(col("B"))), ["A", "B"])
    answer = benchmark.pedantic(
        lambda: execute_query(query, udb), rounds=3, iterations=1
    )
    assert len(answer) == 24
