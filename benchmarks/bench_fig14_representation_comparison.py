"""Figure 14 — attribute-level vs tuple-level U-relations vs ULDBs.

The paper evaluates queries (without the poss operator and without
erroneous-tuple removal or confidence computation) on three representations
of the same world-set and finds: attribute-level U-relations several times
faster than tuple-level U-relations, and an order of magnitude faster than
ULDBs; tuple-level representations explode in size as parameters grow.

We reproduce the comparison with a customer-orders join workload (a Q1-style
query over the two uncertain relations) at small scales — the ULDB join is
quadratic in x-tuples, exactly the cost profile the paper measures.

The paper reaches the blow-up regime through scale (15M tuple-level rows vs
80K per partition at s=0.01, x=0.1); at our Python-feasible scales the same
regime is reached by raising x: at x=0.05 the representations are on par,
at x=0.15 tuple-level and ULDBs have exploded and attribute-level wins by
an order of magnitude — the crossover Figure 14 demonstrates.
"""

import pytest

from repro.bench import Table, format_seconds, median_time
from repro.core import UDatabase, execute_query
from repro.core.query import Rel, UJoin, UProject, USelect
from repro.relational import col, lit
from repro.relational.types import Date
from repro.ugen import generate_uncertain, tuple_level_size, tuple_level_udatabase
from repro.uldb import join as uldb_join
from repro.uldb import select as uldb_select
from repro.uldb import udatabase_to_uldb

from benchmarks.conftest import BASE_SCALE, write_result

SCALE = BASE_SCALE * 0.5
TABLES = ["customer", "orders"]
SETTINGS = [(SCALE, 0.05), (SCALE, 0.15)]


def workload():
    """Q1's customer-orders core: BUILDING customers' recent orders."""
    customer = USelect(Rel("customer", "c"), col("c.mktsegment").eq(lit("BUILDING")))
    orders = USelect(Rel("orders", "o"), col("o.orderdate") > lit(Date("1995-03-15")))
    return UProject(
        UJoin(customer, orders, col("c.custkey").eq(col("o.custkey"))),
        ["o.orderkey", "o.orderdate"],
    )


def _bundle(scale, x):
    return generate_uncertain(scale=scale, x=x, z=0.1, seed=42, tables=TABLES)


def _run_attribute_level(udb: UDatabase):
    return execute_query(workload(), udb)


def _run_tuple_level(tl_udb: UDatabase):
    return execute_query(workload(), tl_udb)


def _run_uldb(uldb):
    customer = uldb_select(
        uldb, uldb.get("customer"), col("mktsegment").eq(lit("BUILDING"))
    )
    orders = uldb_select(
        uldb, uldb.get("orders"), col("orderdate") > lit(Date("1995-03-15"))
    )
    # no minimization, matching the paper's Figure 14 protocol
    return uldb_join(
        uldb, customer, orders, col("l.custkey").eq(col("r.custkey")),
        minimize_result=False,
    )


def test_fig14_comparison_table(benchmark):
    """The Figure 14 bars: per-representation evaluation time and size."""

    def build():
        table = Table(
            ["setting", "representation", "size (rows/alts)", "median time"],
            title="Figure 14 analogue: representation comparison",
        )
        results = {}
        for scale, x in SETTINGS:
            bundle = _bundle(scale, x)
            label = f"s={scale:g},x={x}"

            attr_rows = sum(
                len(p)
                for name in bundle.udb.relation_names()
                for p in bundle.udb.partitions(name)
            )
            t_attr, _ = median_time(lambda: _run_attribute_level(bundle.udb), 3)
            table.add(label, "attribute-level U-rel", attr_rows, format_seconds(t_attr))

            tl_udb = tuple_level_udatabase(bundle.udb)
            tl_rows = sum(
                len(p)
                for name in tl_udb.relation_names()
                for p in tl_udb.partitions(name)
            )
            t_tuple, _ = median_time(lambda: _run_tuple_level(tl_udb), 3)
            table.add(label, "tuple-level U-rel", tl_rows, format_seconds(t_tuple))

            uldb = udatabase_to_uldb(bundle.udb)
            alts = sum(
                uldb.get(n).alternative_count() for n in ("customer", "orders")
            )
            t_uldb, _ = median_time(lambda: _run_uldb(uldb), 1)
            table.add(label, "ULDB (Trio-style)", alts, format_seconds(t_uldb))

            results[(scale, x)] = (t_attr, t_tuple, t_uldb, attr_rows, tl_rows)
        write_result("fig14_representations.txt", table.render())
        return results

    results = benchmark.pedantic(build, rounds=1, iterations=1)

    # shape claims of Figure 14 / Section 6, in the blow-up regime (x=0.15):
    t_attr, t_tuple, t_uldb, attr_rows, tl_rows = results[(SCALE, 0.15)]
    assert t_attr < t_tuple, "attribute-level must beat tuple-level"
    assert t_attr * 5 < t_uldb, "attribute-level must beat the ULDB clearly"
    assert tl_rows > attr_rows, "tuple-level representation must have exploded"


def test_fig14_tuple_level_blowup_growth(benchmark):
    """Tuple-level size grows super-linearly in x (the 15M-vs-80K effect)."""

    def measure():
        sizes = {}
        for x in (0.01, 0.05, 0.15):
            bundle = _bundle(SCALE, x)
            attr = sum(
                len(p)
                for n in bundle.udb.relation_names()
                for p in bundle.udb.partitions(n)
            )
            tl = sum(
                tuple_level_size(bundle.udb, n)
                for n in bundle.udb.relation_names()
            )
            sizes[x] = (attr, tl)
        return sizes

    sizes = benchmark.pedantic(measure, rounds=1, iterations=1)
    attr_growth = sizes[0.15][0] / sizes[0.01][0]
    tl_growth = sizes[0.15][1] / sizes[0.01][1]
    assert tl_growth > 2 * attr_growth  # tuple level grows much faster


@pytest.mark.parametrize(
    "representation", ["attribute-level", "tuple-level", "uldb"]
)
def test_fig14_single_setting(benchmark, representation):
    """Individually timed bars at (s, x=0.01) for the benchmark report."""
    bundle = _bundle(SCALE, 0.15)
    if representation == "attribute-level":
        benchmark.pedantic(
            lambda: _run_attribute_level(bundle.udb), rounds=3, iterations=1
        )
    elif representation == "tuple-level":
        tl_udb = tuple_level_udatabase(bundle.udb)
        benchmark.pedantic(lambda: _run_tuple_level(tl_udb), rounds=3, iterations=1)
    else:
        uldb = udatabase_to_uldb(bundle.udb)
        benchmark.pedantic(lambda: _run_uldb(uldb), rounds=1, iterations=1)
