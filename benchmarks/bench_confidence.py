"""Section 7 — probabilistic confidence computation: exact vs Monte-Carlo.

The paper's closing section sketches probabilistic U-relations (a P column
on W) and notes that confidence computation is inherently hard, motivating
approximation.  This benchmark compares the exact variable-elimination
computation against Monte-Carlo estimation on query results, and checks the
estimator's accuracy.
"""

import pytest

from repro.bench import Table, format_seconds, median_time
from repro.core import (
    execute_query,
    monte_carlo_confidence,
    tuple_confidences,
)
from repro.tpch import q2_inner

from benchmarks.conftest import BASE_SCALE, write_result
from repro.ugen import generate_uncertain


@pytest.fixture(scope="module")
def bundle():
    return generate_uncertain(
        scale=BASE_SCALE, x=0.05, z=0.25, seed=21, tables=["lineitem"]
    )


@pytest.fixture(scope="module")
def result(bundle):
    return execute_query(q2_inner(), bundle.udb)


def test_exact_confidence(benchmark, bundle, result):
    confs = benchmark.pedantic(
        lambda: tuple_confidences(result, bundle.udb.world_table, method="exact"),
        rounds=3,
        iterations=1,
    )
    assert all(0.0 <= p <= 1.0 + 1e-9 for p in confs.values())


def test_monte_carlo_confidence(benchmark, bundle, result):
    confs = benchmark.pedantic(
        lambda: tuple_confidences(
            result, bundle.udb.world_table, method="monte-carlo", samples=500
        ),
        rounds=3,
        iterations=1,
    )
    assert all(0.0 <= p <= 1.0 for p in confs.values())


def test_confidence_accuracy_table(benchmark, bundle, result):
    """Monte-Carlo error vs sample count, against the exact values."""

    def build():
        exact = tuple_confidences(result, bundle.udb.world_table, method="exact")
        table = Table(
            ["samples", "max abs error", "mean abs error", "time"],
            title="Monte-Carlo confidence accuracy (Section 7)",
        )
        errors = {}
        for samples in (100, 1000, 5000):
            elapsed, estimates = median_time(
                lambda: tuple_confidences(
                    result,
                    bundle.udb.world_table,
                    method="monte-carlo",
                    samples=samples,
                    seed=5,
                ),
                1,
            )
            diffs = [abs(estimates[k] - exact[k]) for k in exact]
            max_err = max(diffs) if diffs else 0.0
            mean_err = sum(diffs) / len(diffs) if diffs else 0.0
            errors[samples] = max_err
            table.add(samples, round(max_err, 4), round(mean_err, 4),
                      format_seconds(elapsed))
        write_result("confidence_accuracy.txt", table.render())
        return errors

    errors = benchmark.pedantic(build, rounds=1, iterations=1)
    # more samples -> tighter estimates (allow noise at tiny error levels)
    assert errors[5000] <= errors[100] + 0.05
    assert errors[5000] < 0.15
