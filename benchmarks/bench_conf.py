"""Confidence computation: vectorized kernel vs the old tuple-at-a-time path.

Three claims, each gated:

* **Kernel speedup** — the memoized engine (shared per-variable vectors,
  cached satisfying-assignment sets, shared assignment-probability vectors
  across groups) computes a grouped exact-confidence workload at least 3x
  faster (median) than the pre-kernel algorithm, which re-enumerated the
  touched assignment space per group with dict-based valuations and
  per-lookup ``world_table.probability`` calls.  The baseline below is a
  self-contained copy of that old code.
* **Approximation accuracy** — the Karp-Luby-style estimator lands within
  ``epsilon`` of the exact value on >= 95% of seeds (its advertised
  ``delta = 0.05``).
* **Heavy lineage** — a single connected component whose assignment space
  (~4^41) no exact method can enumerate is answered by ``method="auto"``
  well inside the admission queue timeout, through the full operator path.

Each run appends to ``benchmarks/results/BENCH_conf.json`` (a timestamped
trajectory, like ``BENCH_serve.json``).
"""

from __future__ import annotations

import datetime
import itertools
import json
import pathlib

from repro.bench import median_time, timed
from repro.core import (
    Conf,
    Descriptor,
    Rel,
    UDatabase,
    URelation,
    WorldTable,
    execute_query,
)
from repro.core.probability import (
    ConfidenceEngine,
    approx_confidence,
    assignment_space_size,
    exact_confidence,
)
from repro.core.urelation import tid_column
from repro.server import AdmissionPolicy

from benchmarks.conftest import RESULTS_DIR

# ----------------------------------------------------------------------
# the OLD algorithm (pre-kernel), copied verbatim as the baseline
# ----------------------------------------------------------------------
def _old_exact_confidence(descriptors, world_table):
    """The tuple-at-a-time exact path this PR replaced: per-group product
    enumeration with dict assignments and per-lookup probability calls."""
    descriptors = [d for d in descriptors]
    if not descriptors:
        return 0.0
    if any(d.empty for d in descriptors):
        return 1.0
    touched = sorted({var for d in descriptors for var in d.variables()})
    domains = [world_table.domain(v) for v in touched]
    total = 0.0
    for combo in itertools.product(*domains):
        assignment = dict(zip(touched, combo))
        if any(d.extended_by({**assignment, "_t": 0}) for d in descriptors):
            p = 1.0
            for var, value in assignment.items():
                p *= world_table.probability(var, value)
            total += p
    return total


# ----------------------------------------------------------------------
# workloads
# ----------------------------------------------------------------------
N_VARS = 12
DOMAIN = [1, 2, 3, 4, 5, 6]
N_GROUPS = 48


def make_world() -> WorldTable:
    weights = [3, 2, 2, 1, 1, 1]
    total = sum(weights)
    probs = [w / total for w in weights]
    return WorldTable(
        {f"v{i}": list(DOMAIN) for i in range(N_VARS)},
        probabilities={f"v{i}": list(probs) for i in range(N_VARS)},
    )


def grouped_workload():
    """48 groups of 3 descriptors; variable windows repeat across groups.

    Groups ``g`` and ``g + 8`` touch the same 4-variable window (and often
    share whole descriptors) — the shared-lineage shape of a join result,
    which is exactly what the memoization layer is built to exploit.
    """
    groups = []
    for g in range(N_GROUPS):
        window = [(g % 8), (g % 8) + 1, (g % 8) + 2, (g % 8) + 3]
        value = DOMAIN[g % 4]
        groups.append(
            [
                Descriptor({f"v{window[0]}": value, f"v{window[1]}": value}),
                Descriptor({f"v{window[1]}": value, f"v{window[2]}": DOMAIN[0]}),
                Descriptor({f"v{window[3]}": value}),
            ]
        )
    return groups


def heavy_lineage_udb():
    """One group whose lineage is a 41-variable connected chain.

    40 two-variable descriptors chain v0-v1, v1-v2, ..., v39-v40 over a
    domain of size 4: one component, assignment space 4^41 (~4.8e24),
    total singleton mass T = 40/16 = 2.5 — far beyond exact enumeration,
    comfortably samplable.
    """
    world = WorldTable(
        {f"v{i}": [1, 2, 3, 4] for i in range(41)},
        probabilities={f"v{i}": [0.25] * 4 for i in range(41)},
    )
    triples = [
        (Descriptor({f"v{i}": 1, f"v{i+1}": 1}), i + 1, ("hit",))
        for i in range(40)
    ]
    u = URelation.build(triples, tid_column("t"), ["outcome"])
    udb = UDatabase(world)
    udb.add_relation("t", ["outcome"], [u])
    return udb


def append_conf_run(payload: dict) -> None:
    """Append a timestamped run to ``BENCH_conf.json`` (trajectory)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = pathlib.Path(RESULTS_DIR) / "BENCH_conf.json"
    if path.exists():
        data = json.loads(path.read_text())
    else:
        data = {
            "benchmark": "confidence computation (kernel vs tuple-at-a-time)",
            "runs": [],
        }
    entry = {
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        )
    }
    entry.update(payload)
    data["runs"].append(entry)
    path.write_text(json.dumps(data, indent=2) + "\n")


# ----------------------------------------------------------------------
# gates
# ----------------------------------------------------------------------
def test_kernel_speedup_and_accuracy_trajectory():
    """Exact kernel >= 3x over the old path; approx within epsilon at 95%;
    heavy lineage answered under the admission deadline by auto."""
    world = make_world()
    groups = grouped_workload()

    # -- exact: memoized kernel vs the old per-group enumeration --------
    def kernel_run():
        engine = ConfidenceEngine(world)  # fresh: no cross-run carryover
        return [engine.confidence(group, method="exact") for group in groups]

    def baseline_run():
        return [_old_exact_confidence(group, world) for group in groups]

    kernel_time, kernel_values = median_time(kernel_run, repeats=3)
    baseline_time, baseline_values = median_time(baseline_run, repeats=3)
    for ours, theirs in zip(kernel_values, baseline_values):
        assert abs(ours - theirs) < 1e-9
    speedup = baseline_time / kernel_time

    # -- approx: (epsilon, delta) over 40 seeds -------------------------
    chain = [
        Descriptor({f"v{i}": DOMAIN[0], f"v{i+1}": DOMAIN[0]}) for i in range(6)
    ]
    exact = exact_confidence(chain, world)
    epsilon = 0.05
    seeds = 40
    within = sum(
        abs(approx_confidence(chain, world, epsilon=epsilon, delta=0.05, seed=s) - exact)
        <= epsilon
        for s in range(seeds)
    )

    # -- heavy lineage: only sampling finishes under the deadline -------
    udb = heavy_lineage_udb()
    touched = [f"v{i}" for i in range(41)]
    space = assignment_space_size(touched, udb.world_table, 1 << 16)
    assert space is None, "the heavy case must exceed the exact-space limit"
    deadline = AdmissionPolicy().queue_timeout

    def heavy_run():
        return execute_query(
            Conf(Rel("t"), method="auto", epsilon=0.05, delta=0.05), udb
        )

    # one cold run: warm repeats would serve the memoized group result
    heavy_time, answer = timed(heavy_run)
    assert answer.conf["method"] == "auto"  # as requested...
    assert answer.conf["approx_groups"] == 1  # ...resolved to sampling
    assert answer.conf["exact_groups"] == 0
    (heavy_conf,) = [row[-1] for row in answer.rows]
    # feasible interval of the 40-descriptor union: [1/16, 1]
    assert 1 / 16 <= heavy_conf <= 1.0

    payload = {
        "groups": len(groups),
        "kernel_seconds": round(kernel_time, 6),
        "baseline_seconds": round(baseline_time, 6),
        "speedup": round(speedup, 2),
        "approx_within_epsilon": f"{within}/{seeds}",
        "heavy_seconds": round(heavy_time, 6),
        "heavy_deadline": deadline,
        "heavy_confidence": round(heavy_conf, 4),
    }
    append_conf_run(payload)
    print("\nconfidence bench:", json.dumps(payload, indent=2))

    assert speedup >= 3.0, f"kernel only {speedup:.2f}x over the old path"
    assert within >= int(0.95 * seeds), f"approx within epsilon on {within}/{seeds}"
    assert heavy_time < deadline, (
        f"heavy lineage took {heavy_time:.2f}s, admission deadline {deadline}s"
    )
