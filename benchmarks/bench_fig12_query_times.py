"""Figure 12 — query evaluation time vs scale, uncertainty, correlation.

The paper's nine log-log diagrams (3 queries x 3 correlation ratios, one
line per uncertainty ratio) show evaluation time growing roughly linearly
with the scale factor and the uncertainty ratio, moderately with the
correlation ratio.

The pytest-benchmark cases time each query at the grid midpoint per
uncertainty ratio; the report regenerates the full 3x3x3 series with
median-of-3 wall-clock timings (the paper uses the median of 4 runs).
"""

import datetime
import json
import pathlib
import statistics

import pytest

from repro.bench import Table, format_seconds, median_time, timed
from repro.core import execute_query
from repro.relational.expressions import compile_cache_stats, reset_compile_cache
from repro.relational.plancache import plan_cache_stats, reset_plan_cache
from repro.tpch import ALL_QUERIES, q1, q2, q3

from benchmarks.conftest import (
    BASE_SCALE,
    CORRELATIONS,
    RESULTS_DIR,
    SCALES,
    UNCERTAINTIES,
    uncertain_db,
    write_result,
)

QUERIES = {"Q1": q1, "Q2": q2, "Q3": q3}

#: Config for the access-path (index) head-to-head.  The scale is fixed —
#: not multiplied by ``REPRO_BENCH_SCALE`` — because the comparison only
#: means something when executor work dominates the per-query fixed costs
#: (translation, optimization, planning); index advantages grow with data
#: size.  x is the Figure 12 grid's midpoint uncertainty ratio.
INDEX_BENCH_SCALE = 0.008
INDEX_BENCH_X = 0.01
INDEX_BENCH_Z = 0.25
INDEX_BENCH_PAIRS = 7

#: Config for the plan-cache head-to-head.  Fixed small scale: the cache
#: removes the per-query *fixed* costs (translation + optimization +
#: physical planning), whose relative weight is largest when the executor
#: work is small — which is also the serving-layer regime (many small
#: repeated queries) the cache exists for.
PLAN_BENCH_SCALE = 0.001
PLAN_BENCH_PAIRS = 9

#: Config for the observability-overhead gate.  Warm-cache (executor-only)
#: runs at the access-path scale: per-run work small enough that the
#: fixed per-query obs cost (trace spans, counter bumps, histogram
#: observes) shows up in the ratio, large enough that timings are stable.
OBS_BENCH_PAIRS = 9
OBS_OVERHEAD_CEILING = 1.05


def append_bench_run(kind: str, payload: dict) -> None:
    """Append a timestamped run to ``BENCH_fig12.json`` (trajectory).

    The file accumulates one entry per recorded head-to-head instead of
    being overwritten, so the perf trajectory across PRs stays readable.
    A pre-trajectory file (a single run object) is wrapped as the first
    entry.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = pathlib.Path(RESULTS_DIR) / "BENCH_fig12.json"
    if path.exists():
        data = json.loads(path.read_text())
        if "runs" not in data:  # legacy single-run layout
            legacy = dict(data)
            legacy.setdefault("kind", "index-access-paths")
            data = {"figure": "12 (addenda)", "runs": [legacy]}
    else:
        data = {"figure": "12 (addenda)", "runs": []}
    entry = {
        "kind": kind,
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
    }
    entry.update(payload)
    data["runs"].append(entry)
    path.write_text(json.dumps(data, indent=2) + "\n")


def test_fig12_time_series_table(benchmark):
    """Regenerate the Figure 12 series: time(s, x, z) for Q1-Q3."""

    def build():
        table = Table(
            ["query", "z", "x", "scale", "median time", "answer tuples"],
            title="Figure 12 analogue: query evaluation time",
        )
        times = {}
        for label, builder in QUERIES.items():
            for z in CORRELATIONS:
                for x in UNCERTAINTIES:
                    for scale in SCALES:
                        bundle = uncertain_db(scale, x, z)
                        elapsed, answer = median_time(
                            lambda: execute_query(builder(), bundle.udb),
                            repeats=3,
                        )
                        times[(label, z, x, scale)] = elapsed
                        table.add(
                            label, z, x, scale, format_seconds(elapsed), len(answer)
                        )
        write_result("fig12_query_times.txt", table.render())
        return times

    times = benchmark.pedantic(build, rounds=1, iterations=1)

    # shape: evaluation time grows with scale (roughly linearly, allow slack)
    for label in QUERIES:
        for z in CORRELATIONS:
            small = times[(label, z, 0.01, SCALES[0])]
            large = times[(label, z, 0.01, SCALES[-1])]
            assert large >= small * 0.8  # monotone up to noise
            assert large <= small * 100  # far from quadratic blow-up


@pytest.mark.parametrize("label", ["Q1", "Q2", "Q3"])
@pytest.mark.parametrize("x", UNCERTAINTIES)
def test_fig12_query(benchmark, label, x):
    """Per-query timing at the grid midpoint (one line point of Figure 12)."""
    bundle = uncertain_db(BASE_SCALE, x, 0.25)
    builder = QUERIES[label]
    benchmark.pedantic(
        lambda: execute_query(builder(), bundle.udb), rounds=3, iterations=1
    )


def test_fig12_vectorized_speedup(benchmark):
    """Head-to-head: block-at-a-time executor vs legacy row iterators.

    The paper's thesis is that translated U-relation queries are fast
    because they run on an efficient conventional engine; this measures how
    much the vectorized executor closes that gap.  Requires >= 2x median
    speedup on at least one join-bearing query, with identical answers.
    """
    bundle = uncertain_db(BASE_SCALE * 2, 0.1, 0.25)

    def compare():
        table = Table(
            ["query", "rows mode", "blocks mode", "speedup"],
            title="Figure 12 addendum: vectorized executor speedup",
        )
        speedups = {}
        for label, builder in QUERIES.items():
            query = builder()
            t_rows, a_rows = median_time(
                lambda: execute_query(query, bundle.udb, mode="rows"), repeats=3
            )
            t_blocks, a_blocks = median_time(
                lambda: execute_query(query, bundle.udb, mode="blocks"), repeats=3
            )
            assert a_rows == a_blocks  # Relation bag equality (NULL-safe)
            speedups[label] = t_rows / t_blocks
            table.add(
                label,
                format_seconds(t_rows),
                format_seconds(t_blocks),
                f"{speedups[label]:.2f}x",
            )
        write_result("fig12_vectorized_speedup.txt", table.render())
        return speedups

    speedups = benchmark.pedantic(compare, rounds=1, iterations=1)
    # Q2 and Q3 are the join-bearing queries (psi-condition hash joins)
    assert max(speedups["Q2"], speedups["Q3"]) >= 2.0


def test_fig12_index_speedup(benchmark):
    """Access paths vs the PR 1 vectorized baseline, machine-readable.

    Times each Figure 12 query with cost-based access-path selection
    (``use_indexes=True``: tid-index nested-loop joins for the partition
    merges, index scans for selective predicates) against the pure
    scan-and-hash executor (``use_indexes=False`` — exactly the PR 1
    behaviour), asserting identical answers.  Runs are interleaved in
    baseline/indexed pairs and the reported median speedup is the median
    of the per-pair ratios — back-to-back runs see the same machine
    state, so drift cancels where a ratio of two independent medians
    would not.  The JSON records the median and best times per mode so
    the perf trajectory is tracked across PRs.
    """
    bundle = uncertain_db(INDEX_BENCH_SCALE, INDEX_BENCH_X, INDEX_BENCH_Z)

    def compare():
        table = Table(
            ["query", "baseline (median)", "indexed (median)", "speedup", "answers"],
            title="Figure 12 addendum: cost-based access paths vs PR 1 baseline",
        )
        queries = {}
        for label, builder in QUERIES.items():
            query = builder()
            # both arms pinned to mode="blocks": this head-to-head isolates
            # access paths on the PR 1 executor (the session default moved
            # on to mode="columns", measured by the columnar benchmark)
            answer_base = execute_query(
                query, bundle.udb, use_indexes=False, mode="blocks"
            )
            answer_idx = execute_query(
                query, bundle.udb, use_indexes=True, mode="blocks"
            )
            assert answer_base == answer_idx  # identical bags, NULL-safe
            base, indexed = [], []
            for _ in range(INDEX_BENCH_PAIRS):
                elapsed, _ = timed(
                    lambda: execute_query(
                        query, bundle.udb, use_indexes=False, mode="blocks"
                    )
                )
                base.append(elapsed)
                elapsed, _ = timed(
                    lambda: execute_query(
                        query, bundle.udb, use_indexes=True, mode="blocks"
                    )
                )
                indexed.append(elapsed)
            entry = {
                "baseline_median_s": statistics.median(base),
                "indexed_median_s": statistics.median(indexed),
                "baseline_best_s": min(base),
                "indexed_best_s": min(indexed),
                "speedup_median": statistics.median(
                    b / i for b, i in zip(base, indexed)
                ),
                "speedup_best": min(base) / min(indexed),
                "answer_rows": len(answer_idx),
                "identical_answers": True,
            }
            queries[label] = entry
            table.add(
                label,
                format_seconds(entry["baseline_median_s"]),
                format_seconds(entry["indexed_median_s"]),
                f"{entry['speedup_median']:.2f}x",
                entry["answer_rows"],
            )
        append_bench_run(
            "index-access-paths",
            {
                "baseline": "PR 1 block-at-a-time executor (use_indexes=False)",
                "config": {
                    "scale": INDEX_BENCH_SCALE,
                    "x": INDEX_BENCH_X,
                    "z": INDEX_BENCH_Z,
                    "seed": 42,
                    "interleaved_pairs": INDEX_BENCH_PAIRS,
                },
                "queries": queries,
            },
        )
        write_result("fig12_index_speedup.txt", table.render())
        return queries

    queries = benchmark.pedantic(compare, rounds=1, iterations=1)
    # the committed BENCH_fig12.json records >=1.3x on Q1 and Q2; keep the
    # in-test floor a notch lower so background load cannot flake the suite
    assert sum(1 for q in queries.values() if q["speedup_median"] >= 1.15) >= 2


def test_fig12_columnar_speedup(benchmark):
    """Columnar/fused executor vs the PR 2 indexed baseline (CI gate).

    Both configurations use cost-based access paths; the baseline runs the
    PR 2 default (``mode="blocks"``: row batches, unfused plans), the
    contender the new default (``mode="columns"``: columnar batches, fused
    scan→filter→project pipelines, folded join projections, generated
    probe kernels).  Answers must be identical bags.  Runs are interleaved
    in baseline/columnar pairs and the reported median speedup is the
    median of per-pair ratios.  The compile cache is measured explicitly:
    after one warm-up execution the second run must generate no code at
    all (``codegen_misses_second_run == 0``).

    CI regression gate: the columnar median must not regress below the
    freshly measured PR 2 indexed baseline on Q1 and Q2.
    """
    bundle = uncertain_db(INDEX_BENCH_SCALE, INDEX_BENCH_X, INDEX_BENCH_Z)

    def compare():
        table = Table(
            ["query", "blocks (median)", "columns (median)", "speedup", "answers"],
            title="Figure 12 addendum: columnar fused executor vs PR 2 indexed",
        )
        queries = {}
        for label, builder in QUERIES.items():
            query = builder()
            answer_blocks = execute_query(query, bundle.udb, mode="blocks")
            # codegen proof: a cold cache misses on the first columnar
            # run and must not miss again on the second
            reset_compile_cache()
            answer_columns = execute_query(query, bundle.udb, mode="columns")
            first = compile_cache_stats()
            execute_query(query, bundle.udb, mode="columns")
            second = compile_cache_stats()
            codegen_misses_second_run = second["misses"] - first["misses"]
            assert answer_blocks == answer_columns  # identical bags, NULL-safe
            assert sorted(answer_blocks.rows, key=repr) == sorted(
                answer_columns.rows, key=repr
            )
            blocks, columns = [], []
            for _ in range(INDEX_BENCH_PAIRS):
                elapsed, _ = timed(
                    lambda: execute_query(query, bundle.udb, mode="blocks")
                )
                blocks.append(elapsed)
                elapsed, _ = timed(
                    lambda: execute_query(query, bundle.udb, mode="columns")
                )
                columns.append(elapsed)
            entry = {
                "blocks_median_s": statistics.median(blocks),
                "columns_median_s": statistics.median(columns),
                "blocks_best_s": min(blocks),
                "columns_best_s": min(columns),
                "speedup_median": statistics.median(
                    b / c for b, c in zip(blocks, columns)
                ),
                "speedup_best": min(blocks) / min(columns),
                "answer_rows": len(answer_columns),
                "identical_answers": True,
                "codegen_misses_second_run": codegen_misses_second_run,
            }
            queries[label] = entry
            table.add(
                label,
                format_seconds(entry["blocks_median_s"]),
                format_seconds(entry["columns_median_s"]),
                f"{entry['speedup_median']:.2f}x",
                entry["answer_rows"],
            )
        append_bench_run(
            "columnar-fusion",
            {
                "baseline": "PR 2 indexed block executor (mode='blocks')",
                "config": {
                    "scale": INDEX_BENCH_SCALE,
                    "x": INDEX_BENCH_X,
                    "z": INDEX_BENCH_Z,
                    "seed": 42,
                    "interleaved_pairs": INDEX_BENCH_PAIRS,
                },
                "queries": queries,
            },
        )
        write_result("fig12_columnar_speedup.txt", table.render())
        return queries

    queries = benchmark.pedantic(compare, rounds=1, iterations=1)
    # second-run queries must be codegen-free (the compile cache works)
    for entry in queries.values():
        assert entry["codegen_misses_second_run"] == 0
    # CI gate: columnar must not regress below the PR 2 indexed baseline
    # on Q1/Q2 (the committed results record ~1.3-1.4x headroom)
    assert queries["Q1"]["speedup_median"] >= 1.0
    assert queries["Q2"]["speedup_median"] >= 1.0


def test_fig12_plan_cache_speedup(benchmark):
    """Prepared-plan cache: warm (cached plan) vs cold (replan every run).

    The warm arm executes each Figure 12 query from its cached physical
    plan — zero translation/optimization/planning work, proven by the plan
    cache's miss counter staying flat on the second run — while the cold
    arm resets the plan cache before every execution, re-paying the full
    fixed cost.  Answers must be identical to the cold run in all three
    executor modes.  Runs are interleaved in cold/warm pairs and the
    reported median speedup is the median of per-pair ratios.

    CI gates (``make bench-smoke`` fails on either): warm-run planning
    misses must be zero for every query, and the warm median must beat the
    cold median on Q1 and Q2.
    """
    bundle = uncertain_db(PLAN_BENCH_SCALE, INDEX_BENCH_X, INDEX_BENCH_Z)

    def compare():
        table = Table(
            ["query", "cold (median)", "warm (median)", "speedup", "planning misses (2nd run)"],
            title="Figure 12 addendum: prepared-plan cache, warm vs cold",
        )
        queries = {}
        for label, builder in QUERIES.items():
            query = builder()
            # answer proof: the cached plan answers exactly what a fresh
            # plan answers, in every executor mode
            answers = {}
            for mode in ("rows", "blocks", "columns"):
                reset_plan_cache()
                cold_answer = execute_query(query, bundle.udb, mode=mode)
                warm_answer = execute_query(query, bundle.udb, mode=mode)
                assert warm_answer == cold_answer  # identical bags, NULL-safe
                answers[mode] = warm_answer
            assert answers["rows"] == answers["blocks"] == answers["columns"]
            # planning proof: the second run performs zero planning work
            reset_plan_cache()
            execute_query(query, bundle.udb)
            first = plan_cache_stats()
            execute_query(query, bundle.udb)
            second = plan_cache_stats()
            planning_misses_second_run = second["misses"] - first["misses"]
            # timing: interleaved cold/warm pairs
            cold, warm = [], []
            for _ in range(PLAN_BENCH_PAIRS):
                reset_plan_cache()
                elapsed, _ = timed(lambda: execute_query(query, bundle.udb))
                cold.append(elapsed)
                elapsed, _ = timed(lambda: execute_query(query, bundle.udb))
                warm.append(elapsed)
            entry = {
                "cold_median_s": statistics.median(cold),
                "warm_median_s": statistics.median(warm),
                "cold_best_s": min(cold),
                "warm_best_s": min(warm),
                "speedup_median": statistics.median(
                    c / w for c, w in zip(cold, warm)
                ),
                "speedup_best": min(cold) / min(warm),
                "answer_rows": len(answers["columns"]),
                "identical_answers_all_modes": True,
                "planning_misses_second_run": planning_misses_second_run,
            }
            queries[label] = entry
            table.add(
                label,
                format_seconds(entry["cold_median_s"]),
                format_seconds(entry["warm_median_s"]),
                f"{entry['speedup_median']:.2f}x",
                planning_misses_second_run,
            )
        append_bench_run(
            "plan-cache",
            {
                "baseline": "cold: plan cache reset before every execution",
                "config": {
                    "scale": PLAN_BENCH_SCALE,
                    "x": INDEX_BENCH_X,
                    "z": INDEX_BENCH_Z,
                    "seed": 42,
                    "interleaved_pairs": PLAN_BENCH_PAIRS,
                },
                "queries": queries,
            },
        )
        write_result("fig12_plan_cache_speedup.txt", table.render())
        return queries

    queries = benchmark.pedantic(compare, rounds=1, iterations=1)
    # hard gate: repeated queries are executor-only
    for entry in queries.values():
        assert entry["planning_misses_second_run"] == 0
    # the warm arm must measurably beat the cold arm where fixed costs
    # matter (Q1/Q2; Q3's six-way join planning is also its biggest win)
    assert queries["Q1"]["speedup_median"] > 1.0
    assert queries["Q2"]["speedup_median"] > 1.0


def test_fig12_obs_overhead(benchmark):
    """Observability must be nearly free: <= 5% on Figure 12 medians.

    Times each query with the obs layer fully engaged — a request trace
    owning the run (spans, per-operator actuals, histogram observe,
    counter bumps) — against the same run with observability disabled
    (``set_enabled(False)``, the ``REPRO_OBS=off`` switch).  Both arms use
    a warm plan cache, so the measured work is executor-only: the regime
    where the fixed per-query obs cost weighs the most.  Runs interleave
    in off/on pairs; the gate takes ``min(median per-pair ratio, ratio of
    medians)`` so one scheduler hiccup in either estimator cannot flake
    the suite, and answers must be identical in both arms.
    """
    from repro.obs import request_trace, set_enabled

    bundle = uncertain_db(INDEX_BENCH_SCALE, INDEX_BENCH_X, INDEX_BENCH_Z)

    def traced_run(query, label):
        with request_trace(sql=label):
            return execute_query(query, bundle.udb)

    def compare():
        table = Table(
            ["query", "obs off (median)", "obs on (median)", "overhead", "answers"],
            title="Figure 12 addendum: observability overhead, on vs off",
        )
        queries = {}
        for label, builder in QUERIES.items():
            query = builder()
            # warm the plan cache and prove both arms answer identically
            answer_on = traced_run(query, label)
            previous = set_enabled(False)
            try:
                answer_off = traced_run(query, label)
            finally:
                set_enabled(previous)
            assert answer_on == answer_off  # identical bags, NULL-safe
            off, on = [], []
            for _ in range(OBS_BENCH_PAIRS):
                previous = set_enabled(False)
                try:
                    elapsed, _ = timed(lambda: traced_run(query, label))
                finally:
                    set_enabled(previous)
                off.append(elapsed)
                elapsed, _ = timed(lambda: traced_run(query, label))
                on.append(elapsed)
            ratio_of_medians = statistics.median(on) / statistics.median(off)
            median_pair_ratio = statistics.median(
                n / f for n, f in zip(on, off)
            )
            entry = {
                "off_median_s": statistics.median(off),
                "on_median_s": statistics.median(on),
                "off_best_s": min(off),
                "on_best_s": min(on),
                "overhead_ratio_of_medians": ratio_of_medians,
                "overhead_median_pair_ratio": median_pair_ratio,
                "overhead_gated": min(ratio_of_medians, median_pair_ratio),
                "answer_rows": len(answer_on),
                "identical_answers": True,
            }
            queries[label] = entry
            table.add(
                label,
                format_seconds(entry["off_median_s"]),
                format_seconds(entry["on_median_s"]),
                f"{(entry['overhead_gated'] - 1) * 100:+.1f}%",
                entry["answer_rows"],
            )
        append_bench_run(
            "obs-overhead",
            {
                "baseline": "observability disabled (REPRO_OBS=off switch)",
                "config": {
                    "scale": INDEX_BENCH_SCALE,
                    "x": INDEX_BENCH_X,
                    "z": INDEX_BENCH_Z,
                    "seed": 42,
                    "interleaved_pairs": OBS_BENCH_PAIRS,
                },
                "queries": queries,
            },
        )
        write_result("fig12_obs_overhead.txt", table.render())
        return queries

    queries = benchmark.pedantic(compare, rounds=1, iterations=1)
    # CI gate: the full obs layer costs at most 5% on Q1 and Q2
    assert queries["Q1"]["overhead_gated"] <= OBS_OVERHEAD_CEILING
    assert queries["Q2"]["overhead_gated"] <= OBS_OVERHEAD_CEILING
