"""Figure 12 — query evaluation time vs scale, uncertainty, correlation.

The paper's nine log-log diagrams (3 queries x 3 correlation ratios, one
line per uncertainty ratio) show evaluation time growing roughly linearly
with the scale factor and the uncertainty ratio, moderately with the
correlation ratio.

The pytest-benchmark cases time each query at the grid midpoint per
uncertainty ratio; the report regenerates the full 3x3x3 series with
median-of-3 wall-clock timings (the paper uses the median of 4 runs).
"""

import pytest

from repro.bench import Table, format_seconds, median_time
from repro.core import execute_query
from repro.tpch import ALL_QUERIES, q1, q2, q3

from benchmarks.conftest import (
    BASE_SCALE,
    CORRELATIONS,
    SCALES,
    UNCERTAINTIES,
    uncertain_db,
    write_result,
)

QUERIES = {"Q1": q1, "Q2": q2, "Q3": q3}


def test_fig12_time_series_table(benchmark):
    """Regenerate the Figure 12 series: time(s, x, z) for Q1-Q3."""

    def build():
        table = Table(
            ["query", "z", "x", "scale", "median time", "answer tuples"],
            title="Figure 12 analogue: query evaluation time",
        )
        times = {}
        for label, builder in QUERIES.items():
            for z in CORRELATIONS:
                for x in UNCERTAINTIES:
                    for scale in SCALES:
                        bundle = uncertain_db(scale, x, z)
                        elapsed, answer = median_time(
                            lambda: execute_query(builder(), bundle.udb),
                            repeats=3,
                        )
                        times[(label, z, x, scale)] = elapsed
                        table.add(
                            label, z, x, scale, format_seconds(elapsed), len(answer)
                        )
        write_result("fig12_query_times.txt", table.render())
        return times

    times = benchmark.pedantic(build, rounds=1, iterations=1)

    # shape: evaluation time grows with scale (roughly linearly, allow slack)
    for label in QUERIES:
        for z in CORRELATIONS:
            small = times[(label, z, 0.01, SCALES[0])]
            large = times[(label, z, 0.01, SCALES[-1])]
            assert large >= small * 0.8  # monotone up to noise
            assert large <= small * 100  # far from quadratic blow-up


@pytest.mark.parametrize("label", ["Q1", "Q2", "Q3"])
@pytest.mark.parametrize("x", UNCERTAINTIES)
def test_fig12_query(benchmark, label, x):
    """Per-query timing at the grid midpoint (one line point of Figure 12)."""
    bundle = uncertain_db(BASE_SCALE, x, 0.25)
    builder = QUERIES[label]
    benchmark.pedantic(
        lambda: execute_query(builder(), bundle.udb), rounds=3, iterations=1
    )


def test_fig12_vectorized_speedup(benchmark):
    """Head-to-head: block-at-a-time executor vs legacy row iterators.

    The paper's thesis is that translated U-relation queries are fast
    because they run on an efficient conventional engine; this measures how
    much the vectorized executor closes that gap.  Requires >= 2x median
    speedup on at least one join-bearing query, with identical answers.
    """
    bundle = uncertain_db(BASE_SCALE * 2, 0.1, 0.25)

    def compare():
        table = Table(
            ["query", "rows mode", "blocks mode", "speedup"],
            title="Figure 12 addendum: vectorized executor speedup",
        )
        speedups = {}
        for label, builder in QUERIES.items():
            query = builder()
            t_rows, a_rows = median_time(
                lambda: execute_query(query, bundle.udb, mode="rows"), repeats=3
            )
            t_blocks, a_blocks = median_time(
                lambda: execute_query(query, bundle.udb, mode="blocks"), repeats=3
            )
            assert a_rows == a_blocks  # Relation bag equality (NULL-safe)
            speedups[label] = t_rows / t_blocks
            table.add(
                label,
                format_seconds(t_rows),
                format_seconds(t_blocks),
                f"{speedups[label]:.2f}x",
            )
        write_result("fig12_vectorized_speedup.txt", table.render())
        return speedups

    speedups = benchmark.pedantic(compare, rounds=1, iterations=1)
    # Q2 and Q3 are the join-bearing queries (psi-condition hash joins)
    assert max(speedups["Q2"], speedups["Q3"]) >= 2.0
