"""Serving throughput — requests/sec at 1/4/8 client threads (TCP).

The serving subsystem's headline number: N concurrent clients issue the
Figure 12 queries as prepared statements over the TCP line protocol
against one `QueryServer`.  Repeated queries are plan-cache hits
(executor-only), identical in-flight requests coalesce single-flight, and
admission classifies each request by its cached cost class.

What makes N clients faster than one on a single-core GIL build: with one
client, every request serializes client-side protocol work (serialize,
syscalls, parse) behind server-side execution; with four, the clients'
protocol work overlaps the server's execution, and the hot cached queries
coalesce — K requests arriving during one execution are all answered by
that execution.  On multi-core builds the worker pool adds real CPU
parallelism on top.

Each run appends to ``benchmarks/results/BENCH_serve.json`` (a
timestamped trajectory, like ``BENCH_fig12.json``), and the test gates on
the acceptance bar: >= 2x requests/sec at 4 clients vs 1 on the cached
queries, and partition-parallel scans answering byte-identically.
"""

from __future__ import annotations

import datetime
import json
import pathlib
import socket
import threading
import time
from collections import Counter

from repro.server import QueryServer

from benchmarks.conftest import BASE_SCALE, RESULTS_DIR, uncertain_db

#: Figure 12 queries in the SQL surface (Figure 8 dialect).
SERVE_QUERIES = {
    "Q1": (
        "possible (select o.orderkey, o.orderdate, o.shippriority "
        "from customer c, orders o, lineitem l "
        "where c.mktsegment = 'BUILDING' and c.custkey = o.custkey "
        "and o.orderkey = l.orderkey "
        "and o.orderdate > '1995-03-15' and l.shipdate < '1995-03-17')"
    ),
    "Q2": (
        "possible (select extendedprice from lineitem "
        "where shipdate between '1994-01-01' and '1996-01-01' "
        "and discount between 0.05 and 0.08 and quantity < 24)"
    ),
    "Q3": (
        "possible (select n1.name, n2.name "
        "from supplier s, lineitem l, orders o, customer c, "
        "nation n1, nation n2 "
        "where n2.name = 'IRAQ' and n1.name = 'GERMANY' "
        "and c.nationkey = n2.nationkey and s.suppkey = l.suppkey "
        "and o.orderkey = l.orderkey and c.custkey = o.custkey "
        "and s.nationkey = n1.nationkey)"
    ),
}

CLIENT_COUNTS = (1, 4, 8)
MEASURE_SECONDS = 1.2
SERVE_X = 0.01
SERVE_Z = 0.25


def append_serve_run(payload: dict) -> None:
    """Append a timestamped run to ``BENCH_serve.json`` (trajectory)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = pathlib.Path(RESULTS_DIR) / "BENCH_serve.json"
    if path.exists():
        data = json.loads(path.read_text())
    else:
        data = {"benchmark": "serving throughput (TCP, Figure 12 queries)", "runs": []}
    entry = {
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        )
    }
    entry.update(payload)
    data["runs"].append(entry)
    path.write_text(json.dumps(data, indent=2) + "\n")


class _Client:
    def __init__(self, address):
        self.sock = socket.create_connection(address, timeout=30)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.file = self.sock.makefile("rwb")

    def rpc(self, **request):
        self.file.write(json.dumps(request).encode("utf-8") + b"\n")
        self.file.flush()
        return json.loads(self.file.readline())

    def close(self):
        self.sock.close()


def _measure_rps(address, sql: str, clients: int, seconds: float) -> float:
    """Requests completed per second by ``clients`` concurrent connections."""
    barrier = threading.Barrier(clients + 1)
    counts = [0] * clients
    errors = []

    def client_loop(slot: int) -> None:
        try:
            client = _Client(address)
            try:
                prepared = client.rpc(op="prepare", name="q", sql=sql)
                warm = client.rpc(op="execute", name="q")
                if not (prepared["ok"] and warm["ok"]):
                    raise AssertionError(f"warmup failed: {prepared} / {warm}")
                barrier.wait(timeout=60)  # synchronized start
                deadline = time.perf_counter() + seconds
                done = 0
                while time.perf_counter() < deadline:
                    answer = client.rpc(op="execute", name="q")
                    if not answer["ok"]:
                        raise AssertionError(f"request failed: {answer}")
                    done += 1
                counts[slot] = done
            finally:
                client.close()
        except BaseException as error:
            # break the barrier so nobody (including the timer thread)
            # blocks forever on a dead client
            errors.append((slot, repr(error)))
            barrier.abort()

    threads = [
        threading.Thread(target=client_loop, args=(slot,)) for slot in range(clients)
    ]
    for t in threads:
        t.start()
    try:
        barrier.wait(timeout=60)
    except threading.BrokenBarrierError:
        pass  # a client died before the start line; errors has the story
    started = time.perf_counter()
    for t in threads:
        t.join(timeout=seconds * 20 + 60)
    elapsed = time.perf_counter() - started
    assert not errors, f"client errors: {errors[:3]}"
    return sum(counts) / elapsed


def test_serve_throughput_scales_with_clients():
    """rps at 1/4/8 TCP clients on each cached Figure 12 query.

    Gate (acceptance): >= 2x rps at 4 clients vs 1 on *every* cached
    Figure 12 query — cached plans + single-flight coalescing must make
    concurrency pay even on a single-core GIL build (measured ~3.3-4.0x
    at 4 clients, ~5.9-7.8x at 8, on a 1-core container).
    """
    bundle = uncertain_db(BASE_SCALE, SERVE_X, SERVE_Z)
    server = QueryServer(bundle.udb, workers=8)
    handle = server.serve_tcp()
    per_query: dict = {}
    try:
        for name, sql in SERVE_QUERIES.items():
            rates = {}
            for clients in CLIENT_COUNTS:
                rates[clients] = _measure_rps(
                    handle.address, sql, clients, MEASURE_SECONDS
                )
            per_query[name] = {
                "rps": {str(c): round(rates[c], 1) for c in CLIENT_COUNTS},
                "speedup_4v1": round(rates[4] / rates[1], 2),
                "speedup_8v1": round(rates[8] / rates[1], 2),
            }
        stats = server.stats()
    finally:
        handle.close()
        server.close()

    speedups = [per_query[name]["speedup_4v1"] for name in per_query]
    payload = {
        "scale": BASE_SCALE,
        "x": SERVE_X,
        "z": SERVE_Z,
        "measure_seconds": MEASURE_SECONDS,
        "queries": per_query,
        "executor": stats["executor"],
        "admission": stats["admission"],
    }
    append_serve_run(payload)
    print("\nserving throughput:", json.dumps(per_query, indent=2))
    assert min(speedups) >= 2.0, f"a query fell below 2x at 4 clients: {per_query}"


def test_parallel_scans_identical_answers_through_server():
    """Partition-parallel scans answer byte-identically through the stack:
    the same Figure 12 query via a parallel=4 server session equals the
    serial session's answer."""
    bundle = uncertain_db(BASE_SCALE, SERVE_X, SERVE_Z)
    with QueryServer(bundle.udb, workers=4) as server:
        serial = server.session(parallel=0)
        parallel = server.session(parallel=4)
        for name, sql in SERVE_QUERIES.items():
            a = serial.execute(sql)
            b = parallel.execute(sql)
            assert Counter(a.rows) == Counter(b.rows), name
            assert a.schema.names == b.schema.names
