"""Figure 13 — the optimized physical plan of Q2's rewriting.

The paper shows PostgreSQL's EXPLAIN output for the translated Q2: merge
joins over the lineitem partitions on the tuple-id columns, with the ψ
conditions as join filters and the selections pushed into the partition
scans.  This benchmark produces our engine's plan for the same rewriting
(with the merge-join planner profile for visual parity), saves it, and
asserts the structural properties the paper's plan exhibits.
"""

import re

from repro.core.translate import translate
from repro.relational import explain, optimize
from repro.relational.planner import plan_physical
from repro.tpch import q2_inner

from benchmarks.conftest import BASE_SCALE, uncertain_db, write_result


def test_fig13_q2_plan(benchmark):
    """Produce and validate the Q2 plan (Figure 13 analogue)."""
    bundle = uncertain_db(BASE_SCALE, 0.1, 0.1)

    def build():
        translated = translate(q2_inner(), bundle.udb)
        logical = optimize(translated.plan)
        physical = plan_physical(logical, prefer_merge_join=True)
        return explain(physical)

    text = benchmark.pedantic(build, rounds=3, iterations=1)
    write_result("fig13_q2_plan.txt", text)

    # the paper's plan joins the lineitem partitions with merge joins ...
    assert text.count("Merge Join") >= 3
    # ... on the tuple-id columns (Q2 aliases lineitem as "l") ...
    assert "Merge Cond: (tid_l = tid_l__r)" in text
    # ... with the psi condition as a join filter (var mismatch OR rng equal)
    assert re.search(r"Join Filter: .*<>.*OR.*=", text)
    # ... and the selections pushed down into the partition scans
    assert "Seq Scan on u_lineitem_shipdate" in text
    assert "Seq Scan on u_lineitem_discount" in text
    assert "Seq Scan on u_lineitem_quantity" in text
    assert "Seq Scan on u_lineitem_extendedprice" in text


def test_fig13_q2_plan_indexed(benchmark):
    """The same rewriting under the cost-based access-path profile.

    Where the merge-join profile mirrors the paper's PostgreSQL plan
    verbatim, the default profile exploits the auto-created partition
    indexes: tid-equijoins become index nested-loop probes of the
    partition tid indexes, and selective predicates become index scans —
    the plan shape PostgreSQL produces once the experiment's indexes are
    in place.
    """
    bundle = uncertain_db(BASE_SCALE, 0.1, 0.1)

    def build():
        translated = translate(q2_inner(), bundle.udb)
        logical = optimize(translated.plan)
        # through Database.explain so the catalog's registry is exercised
        return bundle.udb.to_database().explain(logical, optimize_first=False)

    text = benchmark.pedantic(build, rounds=3, iterations=1)
    write_result("fig13_q2_plan_indexed.txt", text)

    # partition merges probe the auto-created tid indexes ...
    assert "Index Nested Loop Join" in text
    assert re.search(r"Index Scan using idx_u_lineitem_\w+_tid on u_lineitem_", text)
    assert re.search(r"Index Cond: \(tid_l(__r)? = tid_l(__r)?\)", text)
    # ... while the psi condition still guards the joins
    assert re.search(r"Join Filter: .*<>.*OR.*=", text)


def test_fig13_q2_plan_analyze(benchmark):
    """EXPLAIN ANALYZE of the Q2 rewriting: per-operator rows and batches.

    Runs the translated plan through the block executor and saves the plan
    annotated with actual row counts and batch counts per operator.
    """
    from repro.relational import explain_analyze

    bundle = uncertain_db(BASE_SCALE, 0.1, 0.1)

    def build():
        translated = translate(q2_inner(), bundle.udb)
        logical = optimize(translated.plan)
        physical = plan_physical(logical, prefer_merge_join=True)
        _result, text = explain_analyze(physical)
        return text

    text = benchmark.pedantic(build, rounds=3, iterations=1)
    write_result("fig13_q2_plan_analyze.txt", text)

    # every operator line reports what it actually produced, in batches
    assert "actual rows=" in text
    assert "batches=" in text
    for line in text.splitlines():
        if "(rows=" in line:
            assert "actual rows=" in line


def test_fig13_translation_is_parsimonious(benchmark):
    """Section 1's parsimonious-translation claim, counted on Q2:
    one selection per predicate group, merges become joins, nothing else."""
    bundle = uncertain_db(BASE_SCALE, 0.1, 0.1)

    def count_ops():
        from repro.relational.algebra import Join, Plan, Select

        translated = translate(q2_inner(), bundle.udb)

        def count(node: Plan, kind) -> int:
            return int(isinstance(node, kind)) + sum(
                count(c, kind) for c in node.children
            )

        return count(translated.plan, Join), count(translated.plan, Select)

    joins, selects = benchmark.pedantic(count_ops, rounds=3, iterations=1)
    # Q2 touches 4 lineitem attributes -> 3 merges -> exactly 3 joins
    assert joins == 3
    # the WHERE clause stays a single selection on the merged partitions
    assert selects == 1
