"""Figure 3 / Figure 10 — merge placement ablation (plans P1 vs P2/P3).

Example 3.4 discusses three plans for a select-join query over vertically
decomposed relations: the naive P1 reconstructs relations before anything
else; P2/P3 push the merge above selections/joins (late materialization).
Figure 10 shows the optimized merge-late plan for Q1.

This ablation times the Q1 core under both translation strategies and
asserts the paper's conclusion: naive early merging is the worst plan.
"""

import pytest

from repro.bench import Table, format_seconds, median_time
from repro.core.equivalences import translate_early, translate_late
from repro.core.query import Rel, UJoin, UProject, USelect
from repro.relational import col, lit
from repro.relational.planner import run as run_plan
from repro.relational.types import Date

from benchmarks.conftest import BASE_SCALE, uncertain_db, write_result


def q1_core():
    """Q1 without lineitem (two-relation core; keeps the ablation fast)."""
    customer = USelect(Rel("customer", "c"), col("c.mktsegment").eq(lit("BUILDING")))
    orders = USelect(Rel("orders", "o"), col("o.orderdate") > lit(Date("1995-03-15")))
    return UProject(
        UJoin(customer, orders, col("c.custkey").eq(col("o.custkey"))),
        ["o.orderkey", "o.orderdate", "o.shippriority"],
    )


@pytest.fixture(scope="module")
def bundle():
    return uncertain_db(BASE_SCALE, 0.01, 0.25)


def _execute(translated):
    return run_plan(translated.plan)


def test_fig3_placement_comparison(benchmark, bundle):
    """Compare P1 (merge-early) against the default late strategy."""

    def build():
        late = translate_late(q1_core(), bundle.udb)
        early = translate_early(q1_core(), bundle.udb)
        t_late, late_result = median_time(lambda: _execute(late), 3)
        t_early, early_result = median_time(lambda: _execute(early), 3)
        table = Table(
            ["plan", "strategy", "median time", "result rows"],
            title="Figure 3 analogue: merge placement",
        )
        table.add("P1", "merge everything first (early)", format_seconds(t_early),
                  len(early_result))
        table.add("P2/P3", "merge needed partitions late", format_seconds(t_late),
                  len(late_result))
        write_result("fig3_merge_placement.txt", table.render())
        return t_late, t_early, late_result, early_result

    t_late, t_early, late_result, early_result = benchmark.pedantic(
        build, rounds=1, iterations=1
    )

    # correctness: both strategies agree on the possible answers
    late_rows = set(late_result.project(["o.orderkey", "o.orderdate"]).distinct().rows)
    early_rows = set(early_result.project(["o.orderkey", "o.orderdate"]).distinct().rows)
    assert late_rows == early_rows
    # the paper's conclusion: P1 is clearly the least efficient
    assert t_late <= t_early


def test_fig3_late_strategy(benchmark, bundle):
    translated = translate_late(q1_core(), bundle.udb)
    benchmark.pedantic(lambda: _execute(translated), rounds=3, iterations=1)


def test_fig3_early_strategy(benchmark, bundle):
    translated = translate_early(q1_core(), bundle.udb)
    benchmark.pedantic(lambda: _execute(translated), rounds=3, iterations=1)


def test_fig3_plan_shapes_differ(bundle):
    """The early plan scans all partitions; the late plan scans a subset."""
    from repro.relational.algebra import Scan

    def count_scans(plan):
        return int(isinstance(plan, Scan)) + sum(
            count_scans(c) for c in plan.children
        )

    late = translate_late(q1_core(), bundle.udb)
    early = translate_early(q1_core(), bundle.udb)
    assert count_scans(late.plan) < count_scans(early.plan)
