"""The workload-intelligence overhead gate (``make bench-obs``).

Re-runs the Figure 12 Q1/Q2 observability head-to-head with the *full*
pipeline of this PR engaged — request trace, metrics, plus per-fingerprint
workload history and resource accounting — against ``REPRO_OBS=off``.
Runs interleave in off/on pairs on a warm plan cache (executor-only work,
the regime where the fixed per-query obs cost weighs the most); the gate
takes ``min(median per-pair ratio, ratio of medians)`` so one scheduler
hiccup cannot flake the suite, and requires the on-arm to actually have
populated the workload history (a 0%-overhead gate over a disabled
pipeline would be vacuous).

Appends one timestamped entry per run to
``benchmarks/results/BENCH_obs.json`` so the overhead trajectory across
PRs stays readable.
"""

import datetime
import json
import pathlib
import statistics

import pytest

from repro.bench import Table, format_seconds, timed
from repro.core import execute_query
from repro.tpch import q1, q2

from benchmarks.conftest import RESULTS_DIR, uncertain_db, write_result

QUERIES = {"Q1": q1, "Q2": q2}

#: Same regime as the Figure 12 access-path/obs addenda: fixed scale (not
#: multiplied by ``REPRO_BENCH_SCALE``) at the grid-midpoint uncertainty.
BENCH_SCALE = 0.008
BENCH_X = 0.01
BENCH_Z = 0.25
BENCH_PAIRS = 9
OVERHEAD_CEILING = 1.05


def append_bench_run(kind: str, payload: dict) -> None:
    """Append a timestamped run to ``BENCH_obs.json`` (trajectory)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = pathlib.Path(RESULTS_DIR) / "BENCH_obs.json"
    if path.exists():
        data = json.loads(path.read_text())
    else:
        data = {"figure": "12 (workload-intelligence gate)", "runs": []}
    entry = {
        "kind": kind,
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
    }
    entry.update(payload)
    data["runs"].append(entry)
    path.write_text(json.dumps(data, indent=2) + "\n")


def test_obs_workload_overhead(benchmark):
    """Workload tracking + accounting must hold the <= 5% Fig 12 gate."""
    from repro.obs import (
        request_trace,
        reset_workload,
        set_enabled,
        workload_snapshot,
    )

    bundle = uncertain_db(BENCH_SCALE, BENCH_X, BENCH_Z)

    def traced_run(query, label):
        with request_trace(sql=label):
            return execute_query(query, bundle.udb)

    def compare():
        reset_workload()
        table = Table(
            ["query", "obs off (median)", "obs on (median)", "overhead", "answers"],
            title="Workload-intelligence overhead gate: on vs REPRO_OBS=off",
        )
        queries = {}
        for label, builder in QUERIES.items():
            query = builder()
            # warm the plan cache and prove both arms answer identically
            answer_on = traced_run(query, label)
            previous = set_enabled(False)
            try:
                answer_off = traced_run(query, label)
            finally:
                set_enabled(previous)
            assert answer_on == answer_off  # identical bags, NULL-safe
            # one untimed pair settles allocator/branch-predictor state so
            # the first timed off-run is not systematically cold
            traced_run(query, label)
            previous = set_enabled(False)
            try:
                traced_run(query, label)
            finally:
                set_enabled(previous)
            off, on = [], []
            for _ in range(BENCH_PAIRS):
                previous = set_enabled(False)
                try:
                    elapsed, _ = timed(lambda: traced_run(query, label))
                finally:
                    set_enabled(previous)
                off.append(elapsed)
                elapsed, _ = timed(lambda: traced_run(query, label))
                on.append(elapsed)
            ratio_of_medians = statistics.median(on) / statistics.median(off)
            median_pair_ratio = statistics.median(n / f for n, f in zip(on, off))
            entry = {
                "off_median_s": statistics.median(off),
                "on_median_s": statistics.median(on),
                "overhead_ratio_of_medians": ratio_of_medians,
                "overhead_median_pair_ratio": median_pair_ratio,
                "overhead_gated": min(ratio_of_medians, median_pair_ratio),
                "answer_rows": len(answer_on),
                "identical_answers": True,
            }
            queries[label] = entry
            table.add(
                label,
                format_seconds(entry["off_median_s"]),
                format_seconds(entry["on_median_s"]),
                f"{(entry['overhead_gated'] - 1) * 100:+.1f}%",
                entry["answer_rows"],
            )

        # the on-arm must have fed the workload history (the gate would be
        # vacuous if the pipeline it prices were silently disabled)
        history = {entry["sql"]: entry for entry in workload_snapshot()}
        for label in QUERIES:
            assert label in history, f"{label} missing from workload history"
            # on-arm executions only: 2 warm-ups + BENCH_PAIRS timed
            assert history[label]["calls"] == BENCH_PAIRS + 2

        append_bench_run(
            "workload-overhead",
            {
                "baseline": "observability disabled (REPRO_OBS=off switch)",
                "config": {
                    "scale": BENCH_SCALE,
                    "x": BENCH_X,
                    "z": BENCH_Z,
                    "seed": 42,
                    "interleaved_pairs": BENCH_PAIRS,
                },
                "history_fingerprints": len(history),
                "queries": queries,
            },
        )
        write_result("obs_workload_overhead.txt", table.render())
        return queries

    queries = benchmark.pedantic(compare, rounds=1, iterations=1)
    # CI gate: fingerprint + history + accounting cost at most 5% on Q1/Q2
    assert queries["Q1"]["overhead_gated"] <= OVERHEAD_CEILING
    assert queries["Q2"]["overhead_gated"] <= OVERHEAD_CEILING
