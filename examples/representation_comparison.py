#!/usr/bin/env python
"""Comparing U-relations against WSDs and ULDBs (Section 5, hands-on).

Builds the ring-correlated world-set of the paper's Example 5.1 — tuple
fields t_i.A and t_{(i+1) mod n}.B always take the same value — and shows,
by construction rather than by claim:

* U-relations store it in 2n rows per partition (Figure 6b),
* the equivalent WSD fuses all variables into one component with 2^n local
  worlds after the query sigma_{A=B}(R) correlates everything (Figure 7a),
* the equivalent ULDB x-tuples blow up exponentially for or-set-style
  independence (Theorem 5.6),
* query answers nonetheless agree across all three representations.

Run:  python examples/representation_comparison.py [n]
"""

import sys

from repro.core import (
    Descriptor,
    Poss,
    Rel,
    UDatabase,
    UProject,
    URelation,
    USelect,
    WorldTable,
    execute_query,
)
from repro.core.urelation import tid_column
from repro.relational import col
from repro.uldb import udatabase_to_uldb
from repro.wsd import evaluate_poss, udatabase_to_wsd


def ring_database(n: int) -> UDatabase:
    """Example 5.1: n binary variables; t_i.A == t_{(i+1) mod n}.B."""
    world = WorldTable({f"c{i}": ["w1", "w2"] for i in range(n)})
    a_triples, b_triples = [], []
    for i in range(n):
        # c_i drives t_i.A and t_{(i+1) mod n}.B
        a_triples.append((Descriptor({f"c{i}": "w1"}), f"t{i}", (1,)))
        a_triples.append((Descriptor({f"c{i}": "w2"}), f"t{i}", (0,)))
        j = (i + 1) % n
        b_triples.append((Descriptor({f"c{i}": "w1"}), f"t{j}", (1,)))
        b_triples.append((Descriptor({f"c{i}": "w2"}), f"t{j}", (0,)))
    udb = UDatabase(world)
    udb.add_relation(
        "r",
        ["A", "B"],
        [
            URelation.build(a_triples, tid_column("r"), ["A"]),
            URelation.build(b_triples, tid_column("r"), ["B"]),
        ],
    )
    return udb


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    udb = ring_database(n)
    print(f"ring world-set with n={n} variables: {udb.world_count()} worlds\n")

    u_rows = sum(len(p) for p in udb.partitions("r"))
    print(f"U-relations:  {u_rows} rows across 2 partitions (2n each — Figure 6b)")

    wsd = udatabase_to_wsd(udb)
    print(
        f"WSD:          {len(wsd.components)} component(s), "
        f"max {wsd.max_local_worlds()} local worlds, {wsd.size_cells()} cells"
    )

    uldb = udatabase_to_uldb(udb)
    alts = uldb.get("r").alternative_count()
    print(f"ULDB:         {alts} alternatives across {len(uldb.get('r'))} x-tuples")

    # the query that correlates everything: sigma_{A=B}(R)
    query = UProject(USelect(Rel("r"), col("A").eq(col("B"))), ["A", "B"])
    u_answer = execute_query(Poss(query), udb)
    answer_urel = execute_query(query, udb)
    print(
        f"\nsigma_A=B(R): U-relational answer has {len(answer_urel)} "
        f"representation rows (2n — Figure 7b),"
    )

    wsd_after = udatabase_to_wsd_of_answer(udb, n)
    print(
        f"              the WSD of the same answer needs one component with "
        f"{wsd_after} local worlds (2^n — Figure 7a)."
    )

    wsd_answer = evaluate_poss(wsd, Poss(query))
    print(f"\npossible answers agree across representations: "
          f"{set(u_answer.rows) == set(wsd_answer.rows)}")
    print(f"poss(sigma_A=B(R)) = {sorted(set(u_answer.rows))}")


def udatabase_to_wsd_of_answer(udb: UDatabase, n: int) -> int:
    """Local-world count of the answer's WSD: the fused ring component."""
    from repro.core import normalize_udatabase
    from repro.core.query import Rel, UProject, USelect
    from repro.core.translate import execute_query as run

    query = UProject(USelect(Rel("r"), col("A").eq(col("B"))), ["A", "B"])
    answer = run(query, udb)
    from repro.core.normalization import normalize_urelations

    _, world = normalize_urelations([answer], udb.world_table)
    return world.max_domain_size()


if __name__ == "__main__":
    main()
