#!/usr/bin/env python
"""The SQL surface: the paper's Figure 8 queries, verbatim.

The paper's "ease of use" argument is that U-relations need nothing beyond
a relational engine — queries on the logical schema are ordinary SQL
wrapped in ``possible (...)``.  This example runs the actual query texts
of Figure 8 against a generated uncertain TPC-H database through the
:mod:`repro.sql` front-end, plus a ``certain (...)`` variant.

Run:  python examples/sql_interface.py
"""

import time

from repro import execute_sql
from repro.ugen import generate_uncertain

FIGURE_8 = {
    "Q1": """
        possible (select o.orderkey, o.orderdate, o.shippriority
                  from customer c, orders o, lineitem l
                  where c.mktsegment = 'BUILDING'
                    and c.custkey = o.custkey
                    and o.orderkey = l.orderkey
                    and o.orderdate > '1995-03-15'
                    and l.shipdate < '1995-03-17')
    """,
    "Q2": """
        possible (select l.extendedprice from lineitem l
                  where l.shipdate between '1994-01-01' and '1996-01-01'
                    and l.discount between 0.05 and 0.08
                    and l.quantity < 24)
    """,
    "Q3": """
        possible (select n1.name, n2.name
                  from supplier s, lineitem l, orders o, customer c,
                       nation n1, nation n2
                  where n2.name = 'IRAQ' and n1.name = 'GERMANY'
                    and c.nationkey = n2.nationkey
                    and s.suppkey = l.suppkey
                    and o.orderkey = l.orderkey
                    and c.custkey = o.custkey
                    and s.nationkey = n1.nationkey)
    """,
}


def main() -> None:
    print("generating uncertain TPC-H (scale=0.001, x=0.05, z=0.25) ...")
    bundle = generate_uncertain(scale=0.001, x=0.05, z=0.25, seed=42)
    print(f"  {bundle.udb}\n")

    print("Figure 8 queries through the SQL front-end:")
    for label, sql in FIGURE_8.items():
        start = time.perf_counter()
        answer = execute_sql(sql, bundle.udb)
        elapsed = time.perf_counter() - start
        print(f"  {label}: {len(answer):6d} possible tuples in {elapsed:6.2f}s")
    print()

    # a certain-answer query: orders certainly placed by BUILDING customers
    certain = execute_sql(
        """certain (select o.orderkey from customer c, orders o
                    where c.mktsegment = 'BUILDING'
                      and c.custkey = o.custkey
                      and o.orderdate > '1995-03-15')""",
        bundle.udb,
    )
    possible = execute_sql(
        """possible (select o.orderkey from customer c, orders o
                     where c.mktsegment = 'BUILDING'
                       and c.custkey = o.custkey
                       and o.orderdate > '1995-03-15')""",
        bundle.udb,
    )
    print(
        f"BUILDING-customer orders after 1995-03-15: "
        f"{len(possible)} possible, {len(certain)} certain"
    )
    print(
        "(the gap is exactly the orders whose customer segment or order\n"
        " date became uncertain during generation)"
    )


if __name__ == "__main__":
    main()
