#!/usr/bin/env python
"""Querying a generated uncertain TPC-H database (the Section 6 pipeline).

Builds an uncertain TPC-H instance with the paper's generator parameters
(scale s, uncertainty ratio x, correlation z), reports the Figure 9-style
database characteristics, runs the paper's queries Q1-Q3, and prints the
optimized physical plan of Q2 the way Figure 13 does.

Run:  python examples/uncertain_tpch.py [scale] [x] [z]
e.g.  python examples/uncertain_tpch.py 0.002 0.05 0.25
"""

import sys
import time

from repro.core import execute_query
from repro.core.translate import translate
from repro.relational import explain, optimize
from repro.relational.planner import plan_physical
from repro.tpch import ALL_QUERIES, q2_inner
from repro.ugen import generate_uncertain


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.001
    x = float(sys.argv[2]) if len(sys.argv) > 2 else 0.05
    z = float(sys.argv[3]) if len(sys.argv) > 3 else 0.25

    print(f"generating uncertain TPC-H (scale={scale}, x={x}, z={z}) ...")
    start = time.perf_counter()
    bundle = generate_uncertain(scale=scale, x=x, z=z, seed=42)
    print(f"generated in {time.perf_counter() - start:.1f}s\n")

    # ------------------------------------------------------------------
    # Figure 9-style characteristics
    # ------------------------------------------------------------------
    print("database characteristics (cf. Figure 9):")
    print(f"  uncertain fields:          {bundle.uncertain_field_count}")
    print(f"  variables:                 {bundle.variable_count}")
    print(f"  represented worlds:        10^{bundle.log10_worlds():.1f}")
    print(f"  max local worlds/variable: {bundle.max_local_worlds()}")
    print(f"  representation rows:       {bundle.representation_rows()}")
    print(f"  one-world rows:            {bundle.one_world_rows()}")
    print(f"  size ratio (rows/fields):  {bundle.size_ratio():.2f}\n")

    # ------------------------------------------------------------------
    # the paper's queries
    # ------------------------------------------------------------------
    print("running Q1-Q3 (Figure 8):")
    for label, wrapped, _inner in ALL_QUERIES:
        start = time.perf_counter()
        answer = execute_query(wrapped(), bundle.udb)
        elapsed = time.perf_counter() - start
        print(f"  {label}: {len(answer):6d} possible tuples in {elapsed:6.2f}s")

    # ------------------------------------------------------------------
    # the Figure 13 plan
    # ------------------------------------------------------------------
    print("\noptimized physical plan for Q2 (cf. Figure 13):")
    translated = translate(q2_inner(), bundle.udb)
    physical = plan_physical(optimize(translated.plan), prefer_merge_join=True)
    print(explain(physical))


if __name__ == "__main__":
    main()
