#!/usr/bin/env python
"""Quickstart: the paper's Figure 1 battlefield example, end to end.

An aerial photograph shows four vehicles.  Reconnaissance constrains what
they can be, but three questions stay open (variables x, y, z):

* did the friendly transport (b) move to position 2 or 3?  (x)
* is vehicle 4 a tank or a transport?                      (y)
* is vehicle 4 friendly or enemy?                          (z)

Eight possible worlds, represented in a handful of U-relation tuples.  The
script builds the U-relational database of Figure 1b, runs the queries of
Examples 3.6/3.7 (enemy tanks; pairs of enemy tanks), and computes certain
answers.

Run:  python examples/quickstart.py
"""

from repro import (
    Certain,
    Descriptor,
    Poss,
    Rel,
    UDatabase,
    UJoin,
    UProject,
    URelation,
    USelect,
    WorldTable,
    execute_query,
)
from repro.relational import col, lit


def build_database() -> UDatabase:
    """The U-relational database of Figure 1b."""
    world = WorldTable({"x": [1, 2], "y": [1, 2], "z": [1, 2]})
    certain = Descriptor()  # the empty ws-descriptor: holds in every world

    u_id = URelation.build(
        [
            (certain, "a", (1,)),
            (Descriptor(x=1), "b", (2,)),
            (Descriptor(x=2), "b", (3,)),
            (Descriptor(x=1), "c", (3,)),
            (Descriptor(x=2), "c", (2,)),
            (certain, "d", (4,)),
        ],
        tid_name="tid_vehicles",
        value_names=["id"],
    )
    u_type = URelation.build(
        [
            (certain, "a", ("Tank",)),
            (certain, "b", ("Transport",)),
            (certain, "c", ("Tank",)),
            (Descriptor(y=1), "d", ("Tank",)),
            (Descriptor(y=2), "d", ("Transport",)),
        ],
        tid_name="tid_vehicles",
        value_names=["type"],
    )
    u_faction = URelation.build(
        [
            (certain, "a", ("Friend",)),
            (certain, "b", ("Friend",)),
            (certain, "c", ("Enemy",)),
            (Descriptor(z=1), "d", ("Friend",)),
            (Descriptor(z=2), "d", ("Enemy",)),
        ],
        tid_name="tid_vehicles",
        value_names=["faction"],
    )

    udb = UDatabase(world)
    udb.add_relation("vehicles", ["id", "type", "faction"], [u_id, u_type, u_faction])
    return udb


def main() -> None:
    udb = build_database()
    print(f"database: {udb}")
    print(f"worlds represented: {udb.world_count()}")
    print(f"valid (no contradictory fields): {udb.is_valid()}\n")

    # ------------------------------------------------------------------
    # Example 3.6: which vehicles could be enemy tanks?
    # ------------------------------------------------------------------
    enemy_tanks = UProject(
        USelect(
            Rel("vehicles"),
            col("type").eq(lit("Tank")) & col("faction").eq(lit("Enemy")),
        ),
        ["id"],
    )
    u4 = execute_query(enemy_tanks, udb)
    print("U4 — the query answer as a U-relation (Example 3.6):")
    print(u4.pretty(), "\n")

    possible = execute_query(Poss(enemy_tanks), udb)
    print("possible enemy tank ids:", sorted(row[0] for row in possible.rows))

    certain = execute_query(Certain(enemy_tanks), udb)
    print("certain enemy tank ids: ", sorted(row[0] for row in certain.rows), "\n")

    # ------------------------------------------------------------------
    # Example 3.7: could the enemy have two tanks on the map?
    # ------------------------------------------------------------------
    def side(alias: str):
        return UProject(
            USelect(
                Rel("vehicles", alias),
                col(f"{alias}.type").eq(lit("Tank"))
                & col(f"{alias}.faction").eq(lit("Enemy")),
            ),
            [f"{alias}.id"],
        )

    pairs = UJoin(side("s1"), side("s2"), col("s1.id") < col("s2.id"))
    u5 = execute_query(pairs, udb)
    print("U5 — pairs of enemy tanks (Example 3.7):")
    print(u5.pretty(), "\n")

    possible_pairs = execute_query(Poss(pairs), udb)
    print("possible enemy tank pairs:", sorted(possible_pairs.rows))
    print(
        "\nNote how the ψ-condition removed the (2,3)/(3,2) combinations:\n"
        "vehicle c cannot be at two positions at once, and U-relations\n"
        "filter such contradictions during the join — no erroneous tuples,\n"
        "no data minimization needed (Section 5)."
    )


if __name__ == "__main__":
    main()
