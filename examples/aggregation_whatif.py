#!/usr/bin/env python
"""What-if revenue analysis with uncertain aggregates.

The paper defers aggregation to future work; this example shows the
extension implemented in :mod:`repro.core.aggregates` on a realistic
scenario: a sales pipeline where deal amounts and closing outcomes are
uncertain, and an analyst wants expected revenue, best/worst cases, and
the revenue distribution.

Run:  python examples/aggregation_whatif.py
"""

from repro import (
    Descriptor,
    Rel,
    UDatabase,
    URelation,
    USelect,
    WorldTable,
    execute_query,
)
from repro.core.aggregates import (
    aggregate_distribution,
    count_bounds,
    expected_count,
    expected_sum,
    sum_bounds,
)
from repro.relational import col, lit


def build_pipeline() -> UDatabase:
    """Five deals; three have uncertain outcomes, one an uncertain amount."""
    world = WorldTable(
        {
            "deal_beta": [1, 2],       # closes (1) or slips (2)
            "deal_gamma": [1, 2],      # closes or slips
            "deal_delta": [1, 2, 3],   # closes big / closes small / slips
            "amount_eps": [1, 2],      # contract value still in negotiation
        },
        probabilities={
            "deal_beta": [0.7, 0.3],
            "deal_gamma": [0.4, 0.6],
            "deal_delta": [0.3, 0.5, 0.2],
            "amount_eps": [0.5, 0.5],
        },
    )
    certain = Descriptor()
    triples = [
        (certain, 1, ("alpha", "closed", 120_000)),
        (Descriptor(deal_beta=1), 2, ("beta", "closed", 80_000)),
        (Descriptor(deal_beta=2), 2, ("beta", "slipped", 0)),
        (Descriptor(deal_gamma=1), 3, ("gamma", "closed", 150_000)),
        (Descriptor(deal_gamma=2), 3, ("gamma", "slipped", 0)),
        (Descriptor(deal_delta=1), 4, ("delta", "closed", 200_000)),
        (Descriptor(deal_delta=2), 4, ("delta", "closed", 90_000)),
        (Descriptor(deal_delta=3), 4, ("delta", "slipped", 0)),
        (Descriptor(amount_eps=1), 5, ("epsilon", "closed", 60_000)),
        (Descriptor(amount_eps=2), 5, ("epsilon", "closed", 75_000)),
    ]
    deals = URelation.build(
        triples, tid_name="tid_deals", value_names=["deal", "status", "amount"]
    )
    udb = UDatabase(world)
    udb.add_relation("deals", ["deal", "status", "amount"], [deals])
    return udb


def main() -> None:
    udb = build_pipeline()
    print(f"pipeline: {udb}")
    print(f"scenarios (worlds): {udb.world_count()}\n")

    closed = USelect(Rel("deals"), col("status").eq(lit("closed")))
    result = execute_query(closed, udb)
    world = udb.world_table

    # ------------------------------------------------------------------
    # exact expected aggregates (linearity of expectation — no enumeration)
    # ------------------------------------------------------------------
    revenue = expected_sum(result, "amount", world)
    deals = expected_count(result, world)
    print(f"expected closed deals:   {deals:.2f}")
    print(f"expected revenue:        ${revenue:,.0f}")

    lo_count, hi_count = count_bounds(result, world)
    lo_rev, hi_rev = sum_bounds(result, "amount", world)
    print(f"closed-deal range:       {lo_count} .. {hi_count}")
    print(f"revenue range:           ${lo_rev:,.0f} .. ${hi_rev:,.0f}\n")

    # ------------------------------------------------------------------
    # the full revenue distribution (Monte-Carlo over scenarios)
    # ------------------------------------------------------------------
    def total_revenue(rows):
        return sum(row[2] for row in rows)

    distribution = aggregate_distribution(
        result, world, aggregate=total_revenue, samples=20_000, seed=11
    )
    print("revenue distribution (top outcomes):")
    top = sorted(distribution.items(), key=lambda kv: -kv[1])[:8]
    for value, probability in top:
        bar = "#" * int(probability * 60)
        print(f"  ${value:>9,.0f}  {probability:6.1%}  {bar}")

    at_risk = sum(p for v, p in distribution.items() if v < 300_000)
    print(f"\nP(revenue < $300k) ≈ {at_risk:.1%}")


if __name__ == "__main__":
    main()
