#!/usr/bin/env python
"""Data cleaning with attribute-level uncertainty (census-style records).

The paper motivates attribute-level representation with data cleaning: "the
U.S. Census Bureau maintains relations with dozens of columns, most of which
may require cleaning" — several fields of one record can be *independently*
uncertain, which tuple-level systems can only represent by enumerating the
cross product of the field alternatives.

This example cleans a small person registry in which OCR produced ambiguous
readings for some ages and incomes, and an entity-resolution step was unsure
about two cities.  It shows:

1. building an attribute-level U-relational database from per-field
   alternatives,
2. the succinctness win over tuple-level enumeration (counted, not assumed),
3. answering analyst queries with possible/certain semantics,
4. ranking answers by probability (Section 7's probabilistic U-relations).

Run:  python examples/data_cleaning.py
"""

from repro import (
    Certain,
    Descriptor,
    Poss,
    Rel,
    UDatabase,
    UProject,
    URelation,
    USelect,
    WorldTable,
    confidence_relation,
    execute_query,
)
from repro.relational import col, lit
from repro.ugen import tuple_level_size


def build_registry() -> UDatabase:
    """Five person records; seven fields are uncertain after cleaning."""
    world = WorldTable(
        {
            "age_ann": [1, 2],        # OCR read 34 or 54
            "age_bob": [1, 2, 3],     # smudged: 41, 47, or 71
            "inc_ann": [1, 2],        # 52,000 or 62,000
            "inc_dan": [1, 2],        # 88,000 or 83,000
            "city_cat": [1, 2],       # "Springfield" in two states
            "city_eve": [1, 2],       # duplicate resolution was unsure
        },
        probabilities={
            "age_ann": [0.8, 0.2],
            "age_bob": [0.5, 0.3, 0.2],
            "inc_ann": [0.6, 0.4],
            "inc_dan": [0.7, 0.3],
            "city_cat": [0.5, 0.5],
            "city_eve": [0.9, 0.1],
        },
    )
    certain = Descriptor()

    u_name = URelation.build(
        [(certain, i, (name,)) for i, name in enumerate(
            ["Ann", "Bob", "Cat", "Dan", "Eve"], start=1)],
        tid_name="tid_people",
        value_names=["name"],
    )
    u_age = URelation.build(
        [
            (Descriptor(age_ann=1), 1, (34,)),
            (Descriptor(age_ann=2), 1, (54,)),
            (Descriptor(age_bob=1), 2, (41,)),
            (Descriptor(age_bob=2), 2, (47,)),
            (Descriptor(age_bob=3), 2, (71,)),
            (certain, 3, (29,)),
            (certain, 4, (38,)),
            (certain, 5, (45,)),
        ],
        tid_name="tid_people",
        value_names=["age"],
    )
    u_income = URelation.build(
        [
            (Descriptor(inc_ann=1), 1, (52_000,)),
            (Descriptor(inc_ann=2), 1, (62_000,)),
            (certain, 2, (45_000,)),
            (certain, 3, (71_000,)),
            (Descriptor(inc_dan=1), 4, (88_000,)),
            (Descriptor(inc_dan=2), 4, (83_000,)),
            (certain, 5, (56_000,)),
        ],
        tid_name="tid_people",
        value_names=["income"],
    )
    u_city = URelation.build(
        [
            (certain, 1, ("Portland",)),
            (certain, 2, ("Austin",)),
            (Descriptor(city_cat=1), 3, ("Springfield, IL",)),
            (Descriptor(city_cat=2), 3, ("Springfield, MA",)),
            (certain, 4, ("Portland",)),
            (Descriptor(city_eve=1), 5, ("Denver",)),
            (Descriptor(city_eve=2), 5, ("Boulder",)),
        ],
        tid_name="tid_people",
        value_names=["city"],
    )

    udb = UDatabase(world)
    udb.add_relation(
        "people", ["name", "age", "income", "city"], [u_name, u_age, u_income, u_city]
    )
    return udb


def main() -> None:
    udb = build_registry()
    print(f"registry: {udb}")
    print(f"worlds: {udb.world_count()}  (2*3*2*2*2*2 = 96)")

    # ------------------------------------------------------------------
    # succinctness: attribute-level vs tuple-level
    # ------------------------------------------------------------------
    attr_rows = sum(len(p) for p in udb.partitions("people"))
    tl_rows = tuple_level_size(udb, "people")
    print(f"\nattribute-level representation rows: {attr_rows}")
    print(f"tuple-level enumeration would need:  {tl_rows} rows")
    print("(independent field alternatives multiply at tuple level — Section 5)")

    # ------------------------------------------------------------------
    # analyst query: who might earn over 60k before turning 50?
    # ------------------------------------------------------------------
    wealthy = UProject(
        USelect(
            Rel("people"),
            (col("income") > lit(60_000)) & (col("age") < lit(50)),
        ),
        ["name", "city"],
    )
    possible = execute_query(Poss(wealthy), udb)
    certain = execute_query(Certain(wealthy), udb)
    print("\npossible high earners under 50:")
    print(possible.pretty())
    print("\ncertain high earners under 50 (true in every cleaning outcome):")
    print(certain.pretty())

    # ------------------------------------------------------------------
    # probabilistic ranking (Section 7)
    # ------------------------------------------------------------------
    result = execute_query(wealthy, udb)
    ranked = confidence_relation(result, udb.world_table)
    print("\nanswers ranked by confidence:")
    print(ranked.pretty())
    print(
        "\nDan is certain: both of his income readings exceed 60k, and his\n"
        "age and city are clean.  Cat earns 71k at age 29 in every world,\n"
        "but her *city* is unresolved — so each (Cat, city) answer is only\n"
        "possible (p=0.5), not certain.  Ann's membership depends on the OCR\n"
        "outcomes of both her age and income fields (0.8 * 0.4 = 0.32)."
    )


if __name__ == "__main__":
    main()
