"""``repro.bench`` — shared benchmark harness utilities."""

from .harness import Table, format_seconds, geometric_series, median_time, timed

__all__ = ["Table", "timed", "median_time", "geometric_series", "format_seconds"]
