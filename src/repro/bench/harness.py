"""Benchmark harness utilities: timing, parameter grids, table output.

The benchmarks print the same rows/series the paper's figures report
(Figures 9, 11, 12, 14); these helpers keep the per-benchmark code small
and the output format uniform.
"""

from __future__ import annotations

import math
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["timed", "median_time", "Table", "geometric_series", "format_seconds"]


def timed(fn: Callable[[], Any]) -> Tuple[float, Any]:
    """Run a thunk once, returning (elapsed seconds, result)."""
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def median_time(
    fn: Callable[[], Any], repeats: int = 3, warmup: int = 1
) -> Tuple[float, Any]:
    """Median elapsed time over ``repeats`` runs (the paper uses 4 runs).

    ``warmup`` extra runs execute first and are excluded from the timings
    (they absorb cold caches, lazy imports, and allocator ramp-up).  For an
    even ``repeats`` the reported value is the true median — the mean of
    the two middle samples — not the upper-middle sample.
    """
    result: Any = None
    for _ in range(max(warmup, 0)):
        result = fn()
    times: List[float] = []
    for _ in range(max(repeats, 1)):
        elapsed, result = timed(fn)
        times.append(elapsed)
    times.sort()
    middle = len(times) // 2
    if len(times) % 2 == 0:
        return (times[middle - 1] + times[middle]) / 2.0, result
    return times[middle], result


def format_seconds(seconds: float) -> str:
    """Human-scaled time rendering for report tables."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def geometric_series(start: float, stop: float, points: int) -> List[float]:
    """``points`` geometrically spaced values from ``start`` to ``stop``."""
    if points <= 1:
        return [start]
    ratio = (stop / start) ** (1 / (points - 1))
    return [start * ratio ** i for i in range(points)]


class Table:
    """Accumulates rows and renders an aligned ASCII table.

    >>> t = Table(["x", "time"])
    >>> t.add(0.01, "12ms")
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, columns: Sequence[str], title: Optional[str] = None):
        self.columns = list(columns)
        self.title = title
        self.rows: List[List[str]] = []

    def add(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append([_cell(v) for v in values])

    def render(self) -> str:
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in self.rows))
            if self.rows
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = []
        if self.title:
            lines.append(self.title)
            lines.append("=" * len(self.title))
        lines.append("  ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def print(self) -> None:
        print(self.render())
        print()


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) >= 1e6 or abs(value) < 1e-3):
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)
