"""The slow-query log: keep the N slowest traces, warn past a threshold.

Two behaviours, both fed by :func:`record` (called automatically when a
request-owned trace finishes):

* A bounded min-heap of the **N slowest** traces seen since the last
  reset — :func:`slow_queries` returns them slowest-first as
  JSON-shaped dicts (this is what ``{"op": "stats"}`` embeds under
  ``slow_queries``).
* Traces over ``threshold`` seconds additionally emit one structured
  line on the ``repro.obs.slowlog`` logger::

      slow query trace_id=12 duration_ms=153.2 class=join sql="select ..."

The default threshold (100ms) is far above any cached query in this
stack and below a cold multi-way join at bench scale, so the log stays
quiet in tests unless a test lowers it via :func:`configure`.
"""

from __future__ import annotations

import heapq
import itertools
import logging
import threading
from typing import Any, Dict, List, Optional

from .trace import Trace

__all__ = ["record", "slow_queries", "reset_slow_queries", "configure"]

logger = logging.getLogger("repro.obs.slowlog")

DEFAULT_CAPACITY = 32
DEFAULT_THRESHOLD = 0.1  # seconds

_lock = threading.Lock()
_capacity = DEFAULT_CAPACITY
_threshold = DEFAULT_THRESHOLD
# min-heap of (duration, tiebreak, payload) — the fastest of the kept
# traces sits at the root and is evicted first.
_heap: List[Any] = []
_tiebreak = itertools.count()


def configure(capacity: Optional[int] = None, threshold: Optional[float] = None) -> None:
    """Adjust ring size and/or warn threshold (None leaves a value alone)."""
    global _capacity, _threshold
    with _lock:
        if capacity is not None:
            _capacity = max(1, int(capacity))
            while len(_heap) > _capacity:
                heapq.heappop(_heap)
        if threshold is not None:
            _threshold = float(threshold)


def record(trace: Trace) -> None:
    """Offer a finished trace to the slow log (keep if among N slowest)."""
    seconds = trace.duration
    payload: Dict[str, Any] = {
        "duration_ms": round(seconds * 1000, 4),
        **trace.to_dict(),
    }
    with _lock:
        threshold = _threshold
        if len(_heap) < _capacity:
            heapq.heappush(_heap, (seconds, next(_tiebreak), payload))
        elif _heap and seconds > _heap[0][0]:
            heapq.heapreplace(_heap, (seconds, next(_tiebreak), payload))
    if seconds >= threshold:
        attrs = trace.root.attrs
        logger.warning(
            "slow query trace_id=%d duration_ms=%.1f class=%s sql=%r",
            trace.trace_id,
            seconds * 1000,
            attrs.get("cost_class", "unknown"),
            attrs.get("sql", ""),
        )


def slow_queries(limit: Optional[int] = None) -> List[Dict[str, Any]]:
    """The kept traces, slowest first, as JSON-shaped dicts."""
    with _lock:
        entries = sorted(_heap, key=lambda item: item[0], reverse=True)
    if limit is not None:
        entries = entries[:limit]
    return [payload for _, _, payload in entries]


def reset_slow_queries() -> None:
    """Drop kept traces and restore default capacity/threshold."""
    global _capacity, _threshold
    with _lock:
        _heap.clear()
        _capacity = DEFAULT_CAPACITY
        _threshold = DEFAULT_THRESHOLD
