"""Query-lifecycle tracing: per-request span trees.

A :class:`Trace` is one request's journey through the serving stack; a
:class:`Span` is one timed step.  The canonical tree for a served SQL
query::

    query                       (root; attrs: sql, cost_class, cached)
      parse                     (attrs: cached — statement-text cache hit?)
      admission                 (attrs: cost_class, queued — wait only)
      execute                   (attrs: coalesced?)
        plan                    (attrs: cached — plan-cache hit?)
                                (attrs: operators — per-operator actual rows)
      render                    (attrs: bytes)

Propagation is a :mod:`contextvars` context variable holding
``(trace, active_span)``.  Context vars do **not** flow into
``ThreadPoolExecutor`` workers automatically, so the executor boundary
captures the pair in the request thread and re-installs it in the worker
via :func:`activate`.

Instrumentation sites never check "is tracing on?" — they call
:func:`span`, which returns a shared no-op span when no trace is active,
so the disabled cost is one contextvar read.  Entry surfaces
(``execute_sql``, ``Session``, ``PreparedQuery.run``, the TCP handler)
call :func:`request_trace`, which starts a trace only when observability
is enabled and none is already active — nested calls join the enclosing
trace instead of forking their own.

Finished root spans feed the slow-query log (see
:mod:`repro.obs.slowlog`) and the ``query_seconds`` histogram.
"""

from __future__ import annotations

import contextvars
import itertools
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

from . import metrics as _metrics

__all__ = [
    "Span",
    "Trace",
    "start_trace",
    "activate",
    "span",
    "current_trace",
    "current_span",
    "request_trace",
    "record_finished",
]

_trace_ids = itertools.count(1)

#: (trace, active span) for the current logical context; None outside any
#: traced request.
_current: "contextvars.ContextVar[Optional[Tuple[Trace, Span]]]" = contextvars.ContextVar(
    "repro_obs_trace", default=None
)


class Span:
    """One timed step of a trace, possibly with children and attributes."""

    __slots__ = ("name", "start", "end", "attrs", "children")

    def __init__(self, name: str):
        self.name = name
        self.start = time.perf_counter()
        self.end: Optional[float] = None
        self.attrs: Dict[str, Any] = {}
        self.children: List[Span] = []

    @property
    def duration(self) -> float:
        """Elapsed seconds (to now if the span is still open)."""
        return (self.end if self.end is not None else time.perf_counter()) - self.start

    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def finish(self) -> None:
        if self.end is None:
            self.end = time.perf_counter()

    def find(self, name: str) -> Optional["Span"]:
        """Depth-first search for the first descendant (or self) named `name`."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "duration_ms": round(self.duration * 1000, 4),
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out


class _NoopSpan(Span):
    """Shared do-nothing span returned when no trace is active.

    Mutations are swallowed so instrumentation sites can unconditionally
    ``span.set(...)`` without branching on trace presence.
    """

    __slots__ = ()

    def __init__(self):  # noqa: D107 - fixed identity, no timing
        object.__setattr__(self, "name", "noop")
        object.__setattr__(self, "start", 0.0)
        object.__setattr__(self, "end", 0.0)
        object.__setattr__(self, "attrs", {})
        object.__setattr__(self, "children", [])

    def set(self, **attrs: Any) -> "Span":
        return self

    def finish(self) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class Trace:
    """A request's span tree plus identity metadata."""

    __slots__ = ("trace_id", "root")

    def __init__(self, root_name: str = "query"):
        self.trace_id = next(_trace_ids)
        self.root = Span(root_name)

    @property
    def duration(self) -> float:
        return self.root.duration

    def finish(self) -> None:
        self.root.finish()

    def find(self, name: str) -> Optional[Span]:
        return self.root.find(name)

    def to_dict(self) -> Dict[str, Any]:
        return {"trace_id": self.trace_id, **self.root.to_dict()}


def current_trace() -> Optional[Trace]:
    state = _current.get()
    return state[0] if state is not None else None


def current_span() -> Span:
    """The active span, or the shared no-op span outside any trace."""
    state = _current.get()
    return state[1] if state is not None else NOOP_SPAN


@contextmanager
def start_trace(root_name: str = "query", force: bool = False) -> Iterator[Optional[Trace]]:
    """Open a fresh trace and make its root the active span.

    Yields None (tracing nothing) when observability is disabled, unless
    ``force=True`` — explicit ``{"op": "trace"}`` requests trace even
    under ``REPRO_OBS=off`` because the caller asked for it.
    """
    if not force and not _metrics.enabled():
        yield None
        return
    trace = Trace(root_name)
    token = _current.set((trace, trace.root))
    try:
        yield trace
    finally:
        trace.finish()
        _current.reset(token)


@contextmanager
def activate(trace: Trace, parent: Span) -> Iterator[Span]:
    """Re-install a (trace, span) pair in this thread's context.

    The worker-pool bridge: the request thread captures
    ``(current_trace(), current_span())`` into the work closure, and the
    pool thread wraps execution in ``activate`` so plan/operator spans
    land under the request's execute span.
    """
    token = _current.set((trace, parent))
    try:
        yield parent
    finally:
        _current.reset(token)


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[Span]:
    """Open a child span under the active one; no-op outside a trace."""
    state = _current.get()
    if state is None:
        yield NOOP_SPAN
        return
    trace, parent = state
    child = Span(name)
    if attrs:
        child.attrs.update(attrs)
    parent.children.append(child)
    token = _current.set((trace, child))
    try:
        yield child
    finally:
        child.finish()
        _current.reset(token)


@contextmanager
def request_trace(root_name: str = "query", **attrs: Any) -> Iterator[Optional[Trace]]:
    """Trace this request unless one is already active (then join it).

    The entry-surface helper: `execute_sql`, `Session.execute`,
    `PreparedQuery.run`, and the TCP handler all pass through here, and
    only the outermost one owns the trace.  On close, the owned trace is
    recorded (``query_seconds`` histogram + slow-query log).
    """
    if _current.get() is not None or not _metrics.enabled():
        yield None
        return
    with start_trace(root_name) as trace:
        if attrs and trace is not None:
            trace.root.attrs.update(attrs)
        try:
            yield trace
        finally:
            if trace is not None:
                trace.finish()
                record_finished(trace)


def record_finished(trace: Trace) -> None:
    """Feed a finished trace to ``query_seconds`` and the slow-query log.

    Request-owned traces get this automatically on close; explicit
    ``{"op": "trace"}`` requests call it directly so their queries count
    in the same histograms as implicit ones.
    """
    from . import slowlog

    seconds = trace.duration
    cost_class = trace.root.attrs.get("cost_class", "unknown")
    _metrics.histogram(
        "query_seconds", "End-to-end latency of traced requests"
    ).observe(seconds, cls=cost_class)
    slowlog.record(trace)
