"""Workload history: per-fingerprint aggregates across requests.

The PR 7 obs layer records *per-request* facts — one trace, one slowlog
entry, per-entry plan-cache feedback.  Nothing aggregates across requests
into a workload shape an advisor could act on.  This module is that
aggregation: a process-wide, lock-guarded, bounded LRU keyed by **query
fingerprint** — the stable identity of a statement with literals and
``$n`` bindings normalized out (:func:`repro.core.translate.query_fingerprint`).
``SELECT ... WHERE x = 5``, ``... WHERE x = 7``, and ``... WHERE x = $1``
all land in one history entry.

Each entry accumulates what the self-tuning story needs: call counts and
plan-cache hit counts, a latency histogram, rows returned,
estimate-vs-actual drift, cost class, index-vs-scan access-path choices,
and the predicate (relation, column, operator) shapes the planner saw.
:mod:`repro.obs.report` turns a snapshot of this history into ranked
index recommendations.

The store follows the metrics registry's discipline exactly: module-level
singleton, one lock, every recording call short-circuits when
``REPRO_OBS=off`` (see :func:`repro.obs.metrics.enabled`), and a
``reset_workload()`` hook for tests.  The per-execution *profile* (the
predicate/access-path shape) is computed once at plan-cache-entry
creation and rides the cached payload, so the steady-state recording cost
is one lock acquisition and a handful of integer bumps.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, List, Mapping, Optional, Tuple

from .metrics import Histogram, enabled

__all__ = [
    "record_execution",
    "workload_snapshot",
    "reset_workload",
    "configure_workload",
    "WORKLOAD_LIMIT",
]

#: Default bound on distinct fingerprints retained (LRU beyond this).
WORKLOAD_LIMIT = 512

#: Estimate/actual ratio beyond which a run counts as "drifted".
DRIFT_THRESHOLD = 10.0


class _FingerprintEntry:
    """Accumulated history for one query fingerprint."""

    __slots__ = (
        "fingerprint",
        "plan_key",
        "sql",
        "cost_class",
        "relations",
        "predicates",
        "access_paths",
        "calls",
        "cached_hits",
        "rows_out",
        "estimated_rows",
        "actual_rows",
        "drift_runs",
        "max_drift",
        "total_seconds",
        "latency",
    )

    def __init__(self, profile: Mapping[str, Any]):
        self.fingerprint: str = profile["fingerprint"]
        self.plan_key: Optional[str] = profile.get("plan_key")
        self.sql: Optional[str] = None
        self.cost_class: str = profile.get("cost_class", "unknown")
        self.relations: Tuple[str, ...] = tuple(profile.get("relations", ()))
        #: (relation, column, op) -> times seen (per execution)
        self.predicates: Dict[Tuple[str, str, str], int] = {}
        #: access-path label (seq_scan/index_scan/...) -> operator count
        self.access_paths: Dict[str, int] = {}
        self.calls = 0
        self.cached_hits = 0
        self.rows_out = 0
        self.estimated_rows = 0  # last run
        self.actual_rows = 0  # last run
        self.drift_runs = 0
        self.max_drift = 1.0
        self.total_seconds = 0.0
        self.latency = Histogram(f"workload:{self.fingerprint}")


_lock = threading.Lock()
_entries: "OrderedDict[str, _FingerprintEntry]" = OrderedDict()
_limit = WORKLOAD_LIMIT


def drift_ratio(estimated: float, actual: float) -> float:
    """How far apart an estimate and an actual are, as a >= 1 ratio."""
    high = max(estimated, actual)
    if high <= 0:
        return 1.0
    return high / max(min(estimated, actual), 1)


def record_execution(
    profile: Optional[Mapping[str, Any]],
    *,
    seconds: float,
    rows: int,
    cached: bool,
    estimated: Optional[float] = None,
    actual: Optional[float] = None,
    sql: Optional[str] = None,
) -> None:
    """Fold one execution into the history (no-op when obs is off).

    ``profile`` is the plan-time shape built at plan-cache-entry creation
    (see ``translate._workload_profile``); ``None`` — an unfingerprintable
    query — records nothing.
    """
    if not enabled() or not profile:
        return
    fingerprint = profile.get("fingerprint")
    if not fingerprint:
        return
    with _lock:
        entry = _entries.get(fingerprint)
        if entry is None:
            entry = _FingerprintEntry(profile)
            _entries[fingerprint] = entry
            while len(_entries) > _limit:
                _entries.popitem(last=False)
        else:
            _entries.move_to_end(fingerprint)
        entry.calls += 1
        if cached:
            entry.cached_hits += 1
        if sql and entry.sql is None:
            entry.sql = sql
        entry.rows_out += rows
        entry.total_seconds += seconds
        for pred in profile.get("predicates", ()):
            key = tuple(pred)
            entry.predicates[key] = entry.predicates.get(key, 0) + 1
        for label, n in (profile.get("access_paths") or {}).items():
            entry.access_paths[label] = entry.access_paths.get(label, 0) + n
        if estimated is not None and actual is not None:
            entry.estimated_rows = estimated
            entry.actual_rows = actual
            drift = drift_ratio(estimated, actual)
            if drift > entry.max_drift:
                entry.max_drift = drift
            if drift > DRIFT_THRESHOLD:
                entry.drift_runs += 1
    # the per-entry histogram has its own lock; observe outside ours
    entry.latency.observe(seconds)


def _entry_snapshot(entry: _FingerprintEntry) -> Dict[str, Any]:
    p50 = entry.latency.percentile(50)
    p95 = entry.latency.percentile(95)
    return {
        "fingerprint": entry.fingerprint,
        "plan_key": entry.plan_key,
        "sql": entry.sql,
        "cost_class": entry.cost_class,
        "relations": list(entry.relations),
        "predicates": [
            {"relation": rel, "column": col, "op": op, "count": count}
            for (rel, col, op), count in sorted(entry.predicates.items())
        ],
        "access_paths": dict(sorted(entry.access_paths.items())),
        "calls": entry.calls,
        "cached_hits": entry.cached_hits,
        "rows_out": entry.rows_out,
        "estimated_rows": entry.estimated_rows,
        "actual_rows": entry.actual_rows,
        "drift_runs": entry.drift_runs,
        "max_drift": entry.max_drift,
        "total_ms": entry.total_seconds * 1000.0,
        "mean_ms": (entry.total_seconds / entry.calls) * 1000.0 if entry.calls else 0.0,
        "p50_ms": p50 * 1000.0 if p50 is not None else None,
        "p95_ms": p95 * 1000.0 if p95 is not None else None,
    }


def workload_snapshot(limit: Optional[int] = None) -> List[Dict[str, Any]]:
    """The history as JSON-ready dicts, most-called fingerprints first."""
    with _lock:
        entries = list(_entries.values())
    entries.sort(key=lambda e: (e.calls, e.total_seconds), reverse=True)
    if limit is not None:
        entries = entries[: max(0, int(limit))]
    return [_entry_snapshot(entry) for entry in entries]


def workload_size() -> int:
    """Distinct fingerprints currently retained."""
    with _lock:
        return len(_entries)


def configure_workload(limit: int) -> int:
    """Set the history bound (trimming immediately); returns the previous."""
    global _limit
    with _lock:
        previous = _limit
        _limit = max(1, int(limit))
        while len(_entries) > _limit:
            _entries.popitem(last=False)
    return previous


def reset_workload() -> None:
    """Drop every history entry (tests; mirrors ``reset_metrics``)."""
    with _lock:
        _entries.clear()
