"""Resource accounting: who spent what, by session and by cost class.

The metrics registry answers "how is the *server* doing"; this module
answers "who is spending the resources".  Two lock-guarded, process-wide
tallies, both following the registry's discipline (singleton, one lock,
``REPRO_OBS=off`` short-circuits recording, a reset hook):

* **per cost class** — queries, rows returned, bytes rendered, queue
  (admission-wait) seconds, and execution seconds, keyed by the admission
  cost class (``point``/``scan``/``join``/``heavy``/``conf``/``cold``/
  ``dml``/...), and
* **per session** — the same counters keyed by a small integer id handed
  out at session creation (:func:`register_session`), bounded LRU so a
  server that churns connections never grows without bound.

Recording sites: :meth:`repro.server.session.Session._run` (statements,
rows, execution time), :meth:`repro.server.admission.AdmissionController.admit`
(queue wait, class-level — a request waits before it has run anything),
and the server's render path (bytes written to the wire).  Surfaced as
the ``accounting`` key of ``QueryServer.stats()``.
"""

from __future__ import annotations

import itertools
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional

from .metrics import enabled

__all__ = [
    "register_session",
    "record_statement",
    "record_wait",
    "record_render",
    "accounting_snapshot",
    "reset_accounting",
    "SESSION_LIMIT",
]

#: Sessions retained in the per-session tally (LRU beyond this).
SESSION_LIMIT = 256


class _Tally:
    __slots__ = ("queries", "rows", "bytes_rendered", "queue_seconds", "execute_seconds")

    def __init__(self) -> None:
        self.queries = 0
        self.rows = 0
        self.bytes_rendered = 0
        self.queue_seconds = 0.0
        self.execute_seconds = 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {
            "queries": self.queries,
            "rows": self.rows,
            "bytes_rendered": self.bytes_rendered,
            "queue_ms": self.queue_seconds * 1000.0,
            "execute_ms": self.execute_seconds * 1000.0,
        }


_lock = threading.Lock()
_by_class: Dict[str, _Tally] = {}
_sessions: "OrderedDict[int, _Tally]" = OrderedDict()
_session_ids = itertools.count(1)


def register_session() -> int:
    """A fresh accounting id for one session (cheap; works even when off)."""
    return next(_session_ids)


def _session_tally(session_id: Optional[int]) -> Optional[_Tally]:
    # caller holds _lock
    if session_id is None:
        return None
    tally = _sessions.get(session_id)
    if tally is None:
        tally = _sessions[session_id] = _Tally()
        while len(_sessions) > SESSION_LIMIT:
            _sessions.popitem(last=False)
    else:
        _sessions.move_to_end(session_id)
    return tally


def _class_tally(cost_class: Optional[str]) -> _Tally:
    # caller holds _lock
    # "cold" mirrors the plan cache's label for un-classified entries
    name = cost_class or "cold"
    tally = _by_class.get(name)
    if tally is None:
        tally = _by_class[name] = _Tally()
    return tally


def record_statement(
    session_id: Optional[int],
    cost_class: Optional[str],
    *,
    rows: int,
    seconds: float,
) -> None:
    """One finished statement: bump queries/rows/execution time."""
    if not enabled():
        return
    with _lock:
        for tally in (_class_tally(cost_class), _session_tally(session_id)):
            if tally is None:
                continue
            tally.queries += 1
            tally.rows += rows
            tally.execute_seconds += seconds


def record_wait(cost_class: Optional[str], seconds: float) -> None:
    """Admission-queue wait (class-level; waits precede session work)."""
    if not enabled():
        return
    with _lock:
        _class_tally(cost_class).queue_seconds += seconds


def record_render(
    session_id: Optional[int], nbytes: int, cost_class: Optional[str] = None
) -> None:
    """Bytes serialized onto the wire for one response."""
    if not enabled():
        return
    with _lock:
        _class_tally(cost_class).bytes_rendered += nbytes
        tally = _session_tally(session_id)
        if tally is not None:
            tally.bytes_rendered += nbytes


def accounting_snapshot() -> Dict[str, Any]:
    """JSON-ready ``{"by_class": {...}, "sessions": {id: {...}}}``."""
    with _lock:
        return {
            "by_class": {
                name: tally.snapshot() for name, tally in sorted(_by_class.items())
            },
            "sessions": {
                session_id: tally.snapshot()
                for session_id, tally in _sessions.items()
            },
        }


def reset_accounting() -> None:
    """Drop every tally (tests; mirrors ``reset_metrics``)."""
    with _lock:
        _by_class.clear()
        _sessions.clear()
