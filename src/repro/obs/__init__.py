"""``repro.obs`` — the unified observability layer.

Three always-on, low-overhead pieces threaded through the whole serving
stack (SQL front-end, sessions, admission, executor, plan cache, DML,
segment log):

* :mod:`repro.obs.metrics` — a process-wide **metrics registry**: named
  counters, gauges, and bucketed latency histograms with label support
  (``queries_total{class="join",cached="true"}``), thread-safe with
  *exact* counts, exposed as a JSON snapshot (with p50/p95/p99 per
  histogram series) and Prometheus-style text.
* :mod:`repro.obs.trace` — **query-lifecycle tracing**: a per-request
  :class:`~repro.obs.trace.Trace` of timed spans (``parse`` →
  ``admission`` → ``execute`` → [``plan``] → ``render``) propagated
  across the session / admission / worker-pool layers via a context
  variable, with per-operator actual row counts captured from the
  executor's existing accounting (no re-run).
* :mod:`repro.obs.slowlog` — a **slow-query log**: a bounded buffer of
  the N slowest traces plus a threshold-triggered structured log line on
  the ``repro.obs.slowlog`` logger.
* :mod:`repro.obs.workload` — a **workload history**: bounded
  per-fingerprint aggregates (calls, latency, rows, estimate drift,
  predicate shapes, access paths) across requests, feeding the
  :mod:`repro.obs.report` advisory index analyzer.
* :mod:`repro.obs.accounting` — **resource accounting**: queries, rows,
  bytes rendered, and queue/execution time tallied per session and per
  admission cost class, surfaced through ``QueryServer.stats()``.

The escape hatch: ``REPRO_OBS=off`` in the environment (or
:func:`set_enabled` at runtime) turns every metric update, workload/
accounting record, and implicit trace into a no-op; explicit
``{"op": "trace"}`` requests still trace (the caller asked).  The
``make bench-smoke`` and ``make bench-obs`` gates hold the enabled-mode
overhead on the Figure 12 queries to <= 5%.
"""

from .accounting import (
    accounting_snapshot,
    record_render,
    record_statement,
    record_wait,
    register_session,
    reset_accounting,
)
from .metrics import (
    MetricsRegistry,
    counter,
    enabled,
    gauge,
    histogram,
    metrics_snapshot,
    registry,
    render_prometheus,
    reset_metrics,
    set_enabled,
)
from .slowlog import reset_slow_queries, slow_queries
from .trace import (
    Span,
    Trace,
    activate,
    current_span,
    current_trace,
    record_finished,
    request_trace,
    span,
    start_trace,
)
from .workload import (
    configure_workload,
    record_execution,
    reset_workload,
    workload_size,
    workload_snapshot,
)

__all__ = [
    "MetricsRegistry",
    "registry",
    "counter",
    "gauge",
    "histogram",
    "metrics_snapshot",
    "render_prometheus",
    "reset_metrics",
    "enabled",
    "set_enabled",
    "Trace",
    "Span",
    "start_trace",
    "activate",
    "span",
    "current_trace",
    "current_span",
    "request_trace",
    "record_finished",
    "slow_queries",
    "reset_slow_queries",
    "record_execution",
    "workload_snapshot",
    "workload_size",
    "configure_workload",
    "reset_workload",
    "register_session",
    "record_statement",
    "record_wait",
    "record_render",
    "accounting_snapshot",
    "reset_accounting",
]
