"""Advisory index report: turn workload history into ranked advice.

A pure-function analyzer over a :func:`repro.obs.workload.workload_snapshot`
(plus, optionally, :func:`repro.relational.plancache.plan_cache_entries`)
that emits:

* **index recommendations** — ranked multi-column hash indexes over the
  equality columns a repeated, sequentially-scanned fingerprint filters
  on, and single-column sorted indexes for its range columns — exactly
  the shapes the planner's access-path selection can use (eq-prefix
  multi-column hash probes; sorted ranges bound on the leading column),
  expressed as ready-to-run ``CREATE INDEX`` statements against the
  representation relations; and
* **drifting plans** — fingerprints/cache entries whose optimizer
  estimate diverged more than 10x from observed actuals, the re-optimize
  signal the ROADMAP's plan-feedback loop needs.

Recommend-only in this PR: nothing here builds an index or re-plans a
query; the output is a tested signal for the next PR to act on.  Served
by the TCP ``report`` wire op and renderable from the command line::

    python -m repro.obs.report --host 127.0.0.1 --port 7878
    python -m repro.obs.report --input report.json
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, Sequence

from .workload import drift_ratio, workload_snapshot

__all__ = ["advisory_report", "render_text", "main"]

#: Executions below this never generate a recommendation (one-off queries
#: are not a workload).
MIN_CALLS = 2

#: Estimate/actual divergence that flags a plan for re-optimization.
DRIFT_THRESHOLD = 10.0

#: Operators a hash index serves (equality probes).
_EQ_OPS = ("=",)
#: Operators a sorted index serves (leading-column range scans).
_RANGE_OPS = ("<", "<=", ">", ">=", "between")


def _index_name(relation: str, columns: Sequence[str], kind: str) -> str:
    return f"idx_adv_{relation}_{'_'.join(columns)}_{kind}"


def _recommendation(
    entry: Mapping[str, Any],
    relation: str,
    columns: List[str],
    kind: str,
    predicates: List[Mapping[str, Any]],
) -> Dict[str, Any]:
    # rank by time the fingerprint spent scanning: calls alone would rank
    # a cheap hot point query above a slow scan the index actually fixes
    score = float(entry.get("total_ms") or entry["calls"])
    return {
        "relation": relation,
        "columns": columns,
        "kind": kind,
        "statement": (
            f"CREATE INDEX {_index_name(relation, columns, kind)} "
            f"ON {relation} ({', '.join(columns)}) USING {kind.upper()}"
        ),
        "score": score,
        "evidence": {
            "fingerprint": entry["fingerprint"],
            "sql": entry.get("sql"),
            "calls": entry["calls"],
            "cost_class": entry.get("cost_class"),
            "predicates": predicates,
            "access_paths": entry.get("access_paths", {}),
            "mean_ms": entry.get("mean_ms"),
            "estimate_drift": entry.get("max_drift", 1.0),
        },
    }


def _entry_recommendations(entry: Mapping[str, Any]) -> List[Dict[str, Any]]:
    access = entry.get("access_paths") or {}
    if not access.get("seq_scan"):
        return []  # every scan is already index-served
    by_relation: Dict[str, List[Mapping[str, Any]]] = {}
    for predicate in entry.get("predicates") or ():
        relation = predicate.get("relation")
        if relation:
            by_relation.setdefault(relation, []).append(predicate)
    out: List[Dict[str, Any]] = []
    for relation, predicates in sorted(by_relation.items()):
        # most-frequently-filtered columns first: that order is the index
        # column order, so the hottest column leads the eq prefix
        eq = sorted(
            (p for p in predicates if p["op"] in _EQ_OPS),
            key=lambda p: (-p["count"], p["column"]),
        )
        ranges = sorted(
            (p for p in predicates if p["op"] in _RANGE_OPS),
            key=lambda p: (-p["count"], p["column"]),
        )
        eq_columns: List[str] = []
        for p in eq:
            if p["column"] not in eq_columns:
                eq_columns.append(p["column"])
        if eq_columns:
            out.append(
                _recommendation(entry, relation, eq_columns, "hash", predicates)
            )
        if ranges:
            # sorted indexes bound ranges on the leading column only, so
            # recommend a single-column index on the hottest range column
            out.append(
                _recommendation(
                    entry, relation, [ranges[0]["column"]], "sorted", predicates
                )
            )
    return out


def advisory_report(
    history: Optional[List[Mapping[str, Any]]] = None,
    plan_entries: Optional[List[Mapping[str, Any]]] = None,
    min_calls: int = MIN_CALLS,
    drift_threshold: float = DRIFT_THRESHOLD,
) -> Dict[str, Any]:
    """The advisory report as a JSON-ready dict (pure over its inputs).

    ``history`` defaults to the live workload snapshot and
    ``plan_entries`` to the live plan-cache entries; pass explicit lists
    to analyze a saved snapshot (the function reads nothing else).
    """
    if history is None:
        history = workload_snapshot()
    if plan_entries is None:
        from ..relational.plancache import plan_cache_entries

        plan_entries = plan_cache_entries()

    merged: Dict[Any, Dict[str, Any]] = {}
    for entry in history:
        if entry["calls"] < min_calls:
            continue
        for rec in _entry_recommendations(entry):
            key = (rec["relation"], tuple(rec["columns"]), rec["kind"])
            existing = merged.get(key)
            if existing is None:
                rec["supporting_fingerprints"] = [rec["evidence"]["fingerprint"]]
                merged[key] = rec
            else:
                # several fingerprints wanting one index strengthen it
                existing["score"] += rec["score"]
                existing["supporting_fingerprints"].append(
                    rec["evidence"]["fingerprint"]
                )
    recommendations = sorted(merged.values(), key=lambda r: -r["score"])
    for rank, rec in enumerate(recommendations, start=1):
        rec["rank"] = rank

    drifting: List[Dict[str, Any]] = []
    seen_fingerprints = set()
    for entry in history:
        if entry.get("max_drift", 1.0) > drift_threshold:
            seen_fingerprints.add(entry["fingerprint"])
            drifting.append(
                {
                    "fingerprint": entry["fingerprint"],
                    "sql": entry.get("sql"),
                    "cost_class": entry.get("cost_class"),
                    "estimated_rows": entry.get("estimated_rows"),
                    "actual_rows": entry.get("actual_rows"),
                    "drift": entry.get("max_drift"),
                    "drift_runs": entry.get("drift_runs"),
                    "calls": entry["calls"],
                }
            )
    for entry in plan_entries:
        estimated = entry.get("estimated_rows")
        observed = entry.get("observed_rows")
        if not entry.get("observed_runs") or estimated is None or observed is None:
            continue
        drift = drift_ratio(estimated, observed)
        if drift <= drift_threshold:
            continue
        fingerprint = entry.get("fingerprint")
        if fingerprint is not None and fingerprint in seen_fingerprints:
            continue  # history already reported it with richer context
        drifting.append(
            {
                "fingerprint": fingerprint,
                "sql": None,
                "cost_class": entry.get("cost_class"),
                "estimated_rows": estimated,
                "actual_rows": observed,
                "drift": drift,
                "drift_runs": entry.get("observed_runs"),
                "calls": entry.get("hits"),
            }
        )
    drifting.sort(key=lambda d: -(d["drift"] or 0))

    return {
        "recommendations": recommendations,
        "drifting_plans": drifting,
        "history": {
            "fingerprints": len(history),
            "executions": sum(entry["calls"] for entry in history),
        },
    }


# ----------------------------------------------------------------------
# rendering / CLI
# ----------------------------------------------------------------------
def render_text(report: Mapping[str, Any]) -> str:
    """A human-readable rendering of an advisory report."""
    lines: List[str] = []
    history = report.get("history", {})
    lines.append(
        "Workload: "
        f"{history.get('fingerprints', 0)} fingerprints, "
        f"{history.get('executions', 0)} executions"
    )
    recommendations = report.get("recommendations", [])
    lines.append("")
    lines.append(f"Index recommendations ({len(recommendations)}):")
    if not recommendations:
        lines.append("  (none — no repeated sequentially-scanned predicates)")
    for rec in recommendations:
        evidence = rec.get("evidence", {})
        lines.append(f"  #{rec.get('rank')} [{rec['score']:.1f}] {rec['statement']}")
        lines.append(
            "      why: "
            f"fingerprint {evidence.get('fingerprint')} × {evidence.get('calls')} calls, "
            f"mean {evidence.get('mean_ms', 0) or 0:.2f} ms, "
            f"paths {evidence.get('access_paths')}"
        )
        predicates = ", ".join(
            f"{p['column']} {p['op']} (×{p['count']})"
            for p in evidence.get("predicates", [])
        )
        if predicates:
            lines.append(f"      predicates: {predicates}")
    drifting = report.get("drifting_plans", [])
    lines.append("")
    lines.append(f"Plans drifting >10x from estimates ({len(drifting)}):")
    if not drifting:
        lines.append("  (none)")
    for d in drifting:
        lines.append(
            f"  {d.get('fingerprint')} [{d.get('cost_class')}]: "
            f"estimated {d.get('estimated_rows')} vs actual {d.get('actual_rows')} "
            f"({(d.get('drift') or 0):.1f}x over {d.get('drift_runs')} runs)"
        )
    return "\n".join(lines)


def _fetch_report(host: str, port: int) -> Dict[str, Any]:
    """Ask a running query server for its report over the wire."""
    import socket

    with socket.create_connection((host, port), timeout=10.0) as sock:
        sock.sendall(json.dumps({"op": "report"}).encode() + b"\n")
        with sock.makefile("rb") as stream:
            line = stream.readline()
    response = json.loads(line)
    if not response.get("ok"):
        raise RuntimeError(f"server refused report: {response.get('error')}")
    return response["report"]


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.obs.report`` — render an advisory report."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.obs.report",
        description="Render the workload advisory index report.",
    )
    parser.add_argument("--host", help="fetch the report from a running server")
    parser.add_argument("--port", type=int, default=7878)
    parser.add_argument(
        "--input", help="read a saved report (or {'report': ...} response) JSON file"
    )
    parser.add_argument(
        "--json", action="store_true", help="emit raw JSON instead of text"
    )
    args = parser.parse_args(argv)
    if args.input:
        with open(args.input, "r", encoding="utf-8") as handle:
            report = json.load(handle)
        if "report" in report and "recommendations" not in report:
            report = report["report"]
    elif args.host:
        report = _fetch_report(args.host, args.port)
    else:
        report = advisory_report()  # the in-process history
    print(json.dumps(report, indent=2, default=str) if args.json else render_text(report))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main() tests
    raise SystemExit(main())
