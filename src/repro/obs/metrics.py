"""The metrics registry: counters, gauges, and latency histograms.

One process-wide :class:`MetricsRegistry` (module-level, like the plan and
compile caches) holds every metric by name; each metric holds one *series*
per label combination::

    from repro.obs import counter, histogram

    counter("queries_total").inc(cls="join", cached="true")
    histogram("query_seconds").observe(0.0042, cls="join")

Design points:

* **Exact under concurrency.**  Every series update takes the metric's
  lock, so N threads incrementing one counter lose nothing — the
  concurrency property suite hammers this from six threads and asserts
  the total to the increment.
* **Histograms are bucketed**, Prometheus style: fixed log-spaced latency
  bucket bounds, cumulative counts, a sum, and derived p50/p95/p99 via
  linear interpolation inside the owning bucket.  Good enough for
  admission tuning and slow-query thresholds without storing samples.
* **Labels** are passed as keyword arguments and normalized to a sorted
  tuple, so ``inc(a="1", b="2")`` and ``inc(b="2", a="1")`` hit one
  series.  ``cls`` is accepted as a spelling of the reserved word
  ``class`` and rendered as ``class``.
* **The kill switch.**  ``REPRO_OBS=off`` in the environment (or
  :func:`set_enabled`) short-circuits every update at the first
  instruction; reads still work (they report whatever was recorded while
  enabled).  This is the benchmarked escape hatch the <= 5% overhead
  gate compares against.

Two export formats: :meth:`MetricsRegistry.snapshot` (JSON-shaped, what
``{"op": "stats"}`` embeds) and :meth:`MetricsRegistry.render_prometheus`
(text exposition for scraping or debugging).

Write-path maturation added its own vocabulary on top of the serving
metrics: ``compactions_total{relation}`` / ``compaction_seconds`` (the
VACUUM path), ``compaction_errors_total`` (background passes that
raised), and the transaction ledger ``txn_total`` /
``txn_committed_total`` / ``txn_rolled_back_total`` /
``txn_conflicts_total`` — conflicts count every first-updater-wins loss,
whether surfaced through the API or the TCP ``conflict`` response.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "registry",
    "counter",
    "gauge",
    "histogram",
    "metrics_snapshot",
    "render_prometheus",
    "reset_metrics",
    "enabled",
    "set_enabled",
]


#: Latency bucket upper bounds in seconds (log-spaced 100us .. 10s), plus
#: an implicit +Inf bucket.  Chosen to straddle the whole serving range:
#: cached point lookups (~100us) through cold six-way joins (~seconds).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Global on/off switch.  ``REPRO_OBS=off`` (or ``0`` / ``false``)
#: disables every metric update and implicit trace at process start.
_enabled = os.environ.get("REPRO_OBS", "on").strip().lower() not in (
    "off", "0", "false", "no",
)


def enabled() -> bool:
    """Whether observability updates are live (see ``REPRO_OBS``)."""
    return _enabled


def set_enabled(value: bool) -> bool:
    """Flip the global observability switch; returns the previous value.

    The runtime form of ``REPRO_OBS=off`` — the overhead benchmark uses it
    to interleave enabled/disabled arms inside one process.
    """
    global _enabled
    previous = _enabled
    _enabled = bool(value)
    return previous


def _label_key(labels: Mapping[str, Any]) -> Tuple[Tuple[str, str], ...]:
    """Normalize kwargs labels to a canonical hashable key.

    ``cls`` is accepted for the reserved word ``class`` (the admission
    cost class is the most common label in this codebase).
    """
    if not labels:
        return ()
    return tuple(
        sorted(("class" if k == "cls" else k, str(v)) for k, v in labels.items())
    )


def _label_text(key: Tuple[Tuple[str, str], ...]) -> str:
    """The snapshot's series key: ``a=1,b=2`` (empty string when unlabeled)."""
    return ",".join(f"{k}={v}" for k, v in key)


def _prometheus_labels(key: Tuple[Tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in key]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class Counter:
    """A monotonically increasing per-series counter."""

    kind = "counter"
    __slots__ = ("name", "help", "_lock", "_series")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._series: Dict[Tuple[Tuple[str, str], ...], float] = {}

    def inc(self, amount: float = 1, **labels: Any) -> None:
        if not _enabled:
            return
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0)

    def total(self) -> float:
        """The sum across all label combinations."""
        with self._lock:
            return sum(self._series.values())

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            return {_label_text(key): value for key, value in sorted(self._series.items())}


class Gauge:
    """A per-series value that can go up and down (set/add)."""

    kind = "gauge"
    __slots__ = ("name", "help", "_lock", "_series")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._series: Dict[Tuple[Tuple[str, str], ...], float] = {}

    def set(self, value: float, **labels: Any) -> None:
        if not _enabled:
            return
        with self._lock:
            self._series[_label_key(labels)] = value

    def add(self, amount: float = 1, **labels: Any) -> None:
        if not _enabled:
            return
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0)

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            return {_label_text(key): value for key, value in sorted(self._series.items())}


class _HistogramSeries:
    __slots__ = ("counts", "count", "sum", "minimum", "maximum")

    def __init__(self, bucket_count: int):
        self.counts = [0] * bucket_count  # per-bucket (non-cumulative) counts
        self.count = 0
        self.sum = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None


class Histogram:
    """A bucketed latency histogram with derived percentiles.

    Observations land in fixed log-spaced buckets (:data:`DEFAULT_BUCKETS`
    plus +Inf); :meth:`percentile` interpolates linearly inside the owning
    bucket, clamped by the observed min/max so tiny series don't report a
    percentile outside anything ever seen.
    """

    kind = "histogram"
    __slots__ = ("name", "help", "buckets", "_lock", "_series")

    def __init__(self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_BUCKETS):
        self.name = name
        self.help = help
        self.buckets: Tuple[float, ...] = tuple(buckets)
        self._lock = threading.Lock()
        self._series: Dict[Tuple[Tuple[str, str], ...], _HistogramSeries] = {}

    def observe(self, value: float, **labels: Any) -> None:
        if not _enabled:
            return
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.buckets) + 1)
            slot = len(self.buckets)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    slot = i
                    break
            series.counts[slot] += 1
            series.count += 1
            series.sum += value
            if series.minimum is None or value < series.minimum:
                series.minimum = value
            if series.maximum is None or value > series.maximum:
                series.maximum = value

    def count(self, **labels: Any) -> int:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series.count if series is not None else 0

    def percentile(self, p: float, **labels: Any) -> Optional[float]:
        """The p-th percentile (0..100) of one series, or None when empty."""
        with self._lock:
            series = self._series.get(_label_key(labels))
            if series is None or series.count == 0:
                return None
            return self._percentile_locked(series, p)

    def _percentile_locked(self, series: _HistogramSeries, p: float) -> float:
        target = max(1e-12, (p / 100.0)) * series.count
        seen = 0.0
        lower = 0.0
        for i, raw in enumerate(series.counts):
            if raw == 0:
                lower = self.buckets[i] if i < len(self.buckets) else lower
                continue
            if seen + raw >= target:
                upper = (
                    self.buckets[i]
                    if i < len(self.buckets)
                    else (series.maximum if series.maximum is not None else lower)
                )
                fraction = (target - seen) / raw
                value = lower + (upper - lower) * fraction
                # clamp by what was actually observed
                if series.maximum is not None:
                    value = min(value, series.maximum)
                if series.minimum is not None:
                    value = max(value, series.minimum)
                return value
            seen += raw
            lower = self.buckets[i] if i < len(self.buckets) else lower
        return series.maximum if series.maximum is not None else lower

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        with self._lock:
            out: Dict[str, Dict[str, float]] = {}
            for key, series in sorted(self._series.items()):
                if series.count == 0:
                    continue
                out[_label_text(key)] = {
                    "count": series.count,
                    "sum": series.sum,
                    "min": series.minimum,
                    "max": series.maximum,
                    "p50": self._percentile_locked(series, 50),
                    "p95": self._percentile_locked(series, 95),
                    "p99": self._percentile_locked(series, 99),
                }
            return out

    def _prometheus_lines(self) -> List[str]:
        with self._lock:
            lines: List[str] = []
            for key, series in sorted(self._series.items()):
                cumulative = 0
                for i, bound in enumerate(self.buckets):
                    cumulative += series.counts[i]
                    labels = _prometheus_labels(key, f'le="{bound}"')
                    lines.append(f"{self.name}_bucket{labels} {cumulative}")
                cumulative += series.counts[-1]
                labels = _prometheus_labels(key, 'le="+Inf"')
                lines.append(f"{self.name}_bucket{labels} {cumulative}")
                lines.append(f"{self.name}_sum{_prometheus_labels(key)} {series.sum}")
                lines.append(f"{self.name}_count{_prometheus_labels(key)} {series.count}")
            return lines


class MetricsRegistry:
    """A named collection of metrics; get-or-create by (name, kind)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: Dict[str, Any] = {}

    def _get(self, name: str, factory, kind: str, **kwargs: Any):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = factory(name, **kwargs)
            elif metric.kind != kind:
                raise TypeError(
                    f"metric {name!r} is a {metric.kind}, not a {kind}"
                )
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, Counter, "counter", help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, Gauge, "gauge", help=help)

    def histogram(
        self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get(name, Histogram, "histogram", help=help, buckets=buckets)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """JSON-shaped state: ``{"counters": {...}, "gauges": {...},
        "histograms": {...}}`` with p50/p95/p99 per histogram series.

        Metrics that never recorded a series are omitted (instrumentation
        sites get-or-create their metric even when ``REPRO_OBS=off``
        swallows the update, and an empty entry reads as a recording).
        """
        with self._lock:
            metrics = list(self._metrics.values())
        out: Dict[str, Dict[str, Any]] = {"counters": {}, "gauges": {}, "histograms": {}}
        for metric in sorted(metrics, key=lambda m: m.name):
            series = metric.snapshot()
            if series:
                out[metric.kind + "s"][metric.name] = series
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition of every metric and series."""
        with self._lock:
            metrics = list(self._metrics.values())
        lines: List[str] = []
        for metric in sorted(metrics, key=lambda m: m.name):
            if not metric.snapshot():  # never recorded: nothing to expose
                continue
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            if isinstance(metric, Histogram):
                lines.extend(metric._prometheus_lines())
            else:
                for key, value in metric.snapshot().items():
                    labels = (
                        "{" + ",".join(
                            f'{k}="{v}"' for k, v in (p.split("=", 1) for p in key.split(","))
                        ) + "}"
                        if key
                        else ""
                    )
                    lines.append(f"{metric.name}{labels} {value}")
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        """Drop every metric (test/bench hook, mirrors the cache resets)."""
        with self._lock:
            self._metrics.clear()


#: The process-wide registry every instrumentation site records into.
_registry = MetricsRegistry()


def registry() -> MetricsRegistry:
    return _registry


def counter(name: str, help: str = "") -> Counter:
    return _registry.counter(name, help=help)


def gauge(name: str, help: str = "") -> Gauge:
    return _registry.gauge(name, help=help)


def histogram(name: str, help: str = "", buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
    return _registry.histogram(name, help=help, buckets=buckets)


def metrics_snapshot() -> Dict[str, Dict[str, Any]]:
    return _registry.snapshot()


def render_prometheus() -> str:
    return _registry.render_prometheus()


def reset_metrics() -> None:
    _registry.reset()
