"""repro — a reproduction of "Fast and Simple Relational Processing of
Uncertain Data" (Antova, Jansen, Koch, Olteanu; ICDE 2008).

The package implements **U-relations**, the attribute-level representation
system for uncertain databases underlying MayBMS, together with everything
the paper's evaluation depends on:

* :mod:`repro.relational` — an in-memory relational engine (the PostgreSQL
  stand-in): algebra, optimizer, physical operators, EXPLAIN;
* :mod:`repro.core` — U-relations: world tables, ws-descriptors, the
  Figure 4 query translation, reduction, normalization, certain answers,
  probabilistic confidence;
* :mod:`repro.wsd` — world-set decompositions (baseline, Section 5);
* :mod:`repro.uldb` — Trio-style ULDBs with lineage (baseline, Section 5);
* :mod:`repro.tpch` — a TPC-H population generator and the paper's queries;
* :mod:`repro.ugen` — the Section 6 uncertain-data generator;
* :mod:`repro.bench` — benchmark harness utilities.

Sixty-second tour::

    from repro import (WorldTable, Descriptor, URelation, UDatabase,
                       Rel, USelect, UProject, Poss, execute_query)
    from repro.relational import col, lit

    w = WorldTable({"x": [1, 2]})
    udb = UDatabase(w)
    udb.add_relation("r", ["name"], [URelation.build(
        [(Descriptor(x=1), 1, ("alice",)), (Descriptor(x=2), 1, ("bob",))],
        tid_name="tid_r", value_names=["name"])])
    print(execute_query(Poss(Rel("r")), udb).pretty())
"""

from .core import (
    Certain,
    Descriptor,
    Poss,
    Rel,
    UDatabase,
    UJoin,
    UMerge,
    UProject,
    UQuery,
    URelation,
    USelect,
    UUnion,
    WorldTable,
    certain_answers,
    confidence_relation,
    evaluate_in_world,
    execute_query,
    normalize_udatabase,
    reduce_udatabase,
    translate,
    tuple_confidences,
)
from .relational import Database, Relation, col, lit
from .sql import execute_sql, parse as parse_sql

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # representation
    "WorldTable",
    "Descriptor",
    "URelation",
    "UDatabase",
    # queries
    "UQuery",
    "Rel",
    "USelect",
    "UProject",
    "UJoin",
    "UUnion",
    "UMerge",
    "Poss",
    "Certain",
    "translate",
    "execute_query",
    "evaluate_in_world",
    # algorithms
    "normalize_udatabase",
    "reduce_udatabase",
    "certain_answers",
    "tuple_confidences",
    "confidence_relation",
    # SQL front-end
    "execute_sql",
    "parse_sql",
    # substrate re-exports
    "Database",
    "Relation",
    "col",
    "lit",
]
