"""``repro.sql`` — a SQL front-end for uncertain queries.

Parses the SQL dialect of the paper's Figure 8 — positive
select-project-join queries wrapped in ``possible (...)`` (or
``certain (...)``) — into logical query trees, and executes them against a
:class:`~repro.core.udatabase.UDatabase`::

    from repro.sql import execute_sql

    answer = execute_sql(
        \"\"\"possible (select o.orderkey from customer c, orders o
                       where c.mktsegment = 'BUILDING'
                         and c.custkey = o.custkey
                         and o.orderdate > '1995-03-15')\"\"\",
        udb,
    )

This is the paper's "ease of use" claim made concrete: the SQL surface,
the Figure 4 translation, and the relational optimizer compose without any
uncertainty-specific operators in the engine.
"""

from ..core.translate import execute_query
from ..core.udatabase import UDatabase
from .lexer import SqlSyntaxError, tokenize
from .parser import CreateIndex, DropIndex, parse

__all__ = [
    "parse",
    "execute_sql",
    "tokenize",
    "SqlSyntaxError",
    "CreateIndex",
    "DropIndex",
]


def execute_sql(sql: str, udb: UDatabase, optimize: bool = True):
    """Parse and run a SQL statement against a U-relational database.

    Returns a plain :class:`~repro.relational.relation.Relation` for
    ``possible``/``certain`` statements, a
    :class:`~repro.core.urelation.URelation` otherwise.

    Index DDL (``CREATE INDEX name ON rel (cols) [USING HASH|SORTED]``,
    ``DROP INDEX name``) addresses the representation relations (the
    ``u_*`` partitions and ``w``) and is applied through the registry of
    the database view ``udb.to_database()`` — which is cached on the
    UDatabase, so definitions persist across statements and the planner
    sees the new access path on the next query.  ``CREATE INDEX`` returns
    the built :class:`~repro.relational.index.Index`; ``DROP INDEX``
    returns ``None``.
    """
    statement = parse(sql)
    if isinstance(statement, CreateIndex):
        db = udb.to_database()
        # no replace: re-issuing an identical definition is idempotent,
        # but a name collision with a *different* definition (e.g. a typo
        # hitting an auto-created tid index) errors instead of silently
        # destroying the existing access path
        return db.create_index(
            statement.name,
            statement.table,
            list(statement.columns),
            kind=statement.kind,
        )
    if isinstance(statement, DropIndex):
        udb.to_database().drop_index(statement.name)
        return None
    return execute_query(statement, udb, optimize=optimize)
