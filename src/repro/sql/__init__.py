"""``repro.sql`` — a SQL front-end for uncertain queries.

Parses the SQL dialect of the paper's Figure 8 — positive
select-project-join queries wrapped in ``possible (...)`` (or
``certain (...)``) — into logical query trees, and executes them against a
:class:`~repro.core.udatabase.UDatabase`::

    from repro.sql import execute_sql

    answer = execute_sql(
        \"\"\"possible (select o.orderkey from customer c, orders o
                       where c.mktsegment = 'BUILDING'
                         and c.custkey = o.custkey
                         and o.orderdate > '1995-03-15')\"\"\",
        udb,
    )

This is the paper's "ease of use" claim made concrete: the SQL surface,
the Figure 4 translation, and the relational optimizer compose without any
uncertainty-specific operators in the engine.
"""

from ..core.translate import execute_query
from ..core.udatabase import UDatabase
from .lexer import SqlSyntaxError, tokenize
from .parser import parse

__all__ = ["parse", "execute_sql", "tokenize", "SqlSyntaxError"]


def execute_sql(sql: str, udb: UDatabase, optimize: bool = True):
    """Parse and run a SQL query against a U-relational database.

    Returns a plain :class:`~repro.relational.relation.Relation` for
    ``possible``/``certain`` statements, a
    :class:`~repro.core.urelation.URelation` otherwise.
    """
    return execute_query(parse(sql), udb, optimize=optimize)
