"""``repro.sql`` — a SQL front-end for uncertain queries.

Parses the SQL dialect of the paper's Figure 8 — positive
select-project-join queries wrapped in ``possible (...)`` (or
``certain (...)``) — into logical query trees, and executes them against a
:class:`~repro.core.udatabase.UDatabase`::

    from repro.sql import execute_sql

    answer = execute_sql(
        \"\"\"possible (select o.orderkey from customer c, orders o
                       where c.mktsegment = 'BUILDING'
                         and c.custkey = o.custkey
                         and o.orderdate > '1995-03-15')\"\"\",
        udb,
    )

This is the paper's "ease of use" claim made concrete: the SQL surface,
the Figure 4 translation, and the relational optimizer compose without any
uncertainty-specific operators in the engine.
"""

from typing import Optional, Sequence, Union

from ..core.dml import Delete, DMLResult, Insert, UncertainValue, Update
from ..core.prepared import PreparedDML, PreparedQuery
from ..core.translate import execute_query
from ..core.txn import Begin, Commit, Rollback, Transaction, TransactionConflict, TxnResult
from ..core.udatabase import UDatabase
from ..obs import request_trace
from ..obs import span as obs_span
from .lexer import SqlSyntaxError, tokenize
from .parser import CreateIndex, DropIndex, Vacuum, parse

__all__ = [
    "parse",
    "prepare",
    "execute_sql",
    "fingerprint_sql",
    "tokenize",
    "SqlSyntaxError",
    "CreateIndex",
    "DropIndex",
    "Vacuum",
    "Insert",
    "Update",
    "Delete",
    "Begin",
    "Commit",
    "Rollback",
    "Transaction",
    "TransactionConflict",
    "TxnResult",
    "UncertainValue",
    "DMLResult",
    "PreparedQuery",
    "PreparedDML",
]

#: Statement records the write path executes (rather than the query path).
_DML_TYPES = (Insert, Update, Delete)

#: Statement records applied immediately (parsed every time, never cached).
_IMMEDIATE_TYPES = (CreateIndex, DropIndex, Vacuum, Begin, Commit, Rollback)

#: Per-database prepared-statement cap.  Ad-hoc workloads that inline
#: literals produce a distinct text per query; bounding the per-udb map by
#: wholesale clearing (the plan/compile cache policy) keeps such workloads
#: flat while real prepared statements re-enter the cache on next use.
_STATEMENT_CACHE_LIMIT = 256


def _cache_statement(udb: UDatabase, sql: str, prepared: PreparedQuery) -> None:
    if len(udb._statements) >= _STATEMENT_CACHE_LIMIT:
        udb._statements.clear()
    udb._statements[sql] = prepared


def fingerprint_sql(sql: str) -> Optional[str]:
    """The workload fingerprint of a SQL query text, or ``None``.

    Parses ``sql`` and digests its structure with literals and ``$n``
    bindings normalized out (see
    :func:`repro.core.translate.query_fingerprint`), so
    ``... where x = 5``, ``... where x = 7``, and ``... where x = $1``
    all share one fingerprint.  DML, DDL, VACUUM, and transaction control
    return ``None`` — the workload history tracks queries only.
    """
    from ..core.translate import query_fingerprint

    statement = parse(sql)
    if isinstance(statement, _IMMEDIATE_TYPES + _DML_TYPES):
        return None
    return query_fingerprint(statement)


def prepare(sql: str, udb: UDatabase) -> Union[PreparedQuery, PreparedDML]:
    """Prepare a SQL query or DML statement (with optional ``$n`` slots).

    The statement is parsed once and the resulting
    :class:`~repro.core.prepared.PreparedQuery` (or, for
    INSERT/UPDATE/DELETE, :class:`~repro.core.prepared.PreparedDML`)
    cached on the database by SQL text, so ``prepare`` is idempotent.  A
    prepared query's first ``run`` plans it and inserts the physical tree
    into the prepared-plan cache, after which every execution — under any
    parameter binding — is executor-only; prepared DML reuses its parse
    the same way, and its WHERE matching rides the same plan cache.  DDL
    cannot be prepared.
    """
    cached = udb._statements.get(sql)
    if cached is not None:
        return cached
    statement = parse(sql)
    if isinstance(statement, _IMMEDIATE_TYPES):
        raise ValueError(
            "cannot prepare DDL, VACUUM, or transaction control; "
            "pass it to execute_sql instead"
        )
    if isinstance(statement, _DML_TYPES):
        prepared: Union[PreparedQuery, PreparedDML] = PreparedDML(
            statement, udb, sql=sql
        )
    else:
        prepared = PreparedQuery(statement, udb, sql=sql)
    _cache_statement(udb, sql, prepared)
    return prepared


def execute_sql(
    sql: str,
    udb: UDatabase,
    optimize: bool = True,
    params: Optional[Sequence] = None,
):
    """Parse and run a SQL statement against a U-relational database.

    Returns a plain :class:`~repro.relational.relation.Relation` for
    ``possible``/``certain`` statements, a
    :class:`~repro.core.probability.ConfidenceAnswer` (tuples + ``conf``
    column + computation summary) for ``conf (...)`` statements, a
    :class:`~repro.core.urelation.URelation` for bare queries, and a
    :class:`~repro.core.dml.DMLResult` for INSERT/UPDATE/DELETE (which
    re-execute on every call — the statement cache skips only their
    parsing).

    Queries are prepared transparently: the parsed statement is cached on
    the database by SQL text and its physical plan in the prepared-plan
    cache, so re-issuing the same text (with the same or different
    ``params`` bound to its ``$n`` slots) skips parsing, translation,
    optimization, and planning.

    Index DDL (``CREATE INDEX name ON rel (cols) [USING HASH|SORTED]``,
    ``DROP INDEX name``) addresses the representation relations (the
    ``u_*`` partitions and ``w``) and is applied through the registry of
    the database view ``udb.to_database()`` — which is cached on the
    UDatabase, so definitions persist across statements and the planner
    sees the new access path on the next query.  ``CREATE INDEX`` returns
    the built :class:`~repro.relational.index.Index`; ``DROP INDEX``
    returns ``None``.

    ``VACUUM [table]`` compacts partition segment stacks (returns a
    :class:`~repro.core.udatabase.CompactionResult`), and
    ``BEGIN``/``COMMIT``/``ROLLBACK`` open/end a database-level
    multi-statement transaction (returning a
    :class:`~repro.core.txn.TxnResult`): while one is open, DML issued
    through ``execute_sql`` stages privately and publishes atomically at
    COMMIT — see :mod:`repro.core.txn`.  Like DDL, these are applied
    immediately and never cached.
    """
    with request_trace(sql=sql):
        with obs_span("parse") as sp:
            prepared = udb._statements.get(sql)
            sp.set(cached=prepared is not None)
            if prepared is None:
                statement = parse(sql)
                if isinstance(statement, _IMMEDIATE_TYPES):
                    prepared = None
                elif isinstance(statement, _DML_TYPES):
                    prepared = PreparedDML(statement, udb, sql=sql)
                else:
                    prepared = PreparedQuery(statement, udb, sql=sql)
                if prepared is not None:
                    _cache_statement(udb, sql, prepared)
        if prepared is None:  # DDL & friends: applied immediately, never cached
            return _execute_immediate(statement, udb)
        if isinstance(prepared, PreparedDML):
            txn = udb._active_txn
            if txn is not None and txn.status == "open":
                # an open database-level transaction: stage, don't publish
                return txn.run(prepared, tuple(params or ()))
        return prepared.run(*(params or ()), optimize=optimize)


def _execute_immediate(statement, udb: UDatabase):
    """Apply a DDL / VACUUM / transaction-control statement right now.

    The transaction here is the *database-level* one (``udb._active_txn``)
    serving direct ``execute_sql`` callers; server sessions carry their
    own per-connection transaction instead (see
    :meth:`repro.server.session.Session.execute`).
    """
    from ..obs import current_trace

    trace = current_trace()
    if isinstance(statement, Begin):
        if trace is not None:
            trace.root.set(cost_class="txn")
        active = udb._active_txn
        if active is not None and active.status == "open":
            raise ValueError("a transaction is already open; COMMIT or ROLLBACK it")
        udb._active_txn = Transaction(udb)
        return TxnResult("open")
    if isinstance(statement, Commit):
        if trace is not None:
            trace.root.set(cost_class="txn")
        txn = udb._active_txn
        if txn is None or txn.status != "open":
            raise ValueError("COMMIT without an open transaction")
        udb._active_txn = None
        return txn.commit()
    if isinstance(statement, Rollback):
        if trace is not None:
            trace.root.set(cost_class="txn")
        txn = udb._active_txn
        if txn is None or txn.status != "open":
            raise ValueError("ROLLBACK without an open transaction")
        udb._active_txn = None
        return txn.rollback()
    if isinstance(statement, Vacuum):
        if trace is not None:
            trace.root.set(cost_class="vacuum")
        active = udb._active_txn
        if active is not None and active.status == "open":
            raise ValueError(
                "VACUUM cannot run inside a transaction (its swap would "
                "conflict with the transaction's own publish)"
            )
        return udb.compact(statement.table)
    if trace is not None:
        trace.root.set(cost_class="ddl")
    if isinstance(statement, CreateIndex):
        db = udb.to_database()
        # no replace: re-issuing an identical definition is
        # idempotent, but a name collision with a *different*
        # definition (e.g. a typo hitting an auto-created tid
        # index) errors instead of silently destroying the
        # existing access path
        return db.create_index(
            statement.name,
            statement.table,
            list(statement.columns),
            kind=statement.kind,
        )
    udb.to_database().drop_index(statement.name)
    return None
