"""``repro.sql`` — a SQL front-end for uncertain queries.

Parses the SQL dialect of the paper's Figure 8 — positive
select-project-join queries wrapped in ``possible (...)`` (or
``certain (...)``) — into logical query trees, and executes them against a
:class:`~repro.core.udatabase.UDatabase`::

    from repro.sql import execute_sql

    answer = execute_sql(
        \"\"\"possible (select o.orderkey from customer c, orders o
                       where c.mktsegment = 'BUILDING'
                         and c.custkey = o.custkey
                         and o.orderdate > '1995-03-15')\"\"\",
        udb,
    )

This is the paper's "ease of use" claim made concrete: the SQL surface,
the Figure 4 translation, and the relational optimizer compose without any
uncertainty-specific operators in the engine.
"""

from typing import Optional, Sequence, Union

from ..core.dml import Delete, DMLResult, Insert, UncertainValue, Update
from ..core.prepared import PreparedDML, PreparedQuery
from ..core.translate import execute_query
from ..core.udatabase import UDatabase
from ..obs import request_trace
from ..obs import span as obs_span
from .lexer import SqlSyntaxError, tokenize
from .parser import CreateIndex, DropIndex, parse

__all__ = [
    "parse",
    "prepare",
    "execute_sql",
    "tokenize",
    "SqlSyntaxError",
    "CreateIndex",
    "DropIndex",
    "Insert",
    "Update",
    "Delete",
    "UncertainValue",
    "DMLResult",
    "PreparedQuery",
    "PreparedDML",
]

#: Statement records the write path executes (rather than the query path).
_DML_TYPES = (Insert, Update, Delete)

#: Per-database prepared-statement cap.  Ad-hoc workloads that inline
#: literals produce a distinct text per query; bounding the per-udb map by
#: wholesale clearing (the plan/compile cache policy) keeps such workloads
#: flat while real prepared statements re-enter the cache on next use.
_STATEMENT_CACHE_LIMIT = 256


def _cache_statement(udb: UDatabase, sql: str, prepared: PreparedQuery) -> None:
    if len(udb._statements) >= _STATEMENT_CACHE_LIMIT:
        udb._statements.clear()
    udb._statements[sql] = prepared


def prepare(sql: str, udb: UDatabase) -> Union[PreparedQuery, PreparedDML]:
    """Prepare a SQL query or DML statement (with optional ``$n`` slots).

    The statement is parsed once and the resulting
    :class:`~repro.core.prepared.PreparedQuery` (or, for
    INSERT/UPDATE/DELETE, :class:`~repro.core.prepared.PreparedDML`)
    cached on the database by SQL text, so ``prepare`` is idempotent.  A
    prepared query's first ``run`` plans it and inserts the physical tree
    into the prepared-plan cache, after which every execution — under any
    parameter binding — is executor-only; prepared DML reuses its parse
    the same way, and its WHERE matching rides the same plan cache.  DDL
    cannot be prepared.
    """
    cached = udb._statements.get(sql)
    if cached is not None:
        return cached
    statement = parse(sql)
    if isinstance(statement, (CreateIndex, DropIndex)):
        raise ValueError("cannot prepare DDL; pass it to execute_sql instead")
    if isinstance(statement, _DML_TYPES):
        prepared: Union[PreparedQuery, PreparedDML] = PreparedDML(
            statement, udb, sql=sql
        )
    else:
        prepared = PreparedQuery(statement, udb, sql=sql)
    _cache_statement(udb, sql, prepared)
    return prepared


def execute_sql(
    sql: str,
    udb: UDatabase,
    optimize: bool = True,
    params: Optional[Sequence] = None,
):
    """Parse and run a SQL statement against a U-relational database.

    Returns a plain :class:`~repro.relational.relation.Relation` for
    ``possible``/``certain`` statements, a
    :class:`~repro.core.probability.ConfidenceAnswer` (tuples + ``conf``
    column + computation summary) for ``conf (...)`` statements, a
    :class:`~repro.core.urelation.URelation` for bare queries, and a
    :class:`~repro.core.dml.DMLResult` for INSERT/UPDATE/DELETE (which
    re-execute on every call — the statement cache skips only their
    parsing).

    Queries are prepared transparently: the parsed statement is cached on
    the database by SQL text and its physical plan in the prepared-plan
    cache, so re-issuing the same text (with the same or different
    ``params`` bound to its ``$n`` slots) skips parsing, translation,
    optimization, and planning.

    Index DDL (``CREATE INDEX name ON rel (cols) [USING HASH|SORTED]``,
    ``DROP INDEX name``) addresses the representation relations (the
    ``u_*`` partitions and ``w``) and is applied through the registry of
    the database view ``udb.to_database()`` — which is cached on the
    UDatabase, so definitions persist across statements and the planner
    sees the new access path on the next query.  ``CREATE INDEX`` returns
    the built :class:`~repro.relational.index.Index`; ``DROP INDEX``
    returns ``None``.
    """
    with request_trace(sql=sql):
        with obs_span("parse") as sp:
            prepared = udb._statements.get(sql)
            sp.set(cached=prepared is not None)
            if prepared is None:
                statement = parse(sql)
                if isinstance(statement, (CreateIndex, DropIndex)):
                    prepared = None
                elif isinstance(statement, _DML_TYPES):
                    prepared = PreparedDML(statement, udb, sql=sql)
                else:
                    prepared = PreparedQuery(statement, udb, sql=sql)
                if prepared is not None:
                    _cache_statement(udb, sql, prepared)
        if prepared is None:  # DDL: applied immediately, never cached
            from ..obs import current_trace

            trace = current_trace()
            if trace is not None:
                trace.root.set(cost_class="ddl")
            if isinstance(statement, CreateIndex):
                db = udb.to_database()
                # no replace: re-issuing an identical definition is
                # idempotent, but a name collision with a *different*
                # definition (e.g. a typo hitting an auto-created tid
                # index) errors instead of silently destroying the
                # existing access path
                return db.create_index(
                    statement.name,
                    statement.table,
                    list(statement.columns),
                    kind=statement.kind,
                )
            udb.to_database().drop_index(statement.name)
            return None
        return prepared.run(*(params or ()), optimize=optimize)
