"""Recursive-descent parser: SQL text -> logical query trees (or DDL).

The supported subset is the language of the paper's Figure 8 (positive
select-project-join queries with ``possible``), plus ``certain`` and
``union``, plus index DDL over the representation relations:

    statement  := [POSSIBLE | CERTAIN] '(' select ')'
                | CONF '(' select ')' [conf_option*]
                | select
                | CREATE INDEX name ON table '(' column (',' column)* ')'
                  [USING (HASH | SORTED)]
                | DROP INDEX name
                | INSERT INTO table VALUES row (',' row)*
                | UPDATE table SET column '=' cell (',' column '=' cell)*
                  [WHERE condition]
                | DELETE FROM table [WHERE condition]
                | VACUUM [table]
                | (BEGIN | COMMIT | ROLLBACK) [TRANSACTION | WORK]
    row        := '(' cell (',' cell)* ')'
    cell       := literal | parameter
                | '{' literal (',' literal)* '}'   -- uncertain alternatives
    select     := SELECT [DISTINCT] targets FROM tables [WHERE condition]
                  [UNION select]
    conf_option:= METHOD (exact | approx | auto)
                | EPSILON number | DELTA number | SEED number
    targets    := '*' | column (',' column)*
    tables     := name [alias] (',' name [alias])*
    condition  := disjunction of conjunctions of predicates
    predicate  := operand (= | <> | < | <= | > | >=) operand
                | operand BETWEEN literal AND literal
                | operand [NOT] IN '(' literal (',' literal)* ')'
                | operand IS [NOT] NULL
                | NOT predicate | '(' condition ')'
    operand    := column | literal | parameter
    literal    := number | 'text' | DATE 'YYYY-MM-DD'
    parameter  := '$' digits                  -- $1 is the first slot

String literals shaped like ISO dates are parsed as dates (the paper
writes ``o.orderdate > '1995-03-15'``).  ``$n`` parameters (prepared
statements) may stand anywhere a literal can, except inside IN lists;
all slots of one statement share a single binding store.

The FROM list becomes a left-deep chain of :class:`UJoin` nodes with a
trivially-true predicate; the WHERE clause sits above as one
:class:`USelect` — the optimizer then pushes conjuncts into the joins and
scans, exactly the division of labour the paper relies on PostgreSQL for.

DML statements address *logical* relations; a braced INSERT cell like
``{'Tank', 'Transport'}`` lists mutually exclusive alternatives, which
execution turns into a fresh world-table variable (see
:mod:`repro.core.dml`).
"""

from __future__ import annotations

import re
from typing import Any, List, NamedTuple, Optional, Tuple

from ..core.query import (
    Certain,
    Conf,
    Poss,
    Rel,
    UJoin,
    UProject,
    UQuery,
    USelect,
    UUnion,
)
from ..relational.expressions import (
    Between,
    Comparison,
    Expression,
    InList,
    IsNull,
    Not,
    Param,
    TRUE,
    col,
    conjunction,
    disjunction,
    lit,
)
from ..core.dml import Delete, Insert, UncertainValue, Update
from ..core.txn import Begin, Commit, Rollback
from ..relational.types import Date
from .lexer import SqlSyntaxError, Token, TokenKind, tokenize

__all__ = [
    "parse",
    "SqlSyntaxError",
    "CreateIndex",
    "DropIndex",
    "Vacuum",
    "Insert",
    "Update",
    "Delete",
    "Begin",
    "Commit",
    "Rollback",
]

_DATE_RE = re.compile(r"^\d{4}-\d{2}-\d{2}$")


class CreateIndex(NamedTuple):
    """Parsed ``CREATE INDEX name ON table (columns) [USING kind]``.

    ``table`` names a *representation* relation (a ``u_*`` partition or
    ``w``) — indexes are physical structures, so DDL addresses the plain
    relations underneath the logical uncertain schema.
    """

    name: str
    table: str
    columns: Tuple[str, ...]
    kind: str = "hash"


class DropIndex(NamedTuple):
    """Parsed ``DROP INDEX name``."""

    name: str


class Vacuum(NamedTuple):
    """Parsed ``VACUUM [table]``.

    ``table`` names a *logical* relation (``None`` compacts everything):
    vacuuming rewrites every partition's segment stack into one base
    segment — see :meth:`repro.core.udatabase.UDatabase.compact`.
    """

    table: Optional[str] = None


def parse(sql: str):
    """Parse a SQL string into a :class:`UQuery` tree or a DDL statement.

    Returns a :class:`CreateIndex`/:class:`DropIndex` record for index DDL,
    otherwise the logical query tree.
    """
    parser = _Parser(tokenize(sql))
    query = parser.statement()
    parser.expect_end()
    return query


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.index = 0
        #: Shared store backing every ``$n`` slot of this statement — one
        #: parse yields one store, which is what lets a prepared query's
        #: plan be cached once and rebound per execution.
        self.param_store: List[Any] = []

    # ------------------------------------------------------------------
    # token utilities
    # ------------------------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.current
        self.index += 1
        return token

    def accept_keyword(self, word: str) -> bool:
        if self.current.is_keyword(word):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise SqlSyntaxError(
                f"expected {word.upper()!r} but found {self.current.text!r} "
                f"at position {self.current.position}"
            )

    def accept_punct(self, text: str) -> bool:
        if self.current.kind == TokenKind.PUNCT and self.current.text == text:
            self.advance()
            return True
        return False

    def expect_punct(self, text: str) -> None:
        if not self.accept_punct(text):
            raise SqlSyntaxError(
                f"expected {text!r} but found {self.current.text!r} "
                f"at position {self.current.position}"
            )

    def expect_end(self) -> None:
        if self.current.kind != TokenKind.END:
            raise SqlSyntaxError(
                f"unexpected trailing input {self.current.text!r} "
                f"at position {self.current.position}"
            )

    # ------------------------------------------------------------------
    # grammar
    # ------------------------------------------------------------------
    def statement(self):
        if self.accept_keyword("create"):
            return self._create_index()
        if self.accept_keyword("drop"):
            return self._drop_index()
        if self.accept_keyword("insert"):
            return self._insert()
        if self.accept_keyword("update"):
            return self._update()
        if self.accept_keyword("delete"):
            return self._delete()
        if self.accept_keyword("vacuum"):
            table = None
            if self.current.kind == TokenKind.IDENT:
                table = self._name("a table name")
            return Vacuum(table)
        if self.accept_keyword("begin"):
            self._txn_noise_word()
            return Begin()
        if self.accept_keyword("commit"):
            self._txn_noise_word()
            return Commit()
        if self.accept_keyword("rollback"):
            self._txn_noise_word()
            return Rollback()
        if self.accept_keyword("possible"):
            return Poss(self._wrapped_select())
        if self.accept_keyword("certain"):
            return Certain(self._wrapped_select())
        if self.accept_keyword("conf"):
            return self._conf()
        return self.select()

    def _txn_noise_word(self) -> None:
        """Swallow the optional TRANSACTION / WORK after BEGIN/COMMIT/ROLLBACK.

        Plain identifiers, not reserved words — tables and columns named
        ``transaction`` or ``work`` stay usable everywhere else.
        """
        if (
            self.current.kind == TokenKind.IDENT
            and self.current.text.lower() in ("transaction", "work")
        ):
            self.advance()

    # -- confidence queries ---------------------------------------------
    _CONF_OPTIONS = ("method", "epsilon", "delta", "seed")

    def _conf(self) -> Conf:
        """``CONF (select ...) [METHOD m] [EPSILON e] [DELTA d] [SEED s]``.

        The options are plain identifiers, not reserved words — columns
        named ``method`` etc. stay usable everywhere else.  With an
        unparenthesized select the first option word would parse as a
        table alias, so options effectively require the parenthesized
        form (the grammar above shows it that way).
        """
        query = self._wrapped_select()
        options: dict = {}
        while (
            self.current.kind == TokenKind.IDENT
            and self.current.text.lower() in self._CONF_OPTIONS
        ):
            name = self.advance().text.lower()
            if name in options:
                raise SqlSyntaxError(
                    f"duplicate {name.upper()} option at position "
                    f"{self.current.position}"
                )
            if name == "method":
                token = self.current
                method = self._name("a confidence method").lower()
                if method not in Conf.METHODS:
                    raise SqlSyntaxError(
                        f"unknown confidence method {method!r} at position "
                        f"{token.position} (use EXACT, APPROX, or AUTO)"
                    )
                options["method"] = method
            else:
                token = self.current
                if token.kind != TokenKind.NUMBER:
                    raise SqlSyntaxError(
                        f"expected a number after {name.upper()}, found "
                        f"{token.text!r} at position {token.position}"
                    )
                self.advance()
                if name == "seed":
                    if "." in token.text:
                        raise SqlSyntaxError(
                            f"SEED takes an integer, found {token.text!r} at "
                            f"position {token.position}"
                        )
                    options[name] = int(token.text)
                else:
                    options[name] = float(token.text)
        return Conf(query, **options)

    # -- index DDL ------------------------------------------------------
    def _name(self, what: str) -> str:
        token = self.current
        if token.kind != TokenKind.IDENT:
            raise SqlSyntaxError(
                f"expected {what}, found {token.text!r} at position {token.position}"
            )
        self.advance()
        return token.text

    def _create_index(self) -> CreateIndex:
        self.expect_keyword("index")
        name = self._name("an index name")
        self.expect_keyword("on")
        table = self._name("a table name")
        self.expect_punct("(")
        columns = [self._column_name()]
        while self.accept_punct(","):
            columns.append(self._column_name())
        self.expect_punct(")")
        kind = "hash"
        if self.accept_keyword("using"):
            kind = self._name("an index kind").lower()
            if kind not in ("hash", "sorted"):
                raise SqlSyntaxError(
                    f"unknown index kind {kind!r} (use HASH or SORTED)"
                )
        return CreateIndex(name, table, tuple(columns), kind)

    def _drop_index(self) -> DropIndex:
        self.expect_keyword("index")
        return DropIndex(self._name("an index name"))

    # -- DML ------------------------------------------------------------
    def _insert(self) -> Insert:
        self.expect_keyword("into")
        table = self._name("a table name")
        self.expect_keyword("values")
        rows = [self._value_row()]
        while self.accept_punct(","):
            rows.append(self._value_row())
        return Insert(table, tuple(rows))

    def _value_row(self) -> Tuple[Any, ...]:
        self.expect_punct("(")
        cells = [self._insert_cell()]
        while self.accept_punct(","):
            cells.append(self._insert_cell())
        self.expect_punct(")")
        return tuple(cells)

    def _insert_cell(self) -> Any:
        if self.accept_punct("{"):
            alternatives = [self._literal_value()]
            while self.accept_punct(","):
                alternatives.append(self._literal_value())
            self.expect_punct("}")
            try:
                return UncertainValue(alternatives)
            except ValueError as error:
                raise SqlSyntaxError(str(error)) from None
        return self._cell()

    def _cell(self) -> Any:
        """One certain DML value: a literal, or a ``$n`` parameter slot."""
        if self.current.kind == TokenKind.PARAM:
            token = self.advance()
            return Param(int(token.text[1:]) - 1, self.param_store)
        return self._literal_value()

    def _update(self) -> Update:
        table = self._name("a table name")
        self.expect_keyword("set")
        assignments = [self._assignment()]
        while self.accept_punct(","):
            assignments.append(self._assignment())
        condition = self._condition() if self.accept_keyword("where") else None
        return Update(table, tuple(assignments), condition)

    def _assignment(self) -> Tuple[str, Any]:
        column = self._column_name()
        token = self.current
        if token.kind != TokenKind.OP or token.text != "=":
            raise SqlSyntaxError(
                f"expected '=' in SET assignment, found {token.text!r} "
                f"at position {token.position}"
            )
        self.advance()
        return column, self._cell()

    def _delete(self) -> Delete:
        self.expect_keyword("from")
        table = self._name("a table name")
        condition = self._condition() if self.accept_keyword("where") else None
        return Delete(table, condition)

    def _wrapped_select(self) -> UQuery:
        parenthesized = self.accept_punct("(")
        query = self.select()
        if parenthesized:
            self.expect_punct(")")
        return query

    def select(self) -> UQuery:
        self.expect_keyword("select")
        self.accept_keyword("distinct")  # distinct is implied by poss/certain
        targets = self._targets()
        self.expect_keyword("from")
        source = self._tables()
        if self.accept_keyword("where"):
            source = USelect(source, self._condition())
        if targets is not None:
            source = UProject(source, targets)
        if self.accept_keyword("union"):
            return UUnion(source, self.select())
        return source

    def _targets(self) -> Optional[List[str]]:
        if self.accept_punct("*"):
            return None
        names = [self._column_name()]
        while self.accept_punct(","):
            names.append(self._column_name())
        return names

    def _column_name(self) -> str:
        token = self.current
        if token.kind != TokenKind.IDENT:
            raise SqlSyntaxError(
                f"expected a column name, found {token.text!r} "
                f"at position {token.position}"
            )
        self.advance()
        return token.text

    def _tables(self) -> UQuery:
        source = self._table()
        while self.accept_punct(","):
            source = UJoin(source, self._table(), TRUE)
        return source

    def _table(self) -> Rel:
        token = self.current
        if token.kind != TokenKind.IDENT:
            raise SqlSyntaxError(
                f"expected a table name, found {token.text!r} "
                f"at position {token.position}"
            )
        self.advance()
        alias: Optional[str] = None
        self.accept_keyword("as")
        if self.current.kind == TokenKind.IDENT and "." not in self.current.text:
            alias = self.advance().text
        return Rel(token.text, alias)

    # -- conditions -----------------------------------------------------
    def _condition(self) -> Expression:
        parts = [self._conjunction()]
        while self.accept_keyword("or"):
            parts.append(self._conjunction())
        return disjunction(parts)

    def _conjunction(self) -> Expression:
        parts = [self._predicate()]
        while self.accept_keyword("and"):
            parts.append(self._predicate())
        return conjunction(parts)

    def _predicate(self) -> Expression:
        if self.accept_keyword("not"):
            return Not(self._predicate())
        if self.accept_punct("("):
            inner = self._condition()
            self.expect_punct(")")
            return inner
        operand = self._operand()
        token = self.current
        if token.kind == TokenKind.OP:
            self.advance()
            right = self._operand()
            return Comparison(token.text, operand, right)
        if token.is_keyword("between"):
            self.advance()
            low = self._literal()
            self.expect_keyword("and")
            high = self._literal()
            return Between(operand, low, high)
        if token.is_keyword("not"):
            self.advance()
            self.expect_keyword("in")
            return Not(self._in_list(operand))
        if token.is_keyword("in"):
            self.advance()
            return self._in_list(operand)
        if token.is_keyword("is"):
            self.advance()
            negated = self.accept_keyword("not")
            self.expect_keyword("null")
            test: Expression = IsNull(operand)
            return Not(test) if negated else test
        raise SqlSyntaxError(
            f"expected a comparison, found {token.text!r} at position {token.position}"
        )

    def _in_list(self, operand: Expression) -> InList:
        self.expect_punct("(")
        values = [self._literal_value()]
        while self.accept_punct(","):
            values.append(self._literal_value())
        self.expect_punct(")")
        return InList(operand, values)

    def _operand(self) -> Expression:
        token = self.current
        if token.kind == TokenKind.IDENT:
            self.advance()
            return col(token.text)
        return self._literal()  # handles $n parameter slots too

    def _literal(self) -> Expression:
        if self.current.kind == TokenKind.PARAM:
            token = self.advance()
            return Param(int(token.text[1:]) - 1, self.param_store)
        return lit(self._literal_value())

    def _literal_value(self) -> Any:
        token = self.current
        if token.is_keyword("date"):
            self.advance()
            text = self.current
            if text.kind != TokenKind.STRING:
                raise SqlSyntaxError(
                    f"expected a date string after DATE at position {text.position}"
                )
            self.advance()
            return Date(text.text)
        if token.kind == TokenKind.STRING:
            self.advance()
            if _DATE_RE.match(token.text):
                return Date(token.text)
            return token.text
        if token.kind == TokenKind.NUMBER:
            self.advance()
            if "." in token.text:
                return float(token.text)
            return int(token.text)
        if token.is_keyword("null"):
            self.advance()
            return None
        raise SqlSyntaxError(
            f"expected a literal, found {token.text!r} at position {token.position}"
        )
