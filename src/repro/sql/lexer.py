"""Tokenizer for the SQL subset understood by :mod:`repro.sql`.

Handles keywords (case-insensitive), identifiers (optionally dotted),
numeric literals, single-quoted string literals (with ``''`` escaping),
``$1``-style parameter placeholders (for prepared statements), and the
operator/punctuation set used by select-project-join queries.
"""

from __future__ import annotations

import re
from typing import Iterator, List, NamedTuple, Optional

__all__ = ["Token", "TokenKind", "tokenize", "SqlSyntaxError"]


class SqlSyntaxError(ValueError):
    """Raised on malformed SQL input (with position information)."""


class TokenKind:
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    PARAM = "param"
    OP = "op"
    PUNCT = "punct"
    END = "end"


KEYWORDS = {
    "select", "from", "where", "and", "or", "not", "between", "in", "is",
    "null", "as", "possible", "certain", "conf", "union", "date", "distinct",
    # index DDL
    "create", "drop", "index", "on", "using",
    # DML
    "insert", "into", "values", "update", "set", "delete",
    # maintenance + transaction control
    "vacuum", "begin", "commit", "rollback",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+\.\d+|\.\d+|\d+)
  | (?P<param>\$\d+)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*(\.[A-Za-z_][A-Za-z_0-9]*)?)
  | (?P<string>'(?:[^']|'')*')
  | (?P<op><>|<=|>=|!=|=|<|>)
  | (?P<punct>[(),.*{}])
    """,
    re.VERBOSE,
)


class Token(NamedTuple):
    kind: str
    text: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == TokenKind.KEYWORD and self.text == word

    def __repr__(self) -> str:
        return f"{self.kind}:{self.text}"


def tokenize(sql: str) -> List[Token]:
    """Tokenize a SQL string; raises :class:`SqlSyntaxError` on junk."""
    tokens: List[Token] = []
    position = 0
    while position < len(sql):
        match = _TOKEN_RE.match(sql, position)
        if match is None:
            raise SqlSyntaxError(
                f"unexpected character {sql[position]!r} at position {position}"
            )
        position = match.end()
        if match.lastgroup == "ws":
            continue
        text = match.group()
        if match.lastgroup == "number":
            tokens.append(Token(TokenKind.NUMBER, text, match.start()))
        elif match.lastgroup == "param":
            if int(text[1:]) == 0:
                raise SqlSyntaxError(
                    f"parameter slots start at $1 (found {text} at "
                    f"position {match.start()})"
                )
            tokens.append(Token(TokenKind.PARAM, text, match.start()))
        elif match.lastgroup == "ident":
            lowered = text.lower()
            if lowered in KEYWORDS:
                tokens.append(Token(TokenKind.KEYWORD, lowered, match.start()))
            else:
                tokens.append(Token(TokenKind.IDENT, text, match.start()))
        elif match.lastgroup == "string":
            body = text[1:-1].replace("''", "'")
            tokens.append(Token(TokenKind.STRING, body, match.start()))
        elif match.lastgroup == "op":
            normalized = "<>" if text == "!=" else text
            tokens.append(Token(TokenKind.OP, normalized, match.start()))
        else:
            tokens.append(Token(TokenKind.PUNCT, text, match.start()))
    tokens.append(Token(TokenKind.END, "", len(sql)))
    return tokens
