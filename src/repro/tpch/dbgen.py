"""A deterministic TPC-H population generator (dbgen clone).

Generates the eight TPC-H tables at a given scale factor with the value
distributions that drive the selectivities of the paper's queries:

* uniform order dates over 1992-01-01 .. 1998-08-02,
* ship dates 1..121 days after the order date,
* discounts 0.00..0.10, quantities 1..50, five market segments,
* part prices derived from the part key (so ``extendedprice`` follows the
  spec's formula), 25 nations over 5 regions.

Everything is seeded (``seed`` parameter) and reproducible.  The paper
extends dbgen 2.6 to emit uncertain databases; our equivalent extension
lives in :mod:`repro.ugen`, which post-processes these certain tables.
"""

from __future__ import annotations

import datetime
import random
from typing import Dict, List, Optional, Tuple

from ..relational.relation import Relation
from ..relational.schema import Schema
from . import dictionaries as words
from .schema import TPCH_SCHEMAS, base_cardinality

__all__ = ["generate", "generate_table", "START_DATE", "END_DATE"]

START_DATE = datetime.date(1992, 1, 1)
END_DATE = datetime.date(1998, 8, 2)
_DATE_RANGE = (END_DATE - START_DATE).days
CURRENT_DATE = datetime.date(1995, 6, 17)  # the spec's "current date"


def _comment(rng: random.Random, min_words: int = 4, max_words: int = 9) -> str:
    count = rng.randint(min_words, max_words)
    parts = []
    for i in range(count):
        pool = (
            words.COMMENT_ADVERBS,
            words.COMMENT_ADJECTIVES,
            words.COMMENT_NOUNS,
            words.COMMENT_VERBS,
        )[i % 4]
        parts.append(rng.choice(pool))
    return " ".join(parts)


def _phone(rng: random.Random, nationkey: int) -> str:
    return (
        f"{10 + nationkey}-{rng.randint(100, 999)}-"
        f"{rng.randint(100, 999)}-{rng.randint(1000, 9999)}"
    )


def _address(rng: random.Random) -> str:
    length = rng.randint(10, 40)
    alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ,"
    return "".join(rng.choice(alphabet) for _ in range(length)).strip()


def _retail_price(partkey: int) -> float:
    """The spec's price formula: 90000 + ((pk/10) % 20001) + 100*(pk % 1000), /100."""
    return (90000 + (partkey // 10) % 20001 + 100 * (partkey % 1000)) / 100.0


def generate_region() -> Relation:
    rng = random.Random(4201)
    rows = [
        (key, name, _comment(rng)) for key, name in enumerate(words.REGIONS)
    ]
    return Relation(Schema(TPCH_SCHEMAS["region"]), rows)


def generate_nation() -> Relation:
    rng = random.Random(4202)
    rows = [
        (key, name, regionkey, _comment(rng))
        for key, (name, regionkey) in enumerate(words.NATIONS)
    ]
    return Relation(Schema(TPCH_SCHEMAS["nation"]), rows)


def generate_supplier(scale: float, seed: int) -> Relation:
    rng = random.Random(seed * 7919 + 1)
    count = base_cardinality("supplier", scale)
    rows = []
    for suppkey in range(1, count + 1):
        nationkey = rng.randrange(len(words.NATIONS))
        rows.append(
            (
                suppkey,
                f"Supplier#{suppkey:09d}",
                _address(rng),
                nationkey,
                _phone(rng, nationkey),
                round(rng.uniform(-999.99, 9999.99), 2),
                _comment(rng),
            )
        )
    return Relation(Schema(TPCH_SCHEMAS["supplier"]), rows)


def generate_part(scale: float, seed: int) -> Relation:
    rng = random.Random(seed * 7919 + 2)
    count = base_cardinality("part", scale)
    rows = []
    for partkey in range(1, count + 1):
        name = " ".join(rng.sample(words.PART_NAME_WORDS, 5))
        mfgr_id = rng.randint(1, 5)
        brand = f"Brand#{mfgr_id}{rng.randint(1, 5)}"
        ptype = (
            f"{rng.choice(words.TYPE_SYLLABLE_1)} "
            f"{rng.choice(words.TYPE_SYLLABLE_2)} "
            f"{rng.choice(words.TYPE_SYLLABLE_3)}"
        )
        container = (
            f"{rng.choice(words.CONTAINER_SYLLABLE_1)} "
            f"{rng.choice(words.CONTAINER_SYLLABLE_2)}"
        )
        rows.append(
            (
                partkey,
                name,
                f"Manufacturer#{mfgr_id}",
                brand,
                ptype,
                rng.randint(1, 50),
                container,
                _retail_price(partkey),
                _comment(rng),
            )
        )
    return Relation(Schema(TPCH_SCHEMAS["part"]), rows)


def generate_partsupp(scale: float, seed: int) -> Relation:
    rng = random.Random(seed * 7919 + 3)
    part_count = base_cardinality("part", scale)
    supp_count = base_cardinality("supplier", scale)
    rows = []
    for partkey in range(1, part_count + 1):
        for i in range(4):
            suppkey = (partkey + i * (supp_count // 4 + 1)) % supp_count + 1
            rows.append(
                (
                    partkey,
                    suppkey,
                    rng.randint(1, 9999),
                    round(rng.uniform(1.00, 1000.00), 2),
                    _comment(rng),
                )
            )
    return Relation(Schema(TPCH_SCHEMAS["partsupp"]), rows)


def generate_customer(scale: float, seed: int) -> Relation:
    rng = random.Random(seed * 7919 + 4)
    count = base_cardinality("customer", scale)
    rows = []
    for custkey in range(1, count + 1):
        nationkey = rng.randrange(len(words.NATIONS))
        rows.append(
            (
                custkey,
                f"Customer#{custkey:09d}",
                _address(rng),
                nationkey,
                _phone(rng, nationkey),
                round(rng.uniform(-999.99, 9999.99), 2),
                rng.choice(words.SEGMENTS),
                _comment(rng),
            )
        )
    return Relation(Schema(TPCH_SCHEMAS["customer"]), rows)


def generate_orders_and_lineitem(
    scale: float, seed: int, part_count: int, supp_count: int, cust_count: int
) -> Tuple[Relation, Relation]:
    rng = random.Random(seed * 7919 + 5)
    order_count = base_cardinality("orders", scale)
    order_rows = []
    line_rows = []
    for orderkey in range(1, order_count + 1):
        custkey = rng.randint(1, cust_count)
        orderdate = START_DATE + datetime.timedelta(days=rng.randint(0, _DATE_RANGE - 151))
        line_count = rng.randint(1, 7)
        total = 0.0
        all_filled = True
        any_filled = False
        for linenumber in range(1, line_count + 1):
            partkey = rng.randint(1, part_count)
            suppkey = (partkey + rng.randint(0, 3) * (supp_count // 4 + 1)) % supp_count + 1
            quantity = rng.randint(1, 50)
            extendedprice = round(quantity * _retail_price(partkey), 2)
            discount = round(rng.uniform(0.0, 0.10), 2)
            tax = round(rng.uniform(0.0, 0.08), 2)
            shipdate = orderdate + datetime.timedelta(days=rng.randint(1, 121))
            commitdate = orderdate + datetime.timedelta(days=rng.randint(30, 90))
            receiptdate = shipdate + datetime.timedelta(days=rng.randint(1, 30))
            if receiptdate <= CURRENT_DATE:
                returnflag = rng.choice(["R", "A"])
            else:
                returnflag = "N"
            linestatus = "F" if shipdate <= CURRENT_DATE else "O"
            all_filled = all_filled and linestatus == "F"
            any_filled = any_filled or linestatus == "F"
            total += extendedprice * (1 + tax) * (1 - discount)
            line_rows.append(
                (
                    orderkey, partkey, suppkey, linenumber, quantity,
                    extendedprice, discount, tax, returnflag, linestatus,
                    shipdate, commitdate, receiptdate,
                    rng.choice(words.SHIP_INSTRUCTIONS),
                    rng.choice(words.SHIP_MODES),
                    _comment(rng),
                )
            )
        if all_filled:
            status = "F"
        elif any_filled:
            status = "P"
        else:
            status = "O"
        order_rows.append(
            (
                orderkey,
                custkey,
                status,
                round(total, 2),
                orderdate,
                rng.choice(words.PRIORITIES),
                f"Clerk#{rng.randint(1, max(int(1000 * scale), 1)):09d}",
                0,
                _comment(rng),
            )
        )
    orders = Relation(Schema(TPCH_SCHEMAS["orders"]), order_rows)
    lineitem = Relation(Schema(TPCH_SCHEMAS["lineitem"]), line_rows)
    return orders, lineitem


def generate(scale: float = 0.001, seed: int = 42) -> Dict[str, Relation]:
    """Generate all eight TPC-H tables at a scale factor.

    Returns a dict mapping table names to relations.  ``scale=0.001`` means
    150 customers, 1500 orders, ~6000 lineitems — the "one world" database
    the uncertainty generator of :mod:`repro.ugen` post-processes.
    """
    part = generate_part(scale, seed)
    supplier = generate_supplier(scale, seed)
    customer = generate_customer(scale, seed)
    orders, lineitem = generate_orders_and_lineitem(
        scale, seed, part_count=len(part), supp_count=len(supplier),
        cust_count=len(customer),
    )
    return {
        "region": generate_region(),
        "nation": generate_nation(),
        "supplier": supplier,
        "part": part,
        "partsupp": generate_partsupp(scale, seed),
        "customer": customer,
        "orders": orders,
        "lineitem": lineitem,
    }


def generate_table(name: str, scale: float = 0.001, seed: int = 42) -> Relation:
    """Generate a single table (regenerates its dependencies as needed)."""
    if name == "region":
        return generate_region()
    if name == "nation":
        return generate_nation()
    if name == "supplier":
        return generate_supplier(scale, seed)
    if name == "part":
        return generate_part(scale, seed)
    if name == "partsupp":
        return generate_partsupp(scale, seed)
    if name == "customer":
        return generate_customer(scale, seed)
    if name in ("orders", "lineitem"):
        part_count = base_cardinality("part", scale)
        supp_count = base_cardinality("supplier", scale)
        cust_count = base_cardinality("customer", scale)
        orders, lineitem = generate_orders_and_lineitem(
            scale, seed, part_count, supp_count, cust_count
        )
        return orders if name == "orders" else lineitem
    raise KeyError(f"unknown TPC-H table {name!r}")
