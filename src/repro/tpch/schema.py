"""TPC-H logical schemas (the eight tables, attribute order as in the spec).

Attribute names drop the spec's per-table prefixes (``l_``, ``o_``, ...);
queries qualify them through relation aliases instead, matching the paper's
query formulations (``c.mktsegment``, ``o.orderdate``, ...).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = ["TPCH_SCHEMAS", "TABLE_CARDINALITY", "base_cardinality"]

#: Attribute lists per table (order matters: dbgen emits rows in this order).
TPCH_SCHEMAS: Dict[str, List[str]] = {
    "region": ["regionkey", "name", "comment"],
    "nation": ["nationkey", "name", "regionkey", "comment"],
    "supplier": ["suppkey", "name", "address", "nationkey", "phone", "acctbal", "comment"],
    "part": [
        "partkey", "name", "mfgr", "brand", "type", "size", "container",
        "retailprice", "comment",
    ],
    "partsupp": ["partkey", "suppkey", "availqty", "supplycost", "comment"],
    "customer": [
        "custkey", "name", "address", "nationkey", "phone", "acctbal",
        "mktsegment", "comment",
    ],
    "orders": [
        "orderkey", "custkey", "orderstatus", "totalprice", "orderdate",
        "orderpriority", "clerk", "shippriority", "comment",
    ],
    "lineitem": [
        "orderkey", "partkey", "suppkey", "linenumber", "quantity",
        "extendedprice", "discount", "tax", "returnflag", "linestatus",
        "shipdate", "commitdate", "receiptdate", "shipinstruct", "shipmode",
        "comment",
    ],
}

#: Base cardinalities at scale factor 1 (lineitem is ~4 per order).
TABLE_CARDINALITY: Dict[str, int] = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "part": 200_000,
    "partsupp": 800_000,
    "customer": 150_000,
    "orders": 1_500_000,
    # lineitem cardinality is derived (1..7 per order, ~4 on average)
}


def base_cardinality(table: str, scale: float) -> int:
    """Row count of a table at a scale factor (region/nation are fixed)."""
    if table in ("region", "nation"):
        return TABLE_CARDINALITY[table]
    if table == "lineitem":
        raise ValueError("lineitem cardinality is derived from orders")
    return max(int(round(TABLE_CARDINALITY[table] * scale)), 1)
