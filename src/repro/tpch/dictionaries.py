"""TPC-H dictionaries (specification rev. 2.6, Section 4.2.3).

Word lists and fixed tables used by the population generator: nations with
their region assignments, market segments, order priorities, ship modes and
instructions, part naming components, and the comment-text grammar word
pools.  The lists follow the TPC-H specification so the generated value
distributions (and hence the selectivities of Q1-Q3 of the paper's Figure
8) match dbgen's.
"""

from __future__ import annotations

from typing import List, Tuple

__all__ = [
    "REGIONS",
    "NATIONS",
    "SEGMENTS",
    "PRIORITIES",
    "SHIP_MODES",
    "SHIP_INSTRUCTIONS",
    "PART_NAME_WORDS",
    "TYPE_SYLLABLE_1",
    "TYPE_SYLLABLE_2",
    "TYPE_SYLLABLE_3",
    "CONTAINER_SYLLABLE_1",
    "CONTAINER_SYLLABLE_2",
    "COMMENT_NOUNS",
    "COMMENT_VERBS",
    "COMMENT_ADJECTIVES",
    "COMMENT_ADVERBS",
]

#: The five TPC-H regions, by region key.
REGIONS: List[str] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

#: The 25 TPC-H nations as (name, region key) — nation key is the index.
NATIONS: List[Tuple[str, int]] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
]

#: Customer market segments (c_mktsegment).
SEGMENTS: List[str] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
]

#: Order priorities (o_orderpriority).
PRIORITIES: List[str] = [
    "1-URGENT",
    "2-HIGH",
    "3-MEDIUM",
    "4-NOT SPECIFIED",
    "5-LOW",
]

#: Lineitem ship modes (l_shipmode).
SHIP_MODES: List[str] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]

#: Lineitem ship instructions (l_shipinstruct).
SHIP_INSTRUCTIONS: List[str] = [
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
]

#: Colour words for part names (p_name is 5 of these).
PART_NAME_WORDS: List[str] = [
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
    "chiffon", "chocolate", "coral", "cornflower", "cornsilk", "cream", "cyan",
    "dark", "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest",
    "frosted", "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew",
    "hot", "indian", "ivory", "khaki", "lace", "lavender", "lawn", "lemon",
    "light", "lime", "linen", "magenta", "maroon", "medium", "metallic",
    "midnight", "mint", "misty", "moccasin", "navajo", "navy", "olive", "orange",
    "orchid", "pale", "papaya", "peach", "peru", "pink", "plum", "powder",
    "puff", "purple", "red", "rose", "rosy", "royal", "saddle", "salmon",
    "sandy", "seashell", "sienna", "sky", "slate", "smoke", "snow", "spring",
    "steel", "tan", "thistle", "tomato", "turquoise", "violet", "wheat",
    "white", "yellow",
]

#: Part type syllables (p_type = s1 + " " + s2 + " " + s3).
TYPE_SYLLABLE_1: List[str] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
TYPE_SYLLABLE_2: List[str] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
TYPE_SYLLABLE_3: List[str] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]

#: Part container syllables (p_container = s1 + " " + s2).
CONTAINER_SYLLABLE_1: List[str] = ["SM", "LG", "MED", "JUMBO", "WRAP"]
CONTAINER_SYLLABLE_2: List[str] = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"]

#: Comment grammar pools (abridged from the spec's text generation tables).
COMMENT_NOUNS: List[str] = [
    "packages", "requests", "accounts", "deposits", "foxes", "ideas", "theodolites",
    "pinto beans", "instructions", "dependencies", "excuses", "platelets", "asymptotes",
    "courts", "dolphins", "multipliers", "sauternes", "warthogs", "frets", "dinos",
]
COMMENT_VERBS: List[str] = [
    "sleep", "wake", "are", "cajole", "haggle", "nag", "use", "boost", "affix",
    "detect", "integrate", "maintain", "nod", "was", "lose", "sublate", "solve",
    "thrash", "promise", "engage",
]
COMMENT_ADJECTIVES: List[str] = [
    "furious", "sly", "careful", "blithe", "quick", "fluffy", "slow", "quiet",
    "ruthless", "thin", "close", "dogged", "daring", "brave", "stealthy",
    "permanent", "enticing", "idle", "busy", "regular",
]
COMMENT_ADVERBS: List[str] = [
    "sometimes", "always", "never", "furiously", "slyly", "carefully", "blithely",
    "quickly", "fluffily", "slowly", "quietly", "ruthlessly", "thinly", "closely",
    "doggedly", "daringly", "bravely", "stealthily", "permanently", "enticingly",
]
