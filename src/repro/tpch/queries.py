"""The paper's experiment queries Q1, Q2, Q3 (Figure 8).

De-aggregated versions of TPC-H Q3, Q6, and Q7, each wrapped in the
``possible`` operator, built as logical query trees over the uncertain
TPC-H schema:

Q1: possible(select o.orderkey, o.orderdate, o.shippriority
             from customer c, orders o, lineitem l
             where c.mktsegment = 'BUILDING' and c.custkey = o.custkey
               and o.orderkey = l.orderkey
               and o.orderdate > '1995-03-15' and l.shipdate < '1995-03-17')

Q2: possible(select extendedprice from lineitem
             where shipdate between '1994-01-01' and '1996-01-01'
               and discount between 0.05 and 0.08 and quantity < 24)

Q3: possible(select n1.name, n2.name
             from supplier s, lineitem l, orders o, customer c,
                  nation n1, nation n2
             where n2.name = 'IRAQ' and n1.name = 'GERMANY'
               and c.nationkey = n2.nationkey and s.suppkey = l.suppkey
               and o.orderkey = l.orderkey and c.custkey = o.custkey
               and s.nationkey = n1.nationkey)

Each builder also has an ``inner`` variant (without ``possible``) used by
the Figure 14 comparison, which benchmarks the queries without the poss
operator and without erroneous-tuple removal.
"""

from __future__ import annotations

from ..relational.expressions import col, lit
from ..relational.types import Date
from ..core.query import Poss, Rel, UJoin, UProject, UQuery, USelect

__all__ = ["q1", "q2", "q3", "q1_inner", "q2_inner", "q3_inner", "ALL_QUERIES"]


def q1_inner() -> UQuery:
    """Q1 without the ``possible`` wrapper."""
    customer = USelect(
        Rel("customer", "c"), col("c.mktsegment").eq(lit("BUILDING"))
    )
    orders = USelect(
        Rel("orders", "o"), col("o.orderdate") > lit(Date("1995-03-15"))
    )
    lineitem = USelect(
        Rel("lineitem", "l"), col("l.shipdate") < lit(Date("1995-03-17"))
    )
    co = UJoin(customer, orders, col("c.custkey").eq(col("o.custkey")))
    col_join = UJoin(co, lineitem, col("o.orderkey").eq(col("l.orderkey")))
    return UProject(col_join, ["o.orderkey", "o.orderdate", "o.shippriority"])


def q1() -> UQuery:
    """Q1 of Figure 8 (de-aggregated TPC-H Q3)."""
    return Poss(q1_inner())


def q2_inner() -> UQuery:
    """Q2 without the ``possible`` wrapper."""
    lineitem = USelect(
        Rel("lineitem", "l"),
        col("l.shipdate").between(Date("1994-01-01"), Date("1996-01-01"))
        & col("l.discount").between(0.05, 0.08)
        & (col("l.quantity") < lit(24)),
    )
    return UProject(lineitem, ["l.extendedprice"])


def q2() -> UQuery:
    """Q2 of Figure 8 (de-aggregated TPC-H Q6)."""
    return Poss(q2_inner())


def q3_inner() -> UQuery:
    """Q3 without the ``possible`` wrapper."""
    n1 = USelect(Rel("nation", "n1"), col("n1.name").eq(lit("GERMANY")))
    n2 = USelect(Rel("nation", "n2"), col("n2.name").eq(lit("IRAQ")))
    supplier = Rel("supplier", "s")
    lineitem = Rel("lineitem", "l")
    orders = Rel("orders", "o")
    customer = Rel("customer", "c")
    sl = UJoin(supplier, lineitem, col("s.suppkey").eq(col("l.suppkey")))
    slo = UJoin(sl, orders, col("o.orderkey").eq(col("l.orderkey")))
    sloc = UJoin(slo, customer, col("c.custkey").eq(col("o.custkey")))
    with_n1 = UJoin(sloc, n1, col("s.nationkey").eq(col("n1.nationkey")))
    with_n2 = UJoin(with_n1, n2, col("c.nationkey").eq(col("n2.nationkey")))
    return UProject(with_n2, ["n1.name", "n2.name"])


def q3() -> UQuery:
    """Q3 of Figure 8 (de-aggregated TPC-H Q7)."""
    return Poss(q3_inner())


#: (label, possible-wrapped builder, inner builder) for harness loops.
ALL_QUERIES = [
    ("Q1", q1, q1_inner),
    ("Q2", q2, q2_inner),
    ("Q3", q3, q3_inner),
]
