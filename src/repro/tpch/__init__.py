"""``repro.tpch`` — TPC-H substrate: population generator and workload.

A deterministic Python clone of the TPC-H dbgen population generator
(revision 2.6 word lists and distributions) plus the paper's three
experiment queries (Figure 8) as logical query trees.
"""

from .dbgen import END_DATE, START_DATE, generate, generate_table
from .queries import ALL_QUERIES, q1, q1_inner, q2, q2_inner, q3, q3_inner
from .schema import TABLE_CARDINALITY, TPCH_SCHEMAS, base_cardinality

__all__ = [
    "generate",
    "generate_table",
    "START_DATE",
    "END_DATE",
    "TPCH_SCHEMAS",
    "TABLE_CARDINALITY",
    "base_cardinality",
    "q1",
    "q2",
    "q3",
    "q1_inner",
    "q2_inner",
    "q3_inner",
    "ALL_QUERIES",
]
