"""The uncertain TPC-H generator (Section 6 of the paper).

Post-processes a certain (one-world) TPC-H database into an attribute-level
U-relational database, following the paper's pipeline:

1. while generating tuples, decide per field with probability ``x``
   (*uncertainty ratio*) whether it is uncertain; collect uncertain field
   coordinates (relation, tuple id, attribute) in a *field pool*,
2. shuffle the pool and allocate variables over dependent-field counts by
   the Zipf(``z``) scheme (*correlation ratio*) — a variable with DFC > 1
   correlates several fields, possibly across tuples and relations,
3. give each field ``m_i <= m`` alternative values (*max alternatives*,
   default 8) drawn from the field type's dbgen distribution (the original
   value is always alternative 1),
4. size the domain of a DFC-``k`` variable as ``p^{k-1} * prod(m_i)``
   (``p = 0.25``) — the fraction of value combinations surviving dependency
   chasing — and map every domain value to one combination of field values,
   covering every field's alternatives,
5. emit one U-relation per (relation, attribute) — vertical partitioning —
   with one tuple per (domain value, field) for uncertain fields and a
   single empty-descriptor tuple for certain fields.

Windows: the paper processes uncertain fields in windows of 10M to bound
memory; ``window`` reproduces this (variables never span windows).

The primary keys of the TPC-H tables are kept certain so that the generated
world-sets have sensible join structure in every world (the paper verifies
its worlds share dbgen's join selectivities; key fields being certain is
what makes that hold).
"""

from __future__ import annotations

import datetime
import random
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.descriptor import Descriptor
from ..core.udatabase import UDatabase
from ..core.urelation import URelation, tid_column
from ..core.worldtable import WorldTable
from ..relational.relation import Relation
from ..tpch import dictionaries as words
from ..tpch.dbgen import END_DATE, START_DATE, generate
from ..tpch.schema import TPCH_SCHEMAS

__all__ = ["UncertainTPCH", "generate_uncertain", "KEY_ATTRIBUTES"]

#: Fields never made uncertain (keys and foreign keys).
KEY_ATTRIBUTES: Dict[str, Set[str]] = {
    "region": {"regionkey"},
    "nation": {"nationkey", "regionkey"},
    "supplier": {"suppkey", "nationkey"},
    "part": {"partkey"},
    "partsupp": {"partkey", "suppkey"},
    "customer": {"custkey", "nationkey"},
    "orders": {"orderkey", "custkey"},
    "lineitem": {"orderkey", "partkey", "suppkey", "linenumber"},
}

FieldCoord = Tuple[str, Any, str]  # (relation, tuple id, attribute)


class UncertainTPCH:
    """The result bundle of one generator run."""

    def __init__(
        self,
        udb: UDatabase,
        certain: Dict[str, Relation],
        parameters: Dict[str, Any],
        uncertain_field_count: int,
        variable_count: int,
    ):
        self.udb = udb
        self.certain = certain
        self.parameters = parameters
        self.uncertain_field_count = uncertain_field_count
        self.variable_count = variable_count

    # -- Figure 9 metrics ------------------------------------------------
    def log10_worlds(self) -> float:
        """log10 of the number of represented worlds."""
        return self.udb.world_table.log10_world_count()

    def max_local_worlds(self) -> int:
        """Largest variable domain ("max local worlds in a component")."""
        return self.udb.world_table.max_domain_size()

    def representation_rows(self) -> int:
        """Total U-relation + world-table rows."""
        return self.udb.total_representation_rows()

    def one_world_rows(self) -> int:
        """Rows of the certain one-world database."""
        return sum(len(r) for r in self.certain.values())

    def size_ratio(self) -> float:
        """Representation rows / one-world *field* count (size blow-up).

        The paper reports U-relational databases at 6-8x the one-world size
        for x = 0.1; the comparable ratio here is representation rows over
        one-world fields (a vertical partition holds one field per row).
        """
        fields = sum(
            len(r) * len(r.schema) for r in self.certain.values()
        )
        return self.representation_rows() / max(fields, 1)


def generate_uncertain(
    scale: float = 0.001,
    x: float = 0.01,
    z: float = 0.25,
    m: int = 8,
    p: float = 0.25,
    seed: int = 42,
    window: int = 10_000_000,
    tables: Optional[Sequence[str]] = None,
) -> UncertainTPCH:
    """Generate an uncertain TPC-H database (the paper's parameter grid).

    Parameters mirror Section 6: ``scale`` (s), uncertainty ratio ``x``,
    correlation ratio ``z``, max alternatives per field ``m`` (paper fixes
    8), survival probability ``p`` (paper fixes 0.25).  ``tables`` restricts
    generation to a subset (all eight by default).
    """
    from .zipf import dfc_allocation

    if not 0 <= x < 1:
        raise ValueError(f"uncertainty ratio x must be in [0, 1), got {x}")
    certain = generate(scale=scale, seed=seed)
    if tables is not None:
        certain = {name: certain[name] for name in tables}
    rng = random.Random(seed * 31337 + 7)

    # step 1: the field pool
    pool: List[FieldCoord] = []
    originals: Dict[FieldCoord, Any] = {}
    for name, relation in certain.items():
        keys = KEY_ATTRIBUTES.get(name, set())
        attrs = relation.schema.names
        for tid, row in enumerate(relation.rows, start=1):
            for attr, value in zip(attrs, row):
                if attr in keys:
                    continue
                if x > 0 and rng.random() < x:
                    coord = (name, tid, attr)
                    pool.append(coord)
                    originals[coord] = value

    world = WorldTable()
    assignment: Dict[FieldCoord, Tuple[str, List[Any]]] = {}
    variable_count = 0

    # steps 2-4, window by window
    for start in range(0, len(pool), window):
        chunk = pool[start : start + window]
        rng.shuffle(chunk)
        allocation = dfc_allocation(len(chunk), z)
        cursor = 0
        for dfc in sorted(allocation, reverse=True):
            for _ in range(allocation[dfc]):
                fields = chunk[cursor : cursor + dfc]
                cursor += dfc
                if not fields:
                    continue
                variable_count += 1
                var = f"v{variable_count}"
                alternatives = [
                    _alternatives(rng, coord, originals[coord], m) for coord in fields
                ]
                domain_size = _domain_size(p, [len(a) for a in alternatives])
                combos = _combinations(rng, [len(a) for a in alternatives], domain_size)
                world.add_variable(var, list(range(1, len(combos) + 1)))
                for field_index, coord in enumerate(fields):
                    values = [
                        alternatives[field_index][combo[field_index]]
                        for combo in combos
                    ]
                    assignment[coord] = (var, values)

    # step 5: vertical partitions
    udb = UDatabase(world)
    for name, relation in certain.items():
        attrs = relation.schema.names
        partitions = []
        for attr_index, attr in enumerate(attrs):
            triples = []
            for tid, row in enumerate(relation.rows, start=1):
                coord = (name, tid, attr)
                if coord in assignment:
                    var, values = assignment[coord]
                    for domain_value, field_value in enumerate(values, start=1):
                        triples.append(
                            (Descriptor({var: domain_value}), tid, (field_value,))
                        )
                else:
                    triples.append((Descriptor(), tid, (row[attr_index],)))
            partitions.append(
                URelation.build(triples, tid_column(name), [attr], d_width=1)
            )
        udb.add_relation(name, attrs, partitions)

    parameters = {"scale": scale, "x": x, "z": z, "m": m, "p": p, "seed": seed}
    return UncertainTPCH(udb, certain, parameters, len(pool), variable_count)


# ----------------------------------------------------------------------
# internals
# ----------------------------------------------------------------------
def _domain_size(p: float, m_counts: Sequence[int]) -> int:
    """``p^{k-1} * prod(m_i)`` rounded up, at least 2, at least max(m_i)."""
    k = len(m_counts)
    size = p ** (k - 1)
    for m_i in m_counts:
        size *= m_i
    return max(int(round(size)), max(m_counts), 2)


def _combinations(
    rng: random.Random, m_counts: Sequence[int], domain_size: int
) -> List[Tuple[int, ...]]:
    """``domain_size`` distinct index combinations covering all field values.

    The first ``max(m_i)`` combinations cycle each field through its values
    (so every alternative of every field occurs in some world); the rest are
    random distinct combinations.
    """
    total = 1
    for m_i in m_counts:
        total *= m_i
    domain_size = min(domain_size, total)
    combos: List[Tuple[int, ...]] = []
    seen: Set[Tuple[int, ...]] = set()
    for l in range(max(m_counts)):
        combo = tuple(l % m_i for m_i in m_counts)
        if combo not in seen:
            seen.add(combo)
            combos.append(combo)
    attempts = 0
    while len(combos) < domain_size and attempts < 50 * domain_size:
        combo = tuple(rng.randrange(m_i) for m_i in m_counts)
        attempts += 1
        if combo not in seen:
            seen.add(combo)
            combos.append(combo)
    return combos


def _alternatives(
    rng: random.Random, coord: FieldCoord, original: Any, m: int
) -> List[Any]:
    """``m_i`` alternative values for one field (original first)."""
    m_i = rng.randint(2, max(m, 2))
    values: List[Any] = [original]
    seen = {repr(original)}
    attempts = 0
    while len(values) < m_i and attempts < 20 * m_i:
        candidate = _random_value(rng, coord, original)
        attempts += 1
        if repr(candidate) not in seen:
            seen.add(repr(candidate))
            values.append(candidate)
    return values


def _random_value(rng: random.Random, coord: FieldCoord, original: Any) -> Any:
    """A plausible alternative value respecting the field's distribution."""
    relation, _tid, attr = coord
    if attr == "mktsegment":
        return rng.choice(words.SEGMENTS)
    if attr == "orderpriority":
        return rng.choice(words.PRIORITIES)
    if attr == "shipmode":
        return rng.choice(words.SHIP_MODES)
    if attr == "shipinstruct":
        return rng.choice(words.SHIP_INSTRUCTIONS)
    if attr == "returnflag":
        return rng.choice(["R", "A", "N"])
    if attr in ("linestatus", "orderstatus"):
        return rng.choice(["F", "O", "P"])
    if attr == "quantity":
        return rng.randint(1, 50)
    if attr == "discount":
        return round(rng.uniform(0.0, 0.10), 2)
    if attr == "tax":
        return round(rng.uniform(0.0, 0.08), 2)
    if attr == "size":
        return rng.randint(1, 50)
    if attr == "availqty":
        return rng.randint(1, 9999)
    if isinstance(original, datetime.date):
        span = (END_DATE - START_DATE).days
        return START_DATE + datetime.timedelta(days=rng.randint(0, span))
    if isinstance(original, bool):
        return not original
    if isinstance(original, int):
        return max(original + rng.randint(-max(abs(original) // 2, 5),
                                          max(abs(original) // 2, 5)), 0)
    if isinstance(original, float):
        return round(original * rng.uniform(0.5, 1.5) + rng.uniform(0, 10), 2)
    if isinstance(original, str):
        pools = [words.COMMENT_ADJECTIVES, words.COMMENT_NOUNS, words.COMMENT_VERBS]
        return " ".join(rng.choice(pool) for pool in pools)
    return original
