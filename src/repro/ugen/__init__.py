"""``repro.ugen`` — the uncertain TPC-H data generator of Section 6.

Post-processes certain TPC-H tables into attribute-level U-relational
databases with the paper's parameters (scale ``s``, uncertainty ratio
``x``, correlation ratio ``z`` via a Zipf allocation of dependent-field
counts, max alternatives ``m = 8``, survival probability ``p = 0.25``), and
converts attribute-level databases to tuple-level ones for the Figure 14
comparison.
"""

from .generator import KEY_ATTRIBUTES, UncertainTPCH, generate_uncertain
from .tuplelevel import tuple_level_relation, tuple_level_size, tuple_level_udatabase
from .zipf import MAX_DFC, dfc_allocation

__all__ = [
    "generate_uncertain",
    "UncertainTPCH",
    "KEY_ATTRIBUTES",
    "dfc_allocation",
    "MAX_DFC",
    "tuple_level_relation",
    "tuple_level_udatabase",
    "tuple_level_size",
]
