"""Attribute-level to tuple-level U-relation conversion (Figure 14).

A *tuple-level* U-relation carries all attributes of its logical relation
in one partition: for every logical tuple, every consistent combination of
its per-attribute values becomes one representation row whose descriptor is
the union of the contributing descriptors.

This is the representation the paper benchmarks against in Figure 14 —
"an increase in any of our parameters would create prohibitively large
(exponential in the arity) tuple-level representations: for scale 0.01 and
uncertainty 10%, relation lineitem contains more than 15M tuples compared
to 80K in each of its vertical partitions."  The blow-up is the product of
the alternative counts of a tuple's uncertain fields.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Tuple

from ..core.descriptor import Descriptor
from ..core.udatabase import UDatabase
from ..core.urelation import URelation, tid_column
from ..core.worldtable import WorldTable

__all__ = ["tuple_level_relation", "tuple_level_udatabase", "tuple_level_size"]


def tuple_level_relation(udb: UDatabase, name: str, limit: Optional[int] = None) -> URelation:
    """One tuple-level U-relation equivalent to ``name``'s partitions.

    ``limit`` caps the number of emitted rows (the blow-up is exponential in
    the arity; benches use the cap to keep runs bounded and report when it
    was hit).  Raises :class:`MemoryError`-free — the cap makes it safe.
    """
    schema = udb.logical_schema(name)
    parts = udb.partitions(name)
    per_tid: Dict[Any, List[List[Tuple[Descriptor, Any]]]] = {}
    for part_index, part in enumerate(parts):
        for descriptor, tids, values in part:
            (tid,) = tids
            buckets = per_tid.setdefault(tid, [[] for _ in parts])
            buckets[part_index].append((descriptor, values))
    triples = []
    for tid in sorted(per_tid, key=repr):
        buckets = per_tid[tid]
        if any(not b for b in buckets):
            continue  # tuple never completable
        for choice in itertools.product(*buckets):
            descriptor = Descriptor()
            consistent = True
            for d, _v in choice:
                if not descriptor.consistent_with(d):
                    consistent = False
                    break
                descriptor = descriptor.union(d)
            if not consistent:
                continue
            merged: Dict[str, Any] = {}
            for (d, vals), part in zip(choice, parts):
                for attr, value in zip(part.value_names, vals):
                    merged[attr] = value
            values = tuple(merged[a] for a in schema.attributes)
            triples.append((descriptor, tid, values))
            if limit is not None and len(triples) >= limit:
                return URelation.build(
                    triples, tid_column(name), list(schema.attributes)
                )
    return URelation.build(triples, tid_column(name), list(schema.attributes))


def tuple_level_udatabase(udb: UDatabase, limit: Optional[int] = None) -> UDatabase:
    """Tuple-level equivalent of a whole attribute-level database."""
    out = UDatabase(udb.world_table)
    for name in udb.relation_names():
        schema = udb.logical_schema(name)
        out.add_relation(
            name, schema.attributes, [tuple_level_relation(udb, name, limit=limit)]
        )
    return out


def tuple_level_size(udb: UDatabase, name: str) -> int:
    """Row count of the tuple-level representation *without materializing it*.

    Sums, per logical tuple, the number of consistent combinations — exact
    when each tuple's fields depend on distinct variables (the common case),
    an upper bound otherwise.
    """
    parts = udb.partitions(name)
    per_tid: Dict[Any, List[int]] = {}
    for part_index, part in enumerate(parts):
        counts: Dict[Any, int] = {}
        for _descriptor, tids, _values in part:
            counts[tids[0]] = counts.get(tids[0], 0) + 1
        for tid, count in counts.items():
            bucket = per_tid.setdefault(tid, [0] * len(parts))
            bucket[part_index] = count
    total = 0
    for tid, bucket in per_tid.items():
        if 0 in bucket:
            continue
        product = 1
        for count in bucket:
            product *= count
        total += product
    return total
