"""Zipf allocation of variables over dependent-field counts (DFC).

Section 6: "The parameter z defines a Zipf distribution for the variables
with different dependent field counts (DFC) and controls the attribute
correlations: for n uncertain fields, there are ceil(C * z^i) variables with
DFC i, where C = n(z-1)/(z^{k+1}-1)."

With z < 1 the counts decrease geometrically in the DFC, so most variables
control a single field and a geometrically decaying tail controls several.
The paper's closed form normalizes variable counts rather than covered
fields; since every uncertain field must be covered exactly once, we keep
the geometric shape ``v_i ∝ z^i`` and normalize so that the *fields covered*
``sum(i * v_i)`` equals ``n`` — preserving the quantity the experiments vary
(larger z ⇒ more correlated fields ⇒ larger variable domains), which is what
Figure 9's database-size trends measure.
"""

from __future__ import annotations

import math
from typing import Dict, List

__all__ = ["dfc_allocation", "MAX_DFC"]

#: Largest dependent-field count a variable may have.
MAX_DFC = 5


def dfc_allocation(n_fields: int, z: float, max_dfc: int = MAX_DFC) -> Dict[int, int]:
    """Number of variables per DFC so all ``n_fields`` are covered.

    Returns ``{dfc: count}`` with ``sum(dfc * count) == n_fields``.
    Residual fields (from rounding) are assigned to DFC-1 variables.
    """
    if n_fields <= 0:
        return {}
    if not 0 < z < 1:
        raise ValueError(f"correlation ratio z must be in (0, 1), got {z}")
    max_dfc = max(1, min(max_dfc, n_fields))
    # v_i = C * z^i for i = 1..k, normalized so sum(i * v_i) = n
    weight = sum(i * (z ** i) for i in range(1, max_dfc + 1))
    c = n_fields / weight
    allocation: Dict[int, int] = {}
    covered = 0
    for i in range(max_dfc, 1, -1):  # high-DFC variables first
        count = math.ceil(c * (z ** i))
        count = min(count, (n_fields - covered) // i)
        if count > 0:
            allocation[i] = count
            covered += i * count
    remaining = n_fields - covered
    if remaining > 0:
        allocation[1] = remaining
    return allocation
