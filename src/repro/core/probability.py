"""Probabilistic U-relations (Section 7).

The probabilistic extension adds a probability column ``P`` to the world
table such that each variable's probabilities sum to one; variables are
independent.  Positive relational algebra evaluation is *unchanged* — only
confidence computation is new:

    conf(t) = P( union of the world-sets of t's ws-descriptors )

Confidence computation is #P-hard in general (the paper cites [10]), so we
provide:

* :func:`exact_confidence` — exact by variable elimination over the
  (usually few) variables a tuple's descriptors touch: enumerate the joint
  assignments of the touched variables and add up the probabilities of
  assignments satisfying at least one descriptor,
* :func:`monte_carlo_confidence` — naive Monte-Carlo estimation by sampling
  total valuations of the touched variables, and
* :func:`tuple_confidences` — confidences for every possible tuple of a
  query-result U-relation (grouping rows by value tuple).
"""

from __future__ import annotations

import itertools
import random
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..relational.relation import Relation
from ..relational.schema import Schema
from .descriptor import Descriptor
from .urelation import URelation
from .worldtable import WorldTable

__all__ = [
    "exact_confidence",
    "monte_carlo_confidence",
    "tuple_confidences",
    "confidence_relation",
]


def exact_confidence(descriptors: Sequence[Descriptor], world_table: WorldTable) -> float:
    """Exact probability of the union of descriptor world-sets.

    Complexity is exponential only in the number of *distinct variables
    touched by the descriptors*, not in the world-table size — exactly the
    locality normalization exploits (Section 7 notes normalization matters
    for confidence computation).
    """
    descriptors = [d for d in descriptors]
    if not descriptors:
        return 0.0
    if any(d.empty for d in descriptors):
        return 1.0
    touched = sorted({var for d in descriptors for var in d.variables()})
    domains = [world_table.domain(v) for v in touched]
    total = 0.0
    for combo in itertools.product(*domains):
        assignment = dict(zip(touched, combo))
        if any(d.extended_by({**assignment, "_t": 0}) for d in descriptors):
            p = 1.0
            for var, value in assignment.items():
                p *= world_table.probability(var, value)
            total += p
    return total


def monte_carlo_confidence(
    descriptors: Sequence[Descriptor],
    world_table: WorldTable,
    samples: int = 10_000,
    seed: int = 0,
) -> float:
    """Monte-Carlo estimate of the union probability.

    Samples assignments of the touched variables only; the estimator is
    unbiased with standard error ``sqrt(p(1-p)/samples)``.
    """
    descriptors = [d for d in descriptors]
    if not descriptors:
        return 0.0
    if any(d.empty for d in descriptors):
        return 1.0
    touched = sorted({var for d in descriptors for var in d.variables()})
    rng = random.Random(seed)
    hits = 0
    for _ in range(samples):
        assignment = {"_t": 0}
        for var in touched:
            domain = world_table.domain(var)
            weights = [world_table.probability(var, v) for v in domain]
            assignment[var] = rng.choices(domain, weights=weights, k=1)[0]
        if any(d.extended_by(assignment) for d in descriptors):
            hits += 1
    return hits / samples


def tuple_confidences(
    result: URelation,
    world_table: WorldTable,
    method: str = "exact",
    samples: int = 10_000,
    seed: int = 0,
) -> Dict[Tuple[Any, ...], float]:
    """Confidence of every possible value tuple of a result U-relation."""
    groups: Dict[Tuple[Any, ...], List[Descriptor]] = {}
    for descriptor, _tids, values in result:
        groups.setdefault(values, []).append(descriptor)
    out: Dict[Tuple[Any, ...], float] = {}
    for values, descriptors in groups.items():
        if method == "exact":
            out[values] = exact_confidence(descriptors, world_table)
        elif method == "monte-carlo":
            out[values] = monte_carlo_confidence(
                descriptors, world_table, samples=samples, seed=seed
            )
        else:
            raise ValueError(f"unknown method {method!r}; use 'exact' or 'monte-carlo'")
    return out


def confidence_relation(
    result: URelation,
    world_table: WorldTable,
    method: str = "exact",
    samples: int = 10_000,
    seed: int = 0,
) -> Relation:
    """Possible tuples with a trailing ``conf`` column, sorted by confidence."""
    confidences = tuple_confidences(
        result, world_table, method=method, samples=samples, seed=seed
    )
    schema = Schema(list(result.value_names) + ["conf"])
    rows = sorted(
        (values + (conf,) for values, conf in confidences.items()),
        key=lambda row: (-row[-1], tuple(map(repr, row[:-1]))),
    )
    return Relation(schema, rows)
