"""Probabilistic U-relations (Section 7): confidence computation.

The probabilistic extension adds a probability column ``P`` to the world
table such that each variable's probabilities sum to one; variables are
independent.  Positive relational algebra evaluation is *unchanged* — only
confidence computation is new:

    conf(t) = P( union of the world-sets of t's ws-descriptors )

Confidence computation is #P-hard in general (the paper cites [10]).  This
module provides a memoized confidence engine plus bounded-error sampling:

* :class:`ConfidenceEngine` — the shared, memoized computation kernel.
  Per-variable domain/probability vectors are fetched from the
  :class:`WorldTable` once (world tables are append-only, so the vectors
  never go stale), descriptor → satisfying-assignment index sets are
  cached by descriptor structural key, and assignment-space probability
  vectors are shared across all groups that touch the same variable set —
  the common case after normalization.  Descriptor unions are first split
  into independent components (descriptors sharing no variable multiply:
  ``P(A ∪ B) = 1 - (1-P(A))(1-P(B))``), so enumeration is exponential only
  in the largest *connected* variable set, not in all touched variables.
* the **exact** path — component-wise enumeration over the touched
  assignment space (indexed through the caches above, streaming beyond
  :data:`EXACT_SPACE_LIMIT`),
* the **approx** path — a Karp–Luby-style union sampler over the
  descriptor world-sets with an absolute ``(epsilon, delta)`` guarantee:
  with probability at least ``1 - delta`` the estimate is within
  ``epsilon`` of the true confidence (Hoeffding sample count over the
  coverage estimator; components needing sampling split the budget),
* ``method="auto"`` — exact per component while the component's assignment
  space fits :data:`EXACT_SPACE_LIMIT`, sampling beyond it, and
* :func:`monte_carlo_confidence` — the direct (naive) sampler over touched
  variables, kept as the measurement baseline and fallback; its per-sample
  domain/weight refetch loop is hoisted.

:func:`tuple_confidences` / :func:`confidence_relation` group a query
result by value tuple and compute per-group confidences through one shared
engine, so identical descriptor sets across groups are computed once.
"""

from __future__ import annotations

import bisect
import itertools
import math
import random
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..relational.relation import Relation
from ..relational.schema import Schema
from .descriptor import Descriptor
from .urelation import URelation
from .worldtable import WorldTable

__all__ = [
    "ConfidenceEngine",
    "ConfidenceAnswer",
    "confidence_engine",
    "exact_confidence",
    "approx_confidence",
    "monte_carlo_confidence",
    "tuple_confidences",
    "confidence_relation",
    "assignment_space_size",
    "EXACT_SPACE_LIMIT",
    "DEFAULT_EPSILON",
    "DEFAULT_DELTA",
]

#: Assignment spaces up to this many joint assignments are enumerated
#: exactly (and their probability vectors cached); ``method="auto"``
#: switches a larger component to the bounded-error sampler.  Shared with
#: the aggregate bounds (``repro.core.aggregates.EXACT_BOUND_LIMIT``).
EXACT_SPACE_LIMIT = 1 << 16

#: Default absolute error target of the approximate path.
DEFAULT_EPSILON = 0.01
#: Default failure probability of the approximate path.
DEFAULT_DELTA = 0.05

#: Methods :func:`tuple_confidences` accepts (``monte-carlo`` is the
#: legacy direct sampler, kept for measurement).
_METHODS = ("exact", "approx", "auto", "monte-carlo")

#: A descriptor's structural key: its sorted ``(variable, value)`` items.
_DescKey = Tuple[Tuple[str, Any], ...]


def assignment_space_size(
    variables: Sequence[str],
    world_table: WorldTable,
    limit: Optional[int] = None,
) -> Optional[int]:
    """Product of the variables' domain sizes, or ``None`` beyond ``limit``.

    The one shared feasibility test for exact enumeration: the aggregate
    bounds (:func:`repro.core.aggregates.count_bounds` and friends) and the
    engine's ``auto`` method selection both call this.
    """
    space = 1
    for var in variables:
        space *= len(world_table.domain(var))
        if limit is not None and space > limit:
            return None
    return space


class ConfidenceEngine:
    """Memoized confidence computation over one :class:`WorldTable`.

    All caches are sound under the world table's append-only mutation
    model (``add_variable`` never changes an existing variable), so one
    engine instance can serve every query against its table for the
    table's whole lifetime; :func:`confidence_engine` maintains that
    singleton.
    """

    def __init__(self, world_table: WorldTable, exact_limit: int = EXACT_SPACE_LIMIT):
        self.world_table = world_table
        self.exact_limit = int(exact_limit)
        # per-variable vectors, fetched from the world table exactly once
        self._domains: Dict[str, Tuple[Any, ...]] = {}
        self._probs: Dict[str, Tuple[float, ...]] = {}
        self._value_index: Dict[str, Dict[Any, int]] = {}
        self._cum_weights: Dict[str, List[float]] = {}
        # descriptor-level caches (structural key -> result)
        self._descriptor_prob: Dict[_DescKey, float] = {}
        self._satisfying: Dict[Tuple[Tuple[str, ...], _DescKey], FrozenSet[int]] = {}
        # shared per-variable-set subexpressions
        self._space_probs: Dict[Tuple[str, ...], List[float]] = {}
        # component / group result caches
        self._component_exact: Dict[Tuple[_DescKey, ...], float] = {}
        self._group_exact: Dict[FrozenSet[_DescKey], float] = {}
        self._group_option: Dict[Tuple, Tuple[float, str]] = {}
        # introspection counters
        self.groups_total = 0
        self.exact_groups = 0
        self.approx_groups = 0
        self.cache_hits = 0

    # ------------------------------------------------------------------
    # per-variable vectors
    # ------------------------------------------------------------------
    def _domain(self, var: str) -> Tuple[Any, ...]:
        domain = self._domains.get(var)
        if domain is None:
            domain = self.world_table.domain(var)
            self._domains[var] = domain
            self._probs[var] = tuple(
                self.world_table.probability(var, value) for value in domain
            )
            self._value_index[var] = {value: i for i, value in enumerate(domain)}
        return domain

    def _prob_vector(self, var: str) -> Tuple[float, ...]:
        self._domain(var)
        return self._probs[var]

    def _cum_vector(self, var: str) -> List[float]:
        cum = self._cum_weights.get(var)
        if cum is None:
            cum = list(itertools.accumulate(self._prob_vector(var)))
            self._cum_weights[var] = cum
        return cum

    def _index_of(self, var: str, value: Any) -> int:
        self._domain(var)
        try:
            return self._value_index[var][value]
        except KeyError:
            raise KeyError(f"{value!r} not in domain of {var!r}") from None

    def descriptor_probability(self, key: _DescKey) -> float:
        """P(world-set of one descriptor) — product over its assignments."""
        p = self._descriptor_prob.get(key)
        if p is None:
            p = 1.0
            for var, value in key:
                p *= self._prob_vector(var)[self._index_of(var, value)]
            self._descriptor_prob[key] = p
        return p

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def confidence(
        self,
        descriptors: Sequence[Descriptor],
        method: str = "exact",
        epsilon: float = DEFAULT_EPSILON,
        delta: float = DEFAULT_DELTA,
        seed: int = 0,
    ) -> float:
        value, _used = self.confidence_detail(descriptors, method, epsilon, delta, seed)
        return value

    def confidence_detail(
        self,
        descriptors: Sequence[Descriptor],
        method: str = "exact",
        epsilon: float = DEFAULT_EPSILON,
        delta: float = DEFAULT_DELTA,
        seed: int = 0,
    ) -> Tuple[float, str]:
        """``(confidence, method_used)`` for a union of descriptors.

        ``method_used`` is ``"exact"`` or ``"approx"`` — a group counts as
        approximate when *any* of its components was sampled.
        """
        if method not in ("exact", "approx", "auto"):
            raise ValueError(
                f"unknown method {method!r}; use 'exact', 'approx', or 'auto'"
            )
        self.groups_total += 1
        keys = {d.items() for d in descriptors}
        if not keys:
            self.exact_groups += 1
            return 0.0, "exact"
        if () in keys:
            self.exact_groups += 1
            return 1.0, "exact"
        group = frozenset(keys)
        if method == "exact":
            cached = self._group_exact.get(group)
            if cached is not None:
                self.cache_hits += 1
                self.exact_groups += 1
                return cached, "exact"
        else:
            if epsilon <= 0.0 or delta <= 0.0 or delta >= 1.0:
                raise ValueError(
                    f"need epsilon > 0 and 0 < delta < 1; got ({epsilon}, {delta})"
                )
            option_key = (group, method, epsilon, delta, seed)
            hit = self._group_option.get(option_key)
            if hit is not None:
                self.cache_hits += 1
                if hit[1] == "approx":
                    self.approx_groups += 1
                else:
                    self.exact_groups += 1
                return hit
        components = self._components(group)
        sampled = [comp for comp in components if self._should_sample(comp, method)]
        miss = 1.0
        if not sampled:
            for comp in components:
                miss *= 1.0 - self._component_union_exact(comp)
            value = 1.0 - miss
            self._group_exact[group] = value
            if method != "exact":
                self._group_option[(group, method, epsilon, delta, seed)] = (
                    value,
                    "exact",
                )
            self.exact_groups += 1
            return value, "exact"
        # split the error budget over the sampled components: each |error|
        # <= eps_i with prob >= 1 - delta_i, and the product combination
        # 1 - prod(1 - P_c) is 1-Lipschitz in every P_c, so a union bound
        # gives the whole group its (epsilon, delta) guarantee
        eps_i = epsilon / len(sampled)
        delta_i = delta / len(sampled)
        to_sample = set(sampled)
        for comp in components:
            if comp in to_sample:
                p = self._component_union_approx(comp, eps_i, delta_i, seed)
            else:
                p = self._component_union_exact(comp)
            miss *= 1.0 - p
        value = 1.0 - miss
        self._group_option[(group, method, epsilon, delta, seed)] = (value, "approx")
        self.approx_groups += 1
        return value, "approx"

    def stats(self) -> Dict[str, int]:
        """Cumulative engine counters (for tests and observability)."""
        return {
            "groups_total": self.groups_total,
            "exact_groups": self.exact_groups,
            "approx_groups": self.approx_groups,
            "cache_hits": self.cache_hits,
            "cached_descriptors": len(self._descriptor_prob),
            "cached_variable_sets": len(self._space_probs),
            "cached_components": len(self._component_exact),
        }

    # ------------------------------------------------------------------
    # independent-component decomposition
    # ------------------------------------------------------------------
    def _components(self, group: FrozenSet[_DescKey]) -> List[Tuple[_DescKey, ...]]:
        """Partition descriptors into variable-connected components.

        Descriptors in different components touch disjoint variable sets;
        independence of the variables makes the components independent
        events, so their union probabilities multiply.
        """
        parent: Dict[str, str] = {}

        def find(v: str) -> str:
            root = v
            while parent[root] != root:
                root = parent[root]
            while parent[v] != root:
                parent[v], v = root, parent[v]
            return root

        keys = sorted(group)
        for key in keys:
            anchor: Optional[str] = None
            for var, _val in key:
                if var not in parent:
                    parent[var] = var
                if anchor is None:
                    anchor = var
                else:
                    parent[find(var)] = find(anchor)
        buckets: Dict[str, List[_DescKey]] = {}
        for key in keys:
            root = find(key[0][0])
            buckets.setdefault(root, []).append(key)
        return [tuple(bucket) for bucket in buckets.values()]

    def _component_variables(self, comp: Tuple[_DescKey, ...]) -> Tuple[str, ...]:
        return tuple(sorted({var for key in comp for var, _val in key}))

    def _should_sample(self, comp: Tuple[_DescKey, ...], method: str) -> bool:
        if len(comp) == 1:
            return False  # a single descriptor is a closed-form product
        if method == "approx":
            return True
        if method == "exact":
            return False
        space = assignment_space_size(
            self._component_variables(comp), self.world_table, self.exact_limit
        )
        return space is None

    # ------------------------------------------------------------------
    # exact path
    # ------------------------------------------------------------------
    def _component_union_exact(self, comp: Tuple[_DescKey, ...]) -> float:
        if len(comp) == 1:
            return self.descriptor_probability(comp[0])
        cached = self._component_exact.get(comp)
        if cached is not None:
            return cached
        vars_key = self._component_variables(comp)
        space = assignment_space_size(vars_key, self.world_table, self.exact_limit)
        if space is None:
            value = self._union_exact_streaming(comp, vars_key)
        else:
            value = self._union_exact_indexed(comp, vars_key)
        self._component_exact[comp] = value
        return value

    def _union_exact_indexed(
        self, comp: Tuple[_DescKey, ...], vars_key: Tuple[str, ...]
    ) -> float:
        """Union probability via cached satisfying-index sets.

        Assignments of the variable set are numbered row-major; each
        descriptor's satisfying set is materialized once (size = space /
        product of its constrained domain sizes) and reused by every other
        group touching the same variables.
        """
        sizes = [len(self._domain(v)) for v in vars_key]
        strides = [1] * len(sizes)
        for i in range(len(sizes) - 2, -1, -1):
            strides[i] = strides[i + 1] * sizes[i + 1]
        union: set = set()
        for key in comp:
            union |= self._satisfying_indices(vars_key, sizes, strides, key)
        probs = self._assignment_probs(vars_key)
        return sum(probs[i] for i in union)

    def _satisfying_indices(
        self,
        vars_key: Tuple[str, ...],
        sizes: List[int],
        strides: List[int],
        key: _DescKey,
    ) -> FrozenSet[int]:
        cache_key = (vars_key, key)
        cached = self._satisfying.get(cache_key)
        if cached is not None:
            return cached
        position = {var: i for i, var in enumerate(vars_key)}
        fixed = 0
        constrained = set()
        for var, value in key:
            i = position[var]
            fixed += strides[i] * self._index_of(var, value)
            constrained.add(i)
        free = [i for i in range(len(vars_key)) if i not in constrained]
        if not free:
            result = frozenset((fixed,))
        else:
            free_strides = [strides[i] for i in free]
            result = frozenset(
                fixed + sum(s * t for s, t in zip(free_strides, combo))
                for combo in itertools.product(*(range(sizes[i]) for i in free))
            )
        self._satisfying[cache_key] = result
        return result

    def _assignment_probs(self, vars_key: Tuple[str, ...]) -> List[float]:
        probs = self._space_probs.get(vars_key)
        if probs is None:
            vectors = [self._prob_vector(v) for v in vars_key]
            prod = math.prod
            probs = [prod(ps) for ps in itertools.product(*vectors)]
            self._space_probs[vars_key] = probs
        return probs

    def _union_exact_streaming(
        self, comp: Tuple[_DescKey, ...], vars_key: Tuple[str, ...]
    ) -> float:
        """Forced-exact fallback beyond the indexable space limit.

        Iterates the assignment space without materializing index sets or
        probability vectors; positional constraint tuples replace the old
        per-assignment dict construction.
        """
        position = {var: i for i, var in enumerate(vars_key)}
        constraints = [
            tuple((position[var], value) for var, value in key) for key in comp
        ]
        domains = [self._domain(v) for v in vars_key]
        vectors = [self._prob_vector(v) for v in vars_key]
        prod = math.prod
        total = 0.0
        for combo, ps in zip(
            itertools.product(*domains), itertools.product(*vectors)
        ):
            if any(
                all(combo[i] == value for i, value in cons) for cons in constraints
            ):
                total += prod(ps)
        return total

    # ------------------------------------------------------------------
    # approximate path (Karp–Luby-style union sampling)
    # ------------------------------------------------------------------
    def _component_union_approx(
        self, comp: Tuple[_DescKey, ...], epsilon: float, delta: float, seed: int
    ) -> float:
        """Bounded-error estimate of one component's union probability.

        The coverage estimator: draw descriptor ``i`` with probability
        ``p_i / T`` (``T = sum p_j``), draw a world conditioned on ``i``
        (free variables sampled from their marginals), and average
        ``T / |{j : world satisfies d_j}|`` — an unbiased estimator of the
        union probability with every sample in ``[T/n, T]``.  Hoeffding
        over that range yields the sample count for an absolute
        ``(epsilon, delta)`` guarantee.
        """
        probs = [self.descriptor_probability(key) for key in comp]
        total = sum(probs)
        if total <= 0.0:
            return 0.0
        lower = max(probs)
        upper = min(1.0, total)
        if upper - lower <= 2 * epsilon or total <= epsilon:
            # the feasible interval is already inside the error budget
            return (lower + upper) / 2.0
        n = len(comp)
        spread = total * (1.0 - 1.0 / n)  # sample range: [T/n, T]
        samples = max(
            1, math.ceil(spread * spread * math.log(2.0 / delta) / (2.0 * epsilon * epsilon))
        )
        rng = random.Random(f"{seed}|{comp!r}")
        cum_desc = list(itertools.accumulate(probs))
        vars_key = self._component_variables(comp)
        var_domains = [self._domain(v) for v in vars_key]
        var_cums = [self._cum_vector(v) for v in vars_key]
        var_totals = [cum[-1] for cum in var_cums]
        assignments = [dict(key) for key in comp]
        random_ = rng.random
        bisect_ = bisect.bisect
        inverse_coverage = 0.0
        world: Dict[str, Any] = {}
        for _ in range(samples):
            pick = bisect_(cum_desc, random_() * total)
            if pick >= n:
                pick = n - 1
            base = assignments[pick]
            world.clear()
            world.update(base)
            for var, domain, cum, var_total in zip(
                vars_key, var_domains, var_cums, var_totals
            ):
                if var not in base:
                    idx = bisect_(cum, random_() * var_total)
                    if idx >= len(domain):
                        idx = len(domain) - 1
                    world[var] = domain[idx]
            covered = 0
            for candidate in assignments:
                for var, value in candidate.items():
                    if world[var] != value:
                        break
                else:
                    covered += 1
            inverse_coverage += 1.0 / covered
        estimate = total * inverse_coverage / samples
        return min(upper, max(lower, estimate))


def confidence_engine(world_table: WorldTable) -> ConfidenceEngine:
    """The shared (memoizing) engine of a world table, created lazily.

    The engine lives on the table, so its caches — valid for the table's
    whole lifetime under append-only mutation — are shared by every query,
    aggregate, and physical operator computing confidences against it.
    """
    engine = getattr(world_table, "_confidence_engine", None)
    if engine is None:
        engine = ConfidenceEngine(world_table)
        world_table._confidence_engine = engine
    return engine


# ----------------------------------------------------------------------
# module-level entry points
# ----------------------------------------------------------------------
def exact_confidence(descriptors: Sequence[Descriptor], world_table: WorldTable) -> float:
    """Exact probability of the union of descriptor world-sets.

    Complexity is exponential only in the largest *connected* variable set
    the descriptors touch, not in the world-table size — the locality
    normalization exploits (Section 7), sharpened by independent-component
    factorization.  Memoized through the table's shared engine.
    """
    return confidence_engine(world_table).confidence(descriptors, method="exact")


def approx_confidence(
    descriptors: Sequence[Descriptor],
    world_table: WorldTable,
    epsilon: float = DEFAULT_EPSILON,
    delta: float = DEFAULT_DELTA,
    seed: int = 0,
) -> float:
    """Karp–Luby-style estimate: ``|answer - conf| <= epsilon`` with
    probability at least ``1 - delta``."""
    return confidence_engine(world_table).confidence(
        descriptors, method="approx", epsilon=epsilon, delta=delta, seed=seed
    )


def monte_carlo_confidence(
    descriptors: Sequence[Descriptor],
    world_table: WorldTable,
    samples: int = 10_000,
    seed: int = 0,
) -> float:
    """Direct Monte-Carlo estimate of the union probability.

    Samples assignments of the touched variables only; the estimator is
    unbiased with standard error ``sqrt(p(1-p)/samples)``.  Domains and
    cumulative weights are fetched once per variable (not per sample), and
    each variable's whole sample column is drawn in one C-level
    ``choices`` call.
    """
    descriptors = [d for d in descriptors]
    if not descriptors:
        return 0.0
    if any(d.empty for d in descriptors):
        return 1.0
    touched = sorted({var for d in descriptors for var in d.variables()})
    engine = confidence_engine(world_table)
    rng = random.Random(seed)
    columns = [
        rng.choices(engine._domain(var), cum_weights=engine._cum_vector(var), k=samples)
        for var in touched
    ]
    position = {var: i for i, var in enumerate(touched)}
    constraints = [
        tuple((position[var], value) for var, value in d.items()) for d in descriptors
    ]
    hits = 0
    for combo in zip(*columns):
        if any(all(combo[i] == value for i, value in cons) for cons in constraints):
            hits += 1
    return hits / samples


def tuple_confidences(
    result: URelation,
    world_table: WorldTable,
    method: str = "exact",
    samples: int = 10_000,
    seed: int = 0,
    epsilon: float = DEFAULT_EPSILON,
    delta: float = DEFAULT_DELTA,
) -> Dict[Tuple[Any, ...], float]:
    """Confidence of every possible value tuple of a result U-relation.

    ``method`` is ``"exact"``, ``"approx"``, ``"auto"`` (exact while the
    touched assignment space is small, sampling beyond
    :data:`EXACT_SPACE_LIMIT`), or ``"monte-carlo"`` (the direct sampler;
    ``samples`` applies to it only).  All groups share one memoized
    engine, so identical descriptor sets across groups compute once.
    """
    if method not in _METHODS:
        raise ValueError(f"unknown method {method!r}; use one of {_METHODS}")
    groups: Dict[Tuple[Any, ...], List[Descriptor]] = {}
    for descriptor, _tids, values in result:
        groups.setdefault(values, []).append(descriptor)
    out: Dict[Tuple[Any, ...], float] = {}
    if method == "monte-carlo":
        for values, descriptors in groups.items():
            out[values] = monte_carlo_confidence(
                descriptors, world_table, samples=samples, seed=seed
            )
        return out
    engine = confidence_engine(world_table)
    for values, descriptors in groups.items():
        out[values] = engine.confidence(
            descriptors, method=method, epsilon=epsilon, delta=delta, seed=seed
        )
    return out


def confidence_relation(
    result: URelation,
    world_table: WorldTable,
    method: str = "exact",
    samples: int = 10_000,
    seed: int = 0,
    epsilon: float = DEFAULT_EPSILON,
    delta: float = DEFAULT_DELTA,
) -> Relation:
    """Possible tuples with a trailing ``conf`` column, sorted by confidence."""
    confidences = tuple_confidences(
        result,
        world_table,
        method=method,
        samples=samples,
        seed=seed,
        epsilon=epsilon,
        delta=delta,
    )
    schema = Schema(list(result.value_names) + ["conf"])
    rows = sorted(
        (values + (conf,) for values, conf in confidences.items()),
        key=lambda row: (-row[-1], tuple(map(repr, row[:-1]))),
    )
    return Relation(schema, rows)


class ConfidenceAnswer(Relation):
    """A confidence-query result: a plain relation plus a ``conf`` summary.

    The summary dict carries the method actually used, the error budget,
    and per-method group counts; the serving layer exposes it as the
    ``conf`` field of the wire response.
    """

    __slots__ = ("conf",)

    @classmethod
    def adopt(cls, relation: Relation, summary: Dict[str, Any]) -> "ConfidenceAnswer":
        answer = cls.from_trusted(relation.schema, relation.rows)
        answer.conf = dict(summary)
        return answer
