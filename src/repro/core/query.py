"""Logical-level query algebra over uncertain relations.

Users write positive relational algebra extended with ``poss`` against the
*logical* schema (the uncertain relations), exactly as in the paper:

    poss( project( select( join(Rel("customer", "c"), Rel("orders", "o"),
                                 pred), pred2), ["o.orderdate"]) )

Query nodes:

* :class:`Rel` — a logical relation reference (optionally aliased; aliasing
  is required for self-joins so tuple-id columns stay disjoint),
* :class:`USelect` — σ with a predicate over logical value attributes,
* :class:`UProject` — π onto logical attributes,
* :class:`UJoin` — ⋈ with a predicate over both sides' attributes,
* :class:`UUnion` — ∪ of union-compatible subqueries,
* :class:`UMerge` — explicit merge of two partitions of the same relation
  (normally inserted automatically by the translator),
* :class:`Poss` — the "possible" operation closing the world semantics,
* :class:`Certain` — certain answers (Section 4; evaluated via the
  normalization + Lemma 4.3 pipeline in :mod:`repro.core.certain`),
* :class:`Conf` — tuple confidence over the probabilistic extension
  (Section 7): possible tuples with their probability of occurring,
  computed by the vectorized `Confidence` physical operator with an
  exact / bounded-error approximate / auto method choice.

Each node computes its logical output attributes eagerly, and
:func:`evaluate_in_world` provides the per-world semantics used as the
correctness oracle by the tests (``poss(Q) = U_worlds Q(world)``).
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from ..relational.expressions import Expression, columns_of
from ..relational.relation import Relation
from ..relational.schema import Schema

__all__ = [
    "UQuery",
    "Rel",
    "USelect",
    "UProject",
    "UJoin",
    "UUnion",
    "UMerge",
    "Poss",
    "Certain",
    "Conf",
    "evaluate_in_world",
]


class UQuery:
    """Base class for logical-level query nodes."""

    attributes: Tuple[str, ...]

    @property
    def children(self) -> Tuple["UQuery", ...]:
        return ()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({', '.join(self.attributes)})"


class Rel(UQuery):
    """A logical relation reference, optionally under an alias.

    Attributes are not known until the query is bound to a
    :class:`~repro.core.udatabase.UDatabase`; the translator fills them in.
    For building predicates, reference attributes as ``alias.attr`` when an
    alias is given, else by bare name.
    """

    def __init__(self, name: str, alias: Optional[str] = None):
        self.name = name
        self.alias = alias
        self.attributes = ()  # resolved against a UDatabase at translation time

    def qualified(self, attribute: str) -> str:
        """The reference for one of this relation's attributes."""
        if self.alias:
            return f"{self.alias}.{attribute}"
        return attribute

    def __repr__(self) -> str:
        if self.alias:
            return f"Rel({self.name} AS {self.alias})"
        return f"Rel({self.name})"


class USelect(UQuery):
    """σ_predicate over logical value attributes."""

    def __init__(self, child: UQuery, predicate: Expression):
        self.child = child
        self.predicate = predicate
        self.attributes = child.attributes

    @property
    def children(self) -> Tuple[UQuery, ...]:
        return (self.child,)


class UProject(UQuery):
    """π onto a list of logical attributes."""

    def __init__(self, child: UQuery, attributes: Sequence[str]):
        self.child = child
        self.attributes = tuple(attributes)

    @property
    def children(self) -> Tuple[UQuery, ...]:
        return (self.child,)


class UJoin(UQuery):
    """Inner join of two subqueries with a predicate over value attributes."""

    def __init__(self, left: UQuery, right: UQuery, predicate: Expression):
        self.left = left
        self.right = right
        self.predicate = predicate
        self.attributes = left.attributes + right.attributes

    @property
    def children(self) -> Tuple[UQuery, ...]:
        return (self.left, self.right)


class UUnion(UQuery):
    """Union of two union-compatible subqueries (attribute names from left)."""

    def __init__(self, left: UQuery, right: UQuery):
        self.left = left
        self.right = right
        self.attributes = left.attributes

    @property
    def children(self) -> Tuple[UQuery, ...]:
        return (self.left, self.right)


class UMerge(UQuery):
    """Explicit merge of two vertical partitions of the same relation.

    Normally the translator inserts merges automatically; the node exists so
    the Figure 2 equivalences and the Figure 3 plan ablation can construct
    specific merge placements by hand.
    """

    def __init__(self, left: UQuery, right: UQuery):
        self.left = left
        self.right = right
        self.attributes = tuple(
            list(left.attributes)
            + [a for a in right.attributes if a not in set(left.attributes)]
        )

    @property
    def children(self) -> Tuple[UQuery, ...]:
        return (self.left, self.right)


class Poss(UQuery):
    """The ``possible`` operation: all tuples occurring in some world."""

    def __init__(self, child: UQuery):
        self.child = child
        self.attributes = child.attributes

    @property
    def children(self) -> Tuple[UQuery, ...]:
        return (self.child,)


class Certain(UQuery):
    """Certain answers: tuples occurring in *every* world (Section 4)."""

    def __init__(self, child: UQuery):
        self.child = child
        self.attributes = child.attributes

    @property
    def children(self) -> Tuple[UQuery, ...]:
        return (self.child,)


class Conf(UQuery):
    """Tuple confidences: possible tuples with ``P(t in answer)``.

    Closes the world semantics like :class:`Poss` but over the
    *probabilistic* extension (Section 7): the answer is a plain relation
    of the child's possible value tuples plus a trailing ``conf`` column.
    ``method`` picks the computation path — ``"exact"``, ``"approx"``
    (bounded-error Karp–Luby sampling: within ``epsilon`` with probability
    at least ``1 - delta``), or ``"auto"`` (exact while the touched
    assignment space is small, sampling beyond it).  A ``Poss`` child is
    redundant and unwrapped.
    """

    METHODS = ("exact", "approx", "auto")

    def __init__(
        self,
        child: UQuery,
        method: str = "auto",
        epsilon: float = 0.01,
        delta: float = 0.05,
        seed: int = 0,
    ):
        if method not in self.METHODS:
            raise ValueError(
                f"unknown confidence method {method!r}; use one of {self.METHODS}"
            )
        while isinstance(child, Poss):
            child = child.child
        if isinstance(child, (Certain, Conf)):
            raise ValueError(
                f"conf cannot wrap {type(child).__name__.lower()} queries"
            )
        self.child = child
        self.method = method
        self.epsilon = float(epsilon)
        self.delta = float(delta)
        self.seed = int(seed)
        self.attributes = child.attributes + ("conf",)

    @property
    def children(self) -> Tuple[UQuery, ...]:
        return (self.child,)


# ----------------------------------------------------------------------
# per-world (oracle) semantics
# ----------------------------------------------------------------------
def evaluate_in_world(query: UQuery, instances: Mapping[str, Relation]) -> Relation:
    """Evaluate a query in a single world (set semantics).

    ``instances`` maps logical relation names to their one-world instances.
    ``Poss``/``Certain`` are world-set operations and cannot be evaluated
    inside a single world; callers strip them first.
    """
    if isinstance(query, (Poss, Certain)):
        raise ValueError("poss/certain are world-set level operations")
    result = _eval(query, instances)
    return result.distinct()


def _eval(query: UQuery, instances: Mapping[str, Relation]) -> Relation:
    if isinstance(query, Rel):
        relation = instances[query.name]
        if query.alias:
            return relation.qualify(query.alias)
        return relation
    if isinstance(query, USelect):
        child = _eval(query.child, instances)
        bound = query.predicate.bind(child.schema)
        return child.select(bound)
    if isinstance(query, UProject):
        return _eval(query.child, instances).project(list(query.attributes))
    if isinstance(query, UJoin):
        left = _eval(query.left, instances)
        right = _eval(query.right, instances)
        product = left.product(right)
        bound = query.predicate.bind(product.schema)
        return product.select(bound)
    if isinstance(query, UUnion):
        left = _eval(query.left, instances)
        right = _eval(query.right, instances)
        return left.union(Relation(left.schema, right.rows))
    if isinstance(query, UMerge):
        # merge inverts vertical partitioning: it recombines fields of the
        # *same logical tuples*.  At the instance level this tuple identity
        # is only available through the underlying relation, so the merge is
        # evaluated as the equivalent plain query over it (Figure 2, rule 1):
        #     merge(pi_X(sigma_f(R)), pi_Y(sigma_g(R)))
        #         = pi_{X u Y}(sigma_{f and g}(R))
        rewritten = _merge_as_plain_query(query)
        return _eval(rewritten, instances)
    raise TypeError(f"cannot evaluate query node {type(query).__name__}")


def _merge_as_plain_query(merge: "UMerge") -> UQuery:
    """Rewrite a merge tree into an equivalent Rel/USelect/UProject query."""
    from ..relational.expressions import conjunction

    def analyze(node: UQuery):
        """-> (Rel, [predicates], attributes or None for 'all')."""
        if isinstance(node, Rel):
            return node, [], None
        if isinstance(node, USelect):
            rel, preds, attrs = analyze(node.child)
            return rel, preds + [node.predicate], attrs
        if isinstance(node, UProject):
            rel, preds, _ = analyze(node.child)
            return rel, preds, list(node.attributes)
        if isinstance(node, UMerge):
            lrel, lpreds, lattrs = analyze(node.left)
            rrel, rpreds, rattrs = analyze(node.right)
            if lrel.name != rrel.name or lrel.alias != rrel.alias:
                raise ValueError(
                    "merge operands must be partitions of the same relation; "
                    f"got {lrel!r} and {rrel!r}"
                )
            if lattrs is None or rattrs is None:
                attrs = None
            else:
                attrs = lattrs + [a for a in rattrs if a not in set(lattrs)]
            return lrel, lpreds + rpreds, attrs
        raise ValueError(
            f"cannot evaluate merge over {type(node).__name__} in the "
            "per-world oracle (supported: Rel, USelect, UProject, UMerge)"
        )

    rel, preds, attrs = analyze(merge)
    query: UQuery = rel
    if preds:
        query = USelect(query, conjunction(preds))
    if attrs is not None:
        query = UProject(query, attrs)
    return query


def query_relations(query: UQuery) -> List[Rel]:
    """All Rel leaves of a query tree (in left-to-right order)."""
    if isinstance(query, Rel):
        return [query]
    out: List[Rel] = []
    for child in query.children:
        out.extend(query_relations(child))
    return out


def referenced_attributes(query: UQuery) -> Set[str]:
    """Attribute references appearing anywhere in a query tree."""
    refs: Set[str] = set()

    def walk(node: UQuery) -> None:
        if isinstance(node, (USelect, UJoin)):
            refs.update(columns_of(node.predicate))
        if isinstance(node, UProject):
            refs.update(node.attributes)
        for child in node.children:
            walk(child)

    walk(query)
    return refs
