"""Algebraic equivalences for the merge operator (Figure 2) and the
early/late materialization strategies of Figure 3.

The six Figure 2 rules:

1. ``merge(pi_X(R), pi_{A-X}(R)) = R``            (merge inverts partitioning)
2. ``merge(R, S) = merge(S, R)``                  (commutativity)
3. ``merge(merge(R, S), T) = merge(R, merge(S, T))`` (associativity)
4. ``sigma_phi(merge(R, S)) = merge(sigma_phi(R), S)`` when phi only
   references ``sch(R)``                          (selection pushdown)
5. ``merge(R, S) join_phi T = merge(R join_phi T, S)`` when phi references
   only ``sch(R) + sch(T)``                       (join pull-out)
6. ``pi_X(merge(R, S)) = merge(pi_{X∩A}(R), pi_{X∩B}(S))`` (projection split)

This module provides them as *rewrites on logical query trees* (used by the
Figure 3 merge-placement ablation and verified semantically by the test
suite) plus the two translation strategies the experiments compare:

* :func:`translate_late` — the default: partitions are merged in as late as
  possible and only when needed (late materialization; plans P2/P3),
* :func:`translate_early` — the naive plan P1: every relation is fully
  reconstructed from all its partitions before any other operation.
"""

from __future__ import annotations

from typing import Optional, Set

from ..relational.expressions import columns_of
from .query import Poss, Rel, UJoin, UMerge, UProject, UQuery, USelect, UUnion
from .translate import Translated, _Translator
from .udatabase import UDatabase

__all__ = [
    "translate_late",
    "translate_early",
    "rule2_commute",
    "rule3_reassociate",
    "rule4_selection_into_merge",
    "rule5_join_into_merge",
    "rule6_projection_into_merge",
    "apply_merge_rules",
]


# ----------------------------------------------------------------------
# translation strategies (Figure 3 / Figure 14)
# ----------------------------------------------------------------------
def translate_late(query: UQuery, udb: UDatabase) -> Translated:
    """Default strategy: minimal partition cover, merged as needed."""
    translator = _Translator(udb)
    needed = set(translator.attributes_of(query))
    return translator.translate(query, needed)


def translate_early(query: UQuery, udb: UDatabase) -> Translated:
    """Naive plan P1: reconstruct every relation fully before querying."""
    translator = _Translator(udb, merge_all=True)
    return translator.translate(query, None)


# ----------------------------------------------------------------------
# Figure 2 rewrites (single-step, return None when not applicable)
# ----------------------------------------------------------------------
def rule2_commute(query: UQuery) -> Optional[UQuery]:
    """merge(R, S) -> merge(S, R)."""
    if isinstance(query, UMerge):
        return UMerge(query.right, query.left)
    return None


def rule3_reassociate(query: UQuery) -> Optional[UQuery]:
    """merge(merge(R, S), T) -> merge(R, merge(S, T))."""
    if isinstance(query, UMerge) and isinstance(query.left, UMerge):
        inner = query.left
        return UMerge(inner.left, UMerge(inner.right, query.right))
    return None


def rule4_selection_into_merge(query: UQuery) -> Optional[UQuery]:
    """sigma_phi(merge(R, S)) -> merge(sigma_phi(R), S) when phi covers R."""
    if not (isinstance(query, USelect) and isinstance(query.child, UMerge)):
        return None
    merge = query.child
    refs = columns_of(query.predicate)
    if _covers(merge.left, refs):
        return UMerge(USelect(merge.left, query.predicate), merge.right)
    if _covers(merge.right, refs):
        return UMerge(merge.left, USelect(merge.right, query.predicate))
    return None


def rule5_join_into_merge(query: UQuery) -> Optional[UQuery]:
    """merge(R, S) join_phi T -> merge(R join_phi T, S) when phi covers R+T."""
    if not isinstance(query, UJoin):
        return None
    refs = columns_of(query.predicate)
    if isinstance(query.left, UMerge):
        merge, other = query.left, query.right
        if _covers_pair(merge.left, other, refs):
            return UMerge(UJoin(merge.left, other, query.predicate), merge.right)
    if isinstance(query.right, UMerge):
        merge, other = query.right, query.left
        if _covers_pair(other, merge.left, refs):
            return UMerge(UJoin(other, merge.left, query.predicate), merge.right)
    return None


def rule6_projection_into_merge(query: UQuery) -> Optional[UQuery]:
    """pi_X(merge(R, S)) -> merge(pi_{X∩A}(R), pi_{X∩B}(S))."""
    if not (isinstance(query, UProject) and isinstance(query.child, UMerge)):
        return None
    merge = query.child
    left_attrs = set(merge.left.attributes)
    right_attrs = set(merge.right.attributes)
    left_keep = [a for a in query.attributes if a in left_attrs]
    right_keep = [a for a in query.attributes if a in right_attrs and a not in left_attrs]
    if not left_keep or not (left_keep or right_keep):
        return None
    left = UProject(merge.left, left_keep) if left_keep != list(merge.left.attributes) else merge.left
    if right_keep:
        right = (
            UProject(merge.right, right_keep)
            if right_keep != list(merge.right.attributes)
            else merge.right
        )
        return UMerge(left, right)
    return left if len(left_keep) == len(query.attributes) else None


def apply_merge_rules(query: UQuery) -> UQuery:
    """Exhaustively push selections and projections into merges (rules 4+6).

    This is the classical heuristic of Section 3: filter partitions before
    reconstructing tuples, so merges process fewer and narrower tuples.
    """
    changed = True
    while changed:
        query, changed = _rewrite_once(query)
    return query


def _rewrite_once(query: UQuery):
    for rule in (rule4_selection_into_merge, rule6_projection_into_merge):
        rewritten = rule(query)
        if rewritten is not None:
            return rewritten, True
    new_children = []
    changed = False
    for child in query.children:
        new_child, child_changed = _rewrite_once(child)
        new_children.append(new_child)
        changed = changed or child_changed
    if not changed:
        return query, False
    return _rebuild(query, new_children), True


def _rebuild(query: UQuery, children) -> UQuery:
    if isinstance(query, USelect):
        return USelect(children[0], query.predicate)
    if isinstance(query, UProject):
        return UProject(children[0], query.attributes)
    if isinstance(query, UJoin):
        return UJoin(children[0], children[1], query.predicate)
    if isinstance(query, UMerge):
        return UMerge(children[0], children[1])
    if isinstance(query, UUnion):
        return UUnion(children[0], children[1])
    if isinstance(query, Poss):
        return Poss(children[0])
    return query


def _covers(query: UQuery, refs) -> bool:
    attrs = set(query.attributes)
    bases = {a.split(".", 1)[-1] for a in attrs}
    return all(r in attrs or r.split(".", 1)[-1] in bases for r in refs)


def _covers_pair(a: UQuery, b: UQuery, refs) -> bool:
    attrs = set(a.attributes) | set(b.attributes)
    bases = {x.split(".", 1)[-1] for x in attrs}
    return all(r in attrs or r.split(".", 1)[-1] in bases for r in refs)
