"""Saving and loading U-relational databases (log-structured, crash-safe).

A :class:`~repro.core.udatabase.UDatabase` persists to a directory whose
layout mirrors the in-memory write path: every vertical partition is a
list of **immutable segments** plus a **delete vector**, so saving after
DML appends new segment files and rewrites the manifest — it never
rewrites a base segment.

Segment-log layout (manifest format v3)::

    <dir>/
      manifest.csv                  relation, attributes, partition_values,
                                    part, d_width, segments ("id:rows|..."),
                                    deleted ("ordinal|..." — the delete
                                    vector, inline since v3)
      indexes.csv                   secondary-index definitions
      w.csv                         the world table (Var, Rng[, P])
      u_<relation>_<attributes>/    one directory per partition
        seg_000000.csv              the base segment (typed CSV)
        seg_000001.csv              one file per appended segment

Write-path contract:

* **Segments are immutable**: a ``seg_<id>.csv`` whose row count matches
  the manifest entry is never rewritten — save after N inserts leaves
  every base segment file byte-identical and writes only the new
  appended-segment files.  Segment ids are never reused within a lineage
  (compaction's fresh base takes an id past every existing one), so a
  new save never overwrites a file an older manifest still references.
  A save directory therefore belongs to one database *lineage* (load →
  DML → save back); to save an unrelated database under the same path,
  start from an empty directory.
* **The manifest rename is the commit point.**  A save proceeds in three
  phases: (1) write every new segment file — the current manifest does
  not reference them, so a crash here leaves the directory loading at
  exactly its pre-save state; (2) write ``manifest.csv`` (and ``w.csv``
  / ``indexes.csv``) to a temporary sibling and ``os.replace`` it into
  place — POSIX-atomic, so :func:`load_udatabase` only ever sees the
  complete old manifest or the complete new one, never a torn file;
  (3) **garbage-collect**: delete segment files the *new* manifest no
  longer references (compacted-away stacks) and stale v2 ``deleted.csv``
  files — only after the rename, so a crash any time before phase 3
  leaves every file the committed manifest needs, and a crash during
  phase 3 merely leaves unreferenced files for the next save to sweep.
* **Delete vectors live inside the manifest** (v3): the ``deleted``
  column holds the global ordinals (over the concatenation of all
  segment rows in segment order) marked dead.  Inline storage is what
  makes the rename atomic for UPDATE/DELETE too — the new segment list
  and the new delete vector commit in the same ``os.replace``, so no
  intermediate "rows appended but predecessors not yet deleted" state is
  ever visible on disk.
* **Older formats load unchanged.**  The manifest is versioned by its
  header: v2 rows lack the ``deleted`` column and read their vector from
  the partition's ``deleted.csv``; v1 directories — written before the
  segment log existed, one whole-CSV ``file`` per partition — are
  detected by their ``file`` column and load as single-base-segment
  relations.  The next save upgrades either format to v3 in place
  (sweeping ``deleted.csv`` files in its GC phase).

``indexes.csv`` records every secondary index *definition* — built or
still pending from lazy auto-indexing — keyed by partition directory
(v2+) or partition file (v1), plus the definitions on the ``w``
world-table snapshot (recorded under ``w.csv``).  Saving never forces a
deferred index build, and loading defers every recorded definition
again, so a save/load round trip costs no index construction at all.
User-created world-table indexes are re-applied whenever
``to_database`` (re)materializes the ``w`` snapshot, so they survive
both world-table growth and the round trip.
"""

from __future__ import annotations

import csv
import os
import pathlib
from typing import Dict, List, Set, Tuple, Union

from ..relational.csvio import read_csv, write_csv
from ..relational.index import attached_index_defs, defer_index
from ..relational.relation import Relation, Segment
from ..relational.schema import Schema
from .udatabase import UDatabase
from .urelation import URelation, tid_column
from .worldtable import WorldTable

__all__ = ["save_udatabase", "load_udatabase"]

PathLike = Union[str, pathlib.Path]

_MANIFEST_HEADER_V3 = [
    "relation",
    "attributes",
    "partition_values",
    "part",
    "d_width",
    "segments",
    "deleted",
]

#: Seam for the atomic-rename commit (fault-injection tests monkeypatch
#: this to crash a save between phases).
_rename = os.replace


def _segment_filename(segment_id: int) -> str:
    return f"seg_{segment_id:06d}.csv"


def _csv_data_rows(path: pathlib.Path) -> int:
    """Fast line-based data-row count of a CSV file (header excluded).

    Used only to decide whether an on-disk segment file can be *skipped*
    (it already holds this immutable segment); a miscount — e.g. quoted
    embedded newlines — merely causes a redundant rewrite, never a skip
    of changed data within one database lineage.
    """
    count = 0
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            count += chunk.count(b"\n")
    return max(0, count - 1)


def _commit_rows(path: pathlib.Path, header: List[str], rows: List[Tuple]) -> None:
    """Write a CSV to a temporary sibling and atomically rename into place."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)
    _rename(tmp, path)


def save_udatabase(udb: UDatabase, directory: PathLike) -> None:
    """Write a U-relational database as a segment log (see module doc).

    Idempotent, incremental, and crash-safe: new segment files land
    first, the manifest rename commits them (with the delete vectors
    inline), and only then are segment files the new manifest dropped —
    compacted-away stacks — garbage-collected.  Re-saving skips every
    segment file already present with the expected row count, so base
    segments stay byte-identical across saves.
    """
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    manifest_rows: List[Tuple[str, str, str, str, int, str, str]] = []
    index_rows: List[Tuple[str, str, str, str]] = []
    referenced: Dict[pathlib.Path, Set[str]] = {}
    for name in udb.relation_names():
        schema = udb.logical_schema(name)
        for part in udb.partitions(name):
            part_key = f"u_{name}_" + "_".join(part.value_names)
            part_dir = directory / part_key
            part_dir.mkdir(exist_ok=True)
            keep = referenced.setdefault(part_dir, set())
            relation = part.relation
            entries: List[str] = []
            for segment in relation.segments():
                entries.append(f"{segment.segment_id}:{len(segment.rows)}")
                filename = _segment_filename(segment.segment_id)
                keep.add(filename)
                target = part_dir / filename
                if target.exists() and _csv_data_rows(target) == len(segment.rows):
                    continue  # immutable segment already persisted
                write_csv(
                    Relation.from_trusted(relation.schema, list(segment.rows)),
                    target,
                )
            manifest_rows.append(
                (
                    name,
                    "|".join(schema.attributes),
                    "|".join(part.value_names),
                    part_key,
                    part.d_width,
                    "|".join(entries),
                    "|".join(str(o) for o in sorted(relation.deleted_ordinals())),
                )
            )
            for columns, kind, idx_name in attached_index_defs(relation):
                index_rows.append((part_key, idx_name, "|".join(columns), kind))

    # world-table index definitions (the snapshot lives in the cached
    # database view; absent when no view was ever materialized)
    database = udb._database
    if database is not None and "w" in database:
        for columns, kind, idx_name in attached_index_defs(database.get("w")):
            index_rows.append(("w.csv", idx_name, "|".join(columns), kind))
    for idx_name, columns, kind in udb.world_index_defs:
        row = ("w.csv", idx_name, "|".join(columns), kind)
        if row not in index_rows:
            index_rows.append(row)

    # -- commit phase: each file lands whole via temp-write + atomic
    # rename; the manifest rename is THE commit point for segment state
    has_probabilities = _has_nonuniform_probabilities(udb.world_table)
    world = udb.world_table.relation(with_probabilities=has_probabilities)
    world_tmp = directory / "w.csv.tmp"
    write_csv(world, world_tmp)
    _rename(world_tmp, directory / "w.csv")

    _commit_rows(directory / "manifest.csv", _MANIFEST_HEADER_V3, manifest_rows)
    _commit_rows(
        directory / "indexes.csv", ["file", "index", "columns", "kind"], index_rows
    )

    # -- GC phase: only now drop what the committed manifest no longer
    # references (old segment stacks replaced by a compacted base, and
    # v2 deleted.csv files superseded by the inline vectors)
    for part_dir, keep in referenced.items():
        for child in part_dir.glob("seg_*.csv"):
            if child.name not in keep:
                child.unlink()
        stale = part_dir / "deleted.csv"
        if stale.exists():
            stale.unlink()


def _load_partition_segmented(
    directory: pathlib.Path, entry: Dict[str, str]
) -> Relation:
    """Assemble one partition relation from its segment directory (v2/v3)."""
    part_dir = directory / entry["part"]
    segments: List[Segment] = []
    schema = None
    for item in entry["segments"].split("|"):
        segment_id, _, expected = item.partition(":")
        loaded = read_csv(part_dir / _segment_filename(int(segment_id)))
        if schema is None:
            schema = loaded.schema
        if expected and len(loaded.rows) != int(expected):
            raise ValueError(
                f"{part_dir}: segment {segment_id} holds {len(loaded.rows)} "
                f"rows, manifest expects {expected}"
            )
        segments.append(Segment(int(segment_id), tuple(loaded.rows)))
    if schema is None:
        raise ValueError(f"{part_dir}: manifest lists no segments")
    if "deleted" in entry:  # v3: the delete vector is inline
        spec = entry["deleted"]
        deleted = [int(o) for o in spec.split("|")] if spec else []
    else:  # v2: a sidecar file per partition
        deleted_path = part_dir / "deleted.csv"
        deleted = (
            [row[0] for row in read_csv(deleted_path).rows]
            if deleted_path.exists()
            else []
        )
    return Relation.from_segments(schema, segments, deleted)


def load_udatabase(directory: PathLike) -> UDatabase:
    """Load a U-relational database saved by :func:`save_udatabase`.

    Reads all three manifest formats: v3 (inline delete vectors), v2
    (``deleted.csv`` sidecars), and the pre-segment v1 layout (one whole
    CSV per partition), which loads as single-base-segment relations.
    """
    directory = pathlib.Path(directory)
    world_relation = read_csv(directory / "w.csv")
    world = WorldTable.from_relation(world_relation)
    udb = UDatabase(world)

    with open(directory / "manifest.csv", "r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        entries = [dict(zip(header, row)) for row in reader]

    segmented = "segments" in header  # v2/v3; v1 has a whole-CSV "file" column
    grouped: Dict[str, Tuple[List[str], List[URelation]]] = {}
    by_key: Dict[str, Relation] = {}
    for entry in entries:
        name = entry["relation"]
        attributes = entry["attributes"].split("|")
        values = entry["partition_values"].split("|")
        if segmented:
            key = entry["part"]
            relation = _load_partition_segmented(directory, entry)
        else:
            key = entry["file"]
            relation = read_csv(directory / key)
        by_key[key] = relation
        part = URelation(
            relation, int(entry["d_width"]), [tid_column(name)], values
        )
        grouped.setdefault(name, (attributes, []))[1].append(part)

    for name, (attributes, parts) in grouped.items():
        udb.add_relation(name, attributes, parts)

    # re-defer recorded secondary indexes (absent in pre-index
    # directories): definitions attach now, builds happen on first
    # planner access; defer_index dedups against the definitions
    # add_relation auto-deferred.  World-table entries (file ``w.csv``)
    # are stashed on the UDatabase and applied when ``to_database``
    # materializes the ``w`` snapshot.
    index_manifest = directory / "indexes.csv"
    if index_manifest.exists():
        with open(index_manifest, "r", newline="", encoding="utf-8") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            for row in reader:
                entry = dict(zip(header, row))
                if entry["file"] == "w.csv":
                    if entry["index"] != "idx_w_var":  # auto-restored anyway
                        udb.world_index_defs.append(
                            (
                                entry["index"],
                                tuple(entry["columns"].split("|")),
                                entry["kind"],
                            )
                        )
                    continue
                relation = by_key.get(entry["file"])
                if relation is None:
                    continue
                defer_index(
                    relation,
                    entry["columns"].split("|"),
                    kind=entry["kind"],
                    name=entry["index"],
                )
    return udb


def _has_nonuniform_probabilities(world: WorldTable) -> bool:
    for var in world.variables():
        domain = world.domain(var)
        uniform = 1.0 / len(domain)
        for value in domain:
            if abs(world.probability(var, value) - uniform) > 1e-12:
                return True
    return False
