"""Saving and loading U-relational databases (log-structured).

A :class:`~repro.core.udatabase.UDatabase` persists to a directory whose
layout mirrors the in-memory write path: every vertical partition is a
list of **immutable segments** plus a **delete vector**, so saving after
DML appends new segment files and rewrites vectors — it never rewrites a
base segment.

Segment-log layout (manifest format v2)::

    <dir>/
      manifest.csv                  relation, attributes, partition_values,
                                    part, d_width, segments ("id:rows|...")
      indexes.csv                   secondary-index definitions
      w.csv                         the world table (Var, Rng[, P])
      u_<relation>_<attributes>/    one directory per partition
        seg_000000.csv              the base segment (typed CSV)
        seg_000001.csv              one file per appended segment
        deleted.csv                 global ordinals marked deleted (absent
                                    when the delete vector is empty)

Write-path contract:

* **Segments are immutable**: a ``seg_<id>.csv`` whose row count matches
  the manifest entry is never rewritten — save after N inserts leaves
  every base segment file byte-identical and writes only the new
  appended-segment files.  A save directory therefore belongs to one
  database *lineage* (load → DML → save back); to save an unrelated
  database under the same path, start from an empty directory.
* **Delete vectors are tiny and rewritten every save** (``deleted.csv``
  holds one global ordinal per row, over the concatenation of all
  segment rows in segment order; the file is removed when no tuple is
  deleted).
* **The manifest is versioned by its header**: v2 rows carry a ``part``
  directory and a ``segments`` column (``"<id>:<rows>|..."``).  v1
  directories — written before the segment log existed, one whole-CSV
  ``file`` per partition — are detected by their ``file`` column and
  load unchanged (each becomes a single base segment in memory, so the
  *next* save upgrades them to the v2 layout in a fresh directory or
  in place with the whole old CSV left behind as dead weight).

``indexes.csv`` records every secondary index *definition* — built or
still pending from lazy auto-indexing — keyed by partition directory
(v2) or partition file (v1), plus the definitions on the ``w``
world-table snapshot (recorded under ``w.csv``).  Saving never forces a
deferred index build, and loading defers every recorded definition
again, so a save/load round trip costs no index construction at all.
User-created world-table indexes are re-applied whenever
``to_database`` (re)materializes the ``w`` snapshot, so they survive
both world-table growth and the round trip.
"""

from __future__ import annotations

import csv
import pathlib
from typing import Dict, List, Tuple, Union

from ..relational.csvio import read_csv, write_csv
from ..relational.index import attached_index_defs, defer_index
from ..relational.relation import Relation, Segment
from ..relational.schema import Schema
from .udatabase import UDatabase
from .urelation import URelation, tid_column
from .worldtable import WorldTable

__all__ = ["save_udatabase", "load_udatabase"]

PathLike = Union[str, pathlib.Path]

_MANIFEST_HEADER_V2 = [
    "relation",
    "attributes",
    "partition_values",
    "part",
    "d_width",
    "segments",
]


def _segment_filename(segment_id: int) -> str:
    return f"seg_{segment_id:06d}.csv"


def _csv_data_rows(path: pathlib.Path) -> int:
    """Fast line-based data-row count of a CSV file (header excluded).

    Used only to decide whether an on-disk segment file can be *skipped*
    (it already holds this immutable segment); a miscount — e.g. quoted
    embedded newlines — merely causes a redundant rewrite, never a skip
    of changed data within one database lineage.
    """
    count = 0
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            count += chunk.count(b"\n")
    return max(0, count - 1)


def save_udatabase(udb: UDatabase, directory: PathLike) -> None:
    """Write a U-relational database as a segment log (see module doc).

    Idempotent and incremental: re-saving into the directory of an
    earlier save of the same database lineage rewrites the manifest, the
    world table, and the delete vectors, but skips every segment file
    already present with the expected row count — base segments stay
    byte-identical across saves.
    """
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    has_probabilities = _has_nonuniform_probabilities(udb.world_table)
    write_csv(
        udb.world_table.relation(with_probabilities=has_probabilities),
        directory / "w.csv",
    )

    manifest_rows: List[Tuple[str, str, str, str, int, str]] = []
    index_rows: List[Tuple[str, str, str, str]] = []
    for name in udb.relation_names():
        schema = udb.logical_schema(name)
        for part in udb.partitions(name):
            part_key = f"u_{name}_" + "_".join(part.value_names)
            part_dir = directory / part_key
            part_dir.mkdir(exist_ok=True)
            relation = part.relation
            entries: List[str] = []
            for segment in relation.segments():
                entries.append(f"{segment.segment_id}:{len(segment.rows)}")
                target = part_dir / _segment_filename(segment.segment_id)
                if target.exists() and _csv_data_rows(target) == len(segment.rows):
                    continue  # immutable segment already persisted
                write_csv(
                    Relation.from_trusted(relation.schema, list(segment.rows)),
                    target,
                )
            deleted = sorted(relation.deleted_ordinals())
            deleted_path = part_dir / "deleted.csv"
            if deleted:
                write_csv(
                    Relation(Schema(("ordinal",)), [(o,) for o in deleted]),
                    deleted_path,
                )
            elif deleted_path.exists():
                deleted_path.unlink()
            manifest_rows.append(
                (
                    name,
                    "|".join(schema.attributes),
                    "|".join(part.value_names),
                    part_key,
                    part.d_width,
                    "|".join(entries),
                )
            )
            for columns, kind, idx_name in attached_index_defs(relation):
                index_rows.append((part_key, idx_name, "|".join(columns), kind))

    # world-table index definitions (the snapshot lives in the cached
    # database view; absent when no view was ever materialized)
    database = udb._database
    if database is not None and "w" in database:
        for columns, kind, idx_name in attached_index_defs(database.get("w")):
            index_rows.append(("w.csv", idx_name, "|".join(columns), kind))
    for idx_name, columns, kind in udb.world_index_defs:
        row = ("w.csv", idx_name, "|".join(columns), kind)
        if row not in index_rows:
            index_rows.append(row)

    with open(directory / "manifest.csv", "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(_MANIFEST_HEADER_V2)
        writer.writerows(manifest_rows)

    with open(directory / "indexes.csv", "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["file", "index", "columns", "kind"])
        writer.writerows(index_rows)


def _load_partition_v2(directory: pathlib.Path, entry: Dict[str, str]) -> Relation:
    """Assemble one partition relation from its segment directory."""
    part_dir = directory / entry["part"]
    segments: List[Segment] = []
    schema = None
    for item in entry["segments"].split("|"):
        segment_id, _, expected = item.partition(":")
        loaded = read_csv(part_dir / _segment_filename(int(segment_id)))
        if schema is None:
            schema = loaded.schema
        if expected and len(loaded.rows) != int(expected):
            raise ValueError(
                f"{part_dir}: segment {segment_id} holds {len(loaded.rows)} "
                f"rows, manifest expects {expected}"
            )
        segments.append(Segment(int(segment_id), tuple(loaded.rows)))
    if schema is None:
        raise ValueError(f"{part_dir}: manifest lists no segments")
    deleted_path = part_dir / "deleted.csv"
    deleted: List[int] = []
    if deleted_path.exists():
        deleted = [row[0] for row in read_csv(deleted_path).rows]
    return Relation.from_segments(schema, segments, deleted)


def load_udatabase(directory: PathLike) -> UDatabase:
    """Load a U-relational database saved by :func:`save_udatabase`.

    Reads both manifest formats: v2 segment-log directories and the
    pre-segment v1 layout (one whole CSV per partition), which loads as
    single-base-segment relations.
    """
    directory = pathlib.Path(directory)
    world_relation = read_csv(directory / "w.csv")
    world = WorldTable.from_relation(world_relation)
    udb = UDatabase(world)

    with open(directory / "manifest.csv", "r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        entries = [dict(zip(header, row)) for row in reader]

    segmented = "segments" in header  # v2; v1 has a whole-CSV "file" column
    grouped: Dict[str, Tuple[List[str], List[URelation]]] = {}
    by_key: Dict[str, Relation] = {}
    for entry in entries:
        name = entry["relation"]
        attributes = entry["attributes"].split("|")
        values = entry["partition_values"].split("|")
        if segmented:
            key = entry["part"]
            relation = _load_partition_v2(directory, entry)
        else:
            key = entry["file"]
            relation = read_csv(directory / key)
        by_key[key] = relation
        part = URelation(
            relation, int(entry["d_width"]), [tid_column(name)], values
        )
        grouped.setdefault(name, (attributes, []))[1].append(part)

    for name, (attributes, parts) in grouped.items():
        udb.add_relation(name, attributes, parts)

    # re-defer recorded secondary indexes (absent in pre-index
    # directories): definitions attach now, builds happen on first
    # planner access; defer_index dedups against the definitions
    # add_relation auto-deferred.  World-table entries (file ``w.csv``)
    # are stashed on the UDatabase and applied when ``to_database``
    # materializes the ``w`` snapshot.
    index_manifest = directory / "indexes.csv"
    if index_manifest.exists():
        with open(index_manifest, "r", newline="", encoding="utf-8") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            for row in reader:
                entry = dict(zip(header, row))
                if entry["file"] == "w.csv":
                    if entry["index"] != "idx_w_var":  # auto-restored anyway
                        udb.world_index_defs.append(
                            (
                                entry["index"],
                                tuple(entry["columns"].split("|")),
                                entry["kind"],
                            )
                        )
                    continue
                relation = by_key.get(entry["file"])
                if relation is None:
                    continue
                defer_index(
                    relation,
                    entry["columns"].split("|"),
                    kind=entry["kind"],
                    name=entry["index"],
                )
    return udb


def _has_nonuniform_probabilities(world: WorldTable) -> bool:
    for var in world.variables():
        domain = world.domain(var)
        uniform = 1.0 / len(domain)
        for value in domain:
            if abs(world.probability(var, value) - uniform) > 1e-12:
                return True
    return False
