"""Saving and loading U-relational databases.

A :class:`~repro.core.udatabase.UDatabase` persists to a directory of CSV
files — one per vertical partition plus the world table and a small
``manifest.csv`` describing the logical schemas and partition layout:

    <dir>/
      manifest.csv                      relation, attribute, partition file
      indexes.csv                       secondary-index definitions
      w.csv                             the world table (Var, Rng[, P])
      u_<relation>_<attributes>.csv     one per partition

The layout intentionally mirrors the naming of the paper's experiment
tables (``u_l_shipdate`` etc. in Figure 13): the representation *is* plain
relations, so plain CSV is a faithful serialization.  ``indexes.csv``
records every secondary index *definition* — built or still pending from
lazy auto-indexing — of every partition (file, index name, columns, kind),
plus the definitions on the ``w`` world-table snapshot (recorded under
file ``w.csv``).  Saving never forces a deferred index build, and loading
defers every recorded definition again, so a save/load round trip costs no
index construction at all; the definitions materialize on first planner
access.  User-created world-table indexes are re-applied whenever
``to_database`` (re)materializes the ``w`` snapshot, so they survive both
world-table growth and the round trip.  Directories written before the
index subsystem existed simply lack the file and load fine.
"""

from __future__ import annotations

import csv
import pathlib
from typing import Dict, List, Tuple, Union

from ..relational.csvio import read_csv, write_csv
from ..relational.index import attached_index_defs, defer_index
from ..relational.relation import Relation
from .udatabase import UDatabase
from .urelation import URelation, tid_column
from .worldtable import WorldTable

__all__ = ["save_udatabase", "load_udatabase"]

PathLike = Union[str, pathlib.Path]


def save_udatabase(udb: UDatabase, directory: PathLike) -> None:
    """Write a U-relational database to a directory of CSV files."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    has_probabilities = _has_nonuniform_probabilities(udb.world_table)
    write_csv(
        udb.world_table.relation(with_probabilities=has_probabilities),
        directory / "w.csv",
    )

    manifest_rows: List[Tuple[str, str, str, str, int]] = []
    index_rows: List[Tuple[str, str, str, str]] = []
    for name in udb.relation_names():
        schema = udb.logical_schema(name)
        for index, part in enumerate(udb.partitions(name)):
            filename = f"u_{name}_" + "_".join(part.value_names) + ".csv"
            write_csv(part.relation, directory / filename)
            manifest_rows.append(
                (
                    name,
                    "|".join(schema.attributes),
                    "|".join(part.value_names),
                    filename,
                    part.d_width,
                )
            )
            for columns, kind, idx_name in attached_index_defs(part.relation):
                index_rows.append((filename, idx_name, "|".join(columns), kind))

    # world-table index definitions (the snapshot lives in the cached
    # database view; absent when no view was ever materialized)
    database = udb._database
    if database is not None and "w" in database:
        for columns, kind, idx_name in attached_index_defs(database.get("w")):
            index_rows.append(("w.csv", idx_name, "|".join(columns), kind))
    for idx_name, columns, kind in udb.world_index_defs:
        row = ("w.csv", idx_name, "|".join(columns), kind)
        if row not in index_rows:
            index_rows.append(row)

    with open(directory / "manifest.csv", "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["relation", "attributes", "partition_values", "file", "d_width"])
        writer.writerows(manifest_rows)

    with open(directory / "indexes.csv", "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["file", "index", "columns", "kind"])
        writer.writerows(index_rows)


def load_udatabase(directory: PathLike) -> UDatabase:
    """Load a U-relational database saved by :func:`save_udatabase`."""
    directory = pathlib.Path(directory)
    world_relation = read_csv(directory / "w.csv")
    world = WorldTable.from_relation(world_relation)
    udb = UDatabase(world)

    with open(directory / "manifest.csv", "r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        entries = [dict(zip(header, row)) for row in reader]

    grouped: Dict[str, Tuple[List[str], List[URelation]]] = {}
    by_file: Dict[str, Relation] = {}
    for entry in entries:
        name = entry["relation"]
        attributes = entry["attributes"].split("|")
        values = entry["partition_values"].split("|")
        relation = read_csv(directory / entry["file"])
        by_file[entry["file"]] = relation
        part = URelation(
            relation, int(entry["d_width"]), [tid_column(name)], values
        )
        grouped.setdefault(name, (attributes, []))[1].append(part)

    for name, (attributes, parts) in grouped.items():
        udb.add_relation(name, attributes, parts)

    # re-defer recorded secondary indexes (absent in pre-index
    # directories): definitions attach now, builds happen on first
    # planner access; defer_index dedups against the definitions
    # add_relation auto-deferred.  World-table entries (file ``w.csv``)
    # are stashed on the UDatabase and applied when ``to_database``
    # materializes the ``w`` snapshot.
    index_manifest = directory / "indexes.csv"
    if index_manifest.exists():
        with open(index_manifest, "r", newline="", encoding="utf-8") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            for row in reader:
                entry = dict(zip(header, row))
                if entry["file"] == "w.csv":
                    if entry["index"] != "idx_w_var":  # auto-restored anyway
                        udb.world_index_defs.append(
                            (
                                entry["index"],
                                tuple(entry["columns"].split("|")),
                                entry["kind"],
                            )
                        )
                    continue
                relation = by_file.get(entry["file"])
                if relation is None:
                    continue
                defer_index(
                    relation,
                    entry["columns"].split("|"),
                    kind=entry["kind"],
                    name=entry["index"],
                )
    return udb


def _has_nonuniform_probabilities(world: WorldTable) -> bool:
    for var in world.variables():
        domain = world.domain(var)
        uniform = 1.0 / len(domain)
        for value in domain:
            if abs(world.probability(var, value) - uniform) > 1e-12:
                return True
    return False
