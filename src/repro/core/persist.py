"""Saving and loading U-relational databases.

A :class:`~repro.core.udatabase.UDatabase` persists to a directory of CSV
files — one per vertical partition plus the world table and a small
``manifest.csv`` describing the logical schemas and partition layout:

    <dir>/
      manifest.csv                      relation, attribute, partition file
      indexes.csv                       secondary-index definitions
      w.csv                             the world table (Var, Rng[, P])
      u_<relation>_<attributes>.csv     one per partition

The layout intentionally mirrors the naming of the paper's experiment
tables (``u_l_shipdate`` etc. in Figure 13): the representation *is* plain
relations, so plain CSV is a faithful serialization.  ``indexes.csv``
records every secondary index attached to a partition (file, index name,
columns, kind) so access paths rebuild on load; directories written before
the index subsystem existed simply lack the file and load fine.  Indexes
on the world table are *not* persisted — the ``w`` snapshot is
re-materialized from the :class:`WorldTable` whenever it changes, so only
the auto-created ``idx_w_var`` (restored by ``to_database``) survives a
round trip.
"""

from __future__ import annotations

import csv
import pathlib
from typing import Dict, List, Tuple, Union

from ..relational.csvio import read_csv, write_csv
from ..relational.index import ensure_index, indexes_on
from ..relational.relation import Relation
from .udatabase import UDatabase
from .urelation import URelation, tid_column
from .worldtable import WorldTable

__all__ = ["save_udatabase", "load_udatabase"]

PathLike = Union[str, pathlib.Path]


def save_udatabase(udb: UDatabase, directory: PathLike) -> None:
    """Write a U-relational database to a directory of CSV files."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    has_probabilities = _has_nonuniform_probabilities(udb.world_table)
    write_csv(
        udb.world_table.relation(with_probabilities=has_probabilities),
        directory / "w.csv",
    )

    manifest_rows: List[Tuple[str, str, str, str, int]] = []
    index_rows: List[Tuple[str, str, str, str]] = []
    for name in udb.relation_names():
        schema = udb.logical_schema(name)
        for index, part in enumerate(udb.partitions(name)):
            filename = f"u_{name}_" + "_".join(part.value_names) + ".csv"
            write_csv(part.relation, directory / filename)
            manifest_rows.append(
                (
                    name,
                    "|".join(schema.attributes),
                    "|".join(part.value_names),
                    filename,
                    part.d_width,
                )
            )
            for idx in indexes_on(part.relation):
                index_rows.append((filename, idx.name, "|".join(idx.columns), idx.kind))

    with open(directory / "manifest.csv", "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["relation", "attributes", "partition_values", "file", "d_width"])
        writer.writerows(manifest_rows)

    with open(directory / "indexes.csv", "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["file", "index", "columns", "kind"])
        writer.writerows(index_rows)


def load_udatabase(directory: PathLike) -> UDatabase:
    """Load a U-relational database saved by :func:`save_udatabase`."""
    directory = pathlib.Path(directory)
    world_relation = read_csv(directory / "w.csv")
    world = WorldTable.from_relation(world_relation)
    udb = UDatabase(world)

    with open(directory / "manifest.csv", "r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        entries = [dict(zip(header, row)) for row in reader]

    grouped: Dict[str, Tuple[List[str], List[URelation]]] = {}
    by_file: Dict[str, Relation] = {}
    for entry in entries:
        name = entry["relation"]
        attributes = entry["attributes"].split("|")
        values = entry["partition_values"].split("|")
        relation = read_csv(directory / entry["file"])
        by_file[entry["file"]] = relation
        part = URelation(
            relation, int(entry["d_width"]), [tid_column(name)], values
        )
        grouped.setdefault(name, (attributes, []))[1].append(part)

    for name, (attributes, parts) in grouped.items():
        udb.add_relation(name, attributes, parts)

    # rebuild recorded secondary indexes (absent in pre-index directories);
    # ensure_index dedups against the tid indexes add_relation auto-creates
    index_manifest = directory / "indexes.csv"
    if index_manifest.exists():
        with open(index_manifest, "r", newline="", encoding="utf-8") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            for row in reader:
                entry = dict(zip(header, row))
                relation = by_file.get(entry["file"])
                if relation is None:
                    continue
                ensure_index(
                    relation,
                    entry["columns"].split("|"),
                    kind=entry["kind"],
                    name=entry["index"],
                )
    return udb


def _has_nonuniform_probabilities(world: WorldTable) -> bool:
    for var in world.variables():
        domain = world.domain(var)
        uniform = 1.0 / len(domain)
        for value in domain:
            if abs(world.probability(var, value) - uniform) > 1e-12:
                return True
    return False
