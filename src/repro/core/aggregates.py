"""Aggregation over uncertain query results (the paper's future work).

Section 6 notes the experiment queries are de-aggregated versions of TPC-H
queries because "dealing with aggregation is subject to future work", and
Section 7 points at probabilistic U-relations.  This module implements the
standard possible-worlds semantics for aggregates on top of query-result
U-relations:

* **expected aggregates** — for SUM and COUNT, the expectation over worlds
  is *exact and efficient* by linearity: each possible tuple contributes
  ``confidence(t) * value(t)`` (resp. ``confidence(t)``), with confidences
  from :mod:`repro.core.probability`.  No world enumeration.
* **bounds** — the minimum and maximum value an aggregate can take in any
  world.  For COUNT/SUM of non-negative values these follow from tuple
  certainty/possibility; for the general case (and for MIN/MAX/AVG) a
  Monte-Carlo sweep over sampled worlds gives estimated bounds and the
  full distribution.
* **per-world evaluation** — :func:`aggregate_distribution` samples total
  valuations, instantiates the result, and aggregates per world, yielding
  the aggregate's distribution (the object confidence computation
  generalizes).

All confidence lookups go through the world table's shared memoized
:class:`~repro.core.probability.ConfidenceEngine`, so identical descriptor
sets across groups (and across calls) are computed once.

These semantics follow the standard treatment of aggregation in
probabilistic databases; they compose with every query this package can
translate because they operate on result U-relations.
"""

from __future__ import annotations

import itertools
import random
from typing import Any, Callable, Dict, List, Optional, Tuple

from .descriptor import Descriptor
from .probability import EXACT_SPACE_LIMIT, assignment_space_size, confidence_engine
from .urelation import URelation
from .worldtable import WorldTable

__all__ = [
    "expected_count",
    "expected_sum",
    "count_bounds",
    "sum_bounds",
    "aggregate_distribution",
]


def expected_count(result: URelation, world_table: WorldTable) -> float:
    """E[|poss tuples present|] — exact, by linearity of expectation.

    Distinct value tuples are the counted objects (set semantics, matching
    ``poss``); each contributes its confidence.
    """
    engine = confidence_engine(world_table)
    groups = _group_descriptors(result)
    return sum(engine.confidence(descriptors) for descriptors in groups.values())


def expected_sum(
    result: URelation, attribute: str, world_table: WorldTable
) -> float:
    """E[sum of ``attribute`` over the answer] — exact, by linearity."""
    index = list(result.value_names).index(attribute)
    engine = confidence_engine(world_table)
    groups = _group_descriptors(result)
    total = 0.0
    for values, descriptors in groups.items():
        value = values[index]
        if value is None:
            continue
        total += value * engine.confidence(descriptors)
    return total


#: Exact bounds enumerate assignments of the touched variables; beyond this
#: many combinations the cheaper independence bounds are used instead.
#: Shared with the confidence engine's auto method selection.
EXACT_BOUND_LIMIT = EXACT_SPACE_LIMIT


def count_bounds(result: URelation, world_table: WorldTable) -> Tuple[int, int]:
    """(min, max) number of distinct answer tuples over all worlds.

    Exact (by enumeration over the variables the result touches) whenever
    the touched assignment space is at most :data:`EXACT_BOUND_LIMIT`;
    otherwise falls back to the independence bounds (min counts certain
    tuples, max counts possible ones), which over-approximate the range
    when mutually exclusive alternatives are present.
    """
    exact = _exact_extrema(result, world_table, lambda values: 1)
    if exact is not None:
        return int(exact[0]), int(exact[1])
    engine = confidence_engine(world_table)
    groups = _group_descriptors(result)
    minimum = 0
    maximum = 0
    for descriptors in groups.values():
        confidence = engine.confidence(descriptors)
        if confidence > 1.0 - 1e-12:
            minimum += 1
        if confidence > 0.0:
            maximum += 1
    return minimum, maximum


def sum_bounds(
    result: URelation, attribute: str, world_table: WorldTable
) -> Tuple[float, float]:
    """(min, max) possible SUM of ``attribute`` over all worlds.

    Exact by touched-variable enumeration when feasible (see
    :func:`count_bounds`); the fallback is exact for non-negative values
    with independent tuple presence and an over-approximation otherwise.
    """
    index = list(result.value_names).index(attribute)

    def weigh(values):
        value = values[index]
        return value if value is not None else 0

    exact = _exact_extrema(result, world_table, weigh)
    if exact is not None:
        return exact
    engine = confidence_engine(world_table)
    groups = _group_descriptors(result)
    minimum = 0.0
    maximum = 0.0
    for values, descriptors in groups.items():
        value = values[index]
        if value is None:
            continue
        confidence = engine.confidence(descriptors)
        certain = confidence > 1.0 - 1e-12
        possible = confidence > 0.0
        if value >= 0:
            if certain:
                minimum += value
            if possible:
                maximum += value
        else:
            if possible:
                minimum += value
            if certain:
                maximum += value
    return minimum, maximum


def _exact_extrema(
    result: URelation,
    world_table: WorldTable,
    weight: Callable[[Tuple[Any, ...]], float],
) -> Optional[Tuple[float, float]]:
    """Exact (min, max) of ``sum(weight(t))`` over distinct present tuples,
    by enumerating assignments of the touched variables; ``None`` when the
    assignment space exceeds :data:`EXACT_BOUND_LIMIT`."""
    touched = sorted(
        {var for descriptor, _t, _v in result for var in descriptor.variables()}
    )
    if assignment_space_size(touched, world_table, EXACT_BOUND_LIMIT) is None:
        return None
    triples = [(d, v) for d, _t, v in result]
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    for combo in itertools.product(*(world_table.domain(v) for v in touched)):
        assignment = dict(zip(touched, combo))
        assignment["_t"] = 0
        present = {
            values
            for descriptor, values in triples
            if descriptor.extended_by(assignment)
        }
        total = sum(weight(values) for values in present)
        minimum = total if minimum is None else min(minimum, total)
        maximum = total if maximum is None else max(maximum, total)
    if minimum is None:
        return (0.0, 0.0)
    return (minimum, maximum)


def aggregate_distribution(
    result: URelation,
    world_table: WorldTable,
    aggregate: Callable[[List[Tuple[Any, ...]]], Any],
    samples: int = 1000,
    seed: int = 0,
) -> Dict[Any, float]:
    """Monte-Carlo distribution of an arbitrary aggregate over worlds.

    ``aggregate`` receives the list of *distinct* value tuples present in a
    sampled world and returns the aggregate value; the result maps
    aggregate values to estimated probabilities.  Only the variables the
    result actually touches are sampled; each variable's whole sample
    column is drawn in one call against domain/cumulative-weight vectors
    fetched once from the engine's caches.
    """
    touched = sorted(
        {var for descriptor, _t, _v in result for var in descriptor.variables()}
    )
    triples = [(d, v) for d, _t, v in result]
    engine = confidence_engine(world_table)
    rng = random.Random(seed)
    columns = [
        rng.choices(engine._domain(var), cum_weights=engine._cum_vector(var), k=samples)
        for var in touched
    ]
    histogram: Dict[Any, int] = {}
    for row in range(samples):
        assignment = {"_t": 0}
        for var, column in zip(touched, columns):
            assignment[var] = column[row]
        present = {
            values
            for descriptor, values in triples
            if descriptor.extended_by(assignment)
        }
        value = aggregate(sorted(present, key=repr))
        histogram[value] = histogram.get(value, 0) + 1
    return {value: count / samples for value, count in histogram.items()}


def _group_descriptors(result: URelation) -> Dict[Tuple[Any, ...], List[Descriptor]]:
    groups: Dict[Tuple[Any, ...], List[Descriptor]] = {}
    for descriptor, _tids, values in result:
        groups.setdefault(values, []).append(descriptor)
    return groups
