"""Normalization of ws-descriptors (Algorithm 1, Section 4).

A U-relational database is *normalized* when every ws-descriptor has size
one.  Algorithm 1 achieves this by:

1. building the co-occurrence graph over variables (two variables are
   connected when they appear together in some ws-descriptor),
2. computing its connected components,
3. replacing each component ``G_i = {c_1..c_m}`` by a single fresh variable
   ``g_i`` whose domain is the product of the member domains, and
4. expanding each tuple whose descriptor fixes only part of its component:
   one output tuple per completion of the unfixed variables (the paper's
   inner loop over ``W``), with the combined assignment injectively encoded
   as the new domain value (we use the tuple of member values, ordered by
   variable name — an injective ``f``).

Theorem 4.2: the result is a normalized, reduced U-relational database
representing the same world-set.  The normalized form corresponds exactly
to a world-set decomposition (Section 5) and is what the certain-answer
computation of Lemma 4.3 operates on.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from ..relational.relation import Relation
from ..relational.schema import Schema
from .descriptor import TOP_VARIABLE, Descriptor, descriptor_columns, encode_descriptor
from .udatabase import UDatabase
from .urelation import URelation
from .worldtable import WorldTable

__all__ = [
    "normalize_udatabase",
    "normalize_urelations",
    "variable_components",
    "component_name",
    "is_normalized",
]


def variable_components(
    urelations: Iterable[URelation], world_table: WorldTable
) -> List[FrozenSet[str]]:
    """Connected components of the variable co-occurrence graph.

    Variables never co-occurring with others form singleton components; all
    world-table variables are covered so domains stay representable.
    """
    parent: Dict[str, str] = {}

    def find(x: str) -> str:
        while parent.setdefault(x, x) != x:
            parent[x] = parent[parent[x]]  # path halving
            x = parent[x]
        return x

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    for var in world_table.variables():
        find(var)
    for urel in urelations:
        for descriptor, _tids, _values in urel:
            variables = descriptor.variables()
            for a, b in zip(variables, variables[1:]):
                union(a, b)
    groups: Dict[str, Set[str]] = {}
    for var in list(parent):
        groups.setdefault(find(var), set()).add(var)
    return sorted((frozenset(g) for g in groups.values()), key=lambda g: sorted(g))


def component_name(component: FrozenSet[str]) -> str:
    """Deterministic name of the fused variable for a component."""
    members = sorted(component)
    if len(members) == 1:
        return members[0]
    return "+".join(members)


def normalize_urelations(
    urelations: Sequence[URelation], world_table: WorldTable
) -> Tuple[List[URelation], WorldTable]:
    """Algorithm 1 applied to a list of U-relations sharing a world table."""
    components = variable_components(urelations, world_table)
    component_of: Dict[str, FrozenSet[str]] = {}
    for comp in components:
        for var in comp:
            component_of[var] = comp

    # new world table: one variable per component, domain = member products;
    # probabilities multiply across independent members (Section 7 extension)
    new_world = WorldTable()
    for comp in components:
        members = sorted(comp)
        if len(members) == 1:
            var = members[0]
            domain = world_table.domain(var)
            probs = [world_table.probability(var, v) for v in domain]
            new_world.add_variable(var, domain, probs)
            continue
        domain = list(
            itertools.product(*(world_table.domain(m) for m in members))
        )
        probs = [
            _product(
                world_table.probability(m, v) for m, v in zip(members, combo)
            )
            for combo in domain
        ]
        new_world.add_variable(component_name(comp), domain, probs)

    out: List[URelation] = []
    for urel in urelations:
        schema = Schema(
            descriptor_columns(1) + list(urel.tid_names) + list(urel.value_names)
        )
        rows = []
        for descriptor, tids, values in urel:
            if descriptor.empty:
                rows.append(
                    encode_descriptor(Descriptor(), 1) + tids + values
                )
                continue
            comp = component_of[descriptor.variables()[0]]
            members = sorted(comp)
            if len(members) == 1:
                var = members[0]
                rows.append(
                    encode_descriptor(Descriptor({var: descriptor[var]}), 1)
                    + tids
                    + values
                )
                continue
            fixed = {v: descriptor[v] for v in descriptor.variables()}
            free = [m for m in members if m not in fixed]
            for combo in itertools.product(*(world_table.domain(m) for m in free)):
                assignment = dict(fixed)
                assignment.update(zip(free, combo))
                value = tuple(assignment[m] for m in members)
                rows.append(
                    encode_descriptor(
                        Descriptor({component_name(comp): value}), 1
                    )
                    + tids
                    + values
                )
        out.append(URelation(Relation(schema, rows), 1, urel.tid_names, urel.value_names))
    return out, new_world


def normalize_udatabase(udb: UDatabase) -> UDatabase:
    """Normalize every U-relation of a database (shared component analysis)."""
    all_parts: List[URelation] = []
    layout: List[Tuple[str, int]] = []
    for name in udb.relation_names():
        parts = udb.partitions(name)
        layout.append((name, len(parts)))
        all_parts.extend(parts)
    normalized, new_world = normalize_urelations(all_parts, udb.world_table)
    out = UDatabase(new_world)
    cursor = 0
    for name, count in layout:
        schema = udb.logical_schema(name)
        out.add_relation(name, schema.attributes, normalized[cursor : cursor + count])
        cursor += count
    return out


def _product(values: Iterable[float]) -> float:
    out = 1.0
    for v in values:
        out *= v
    return out


def is_normalized(urelations: Iterable[URelation]) -> bool:
    """True when every ws-descriptor has size at most one."""
    for urel in urelations:
        for descriptor, _tids, _values in urel:
            if len(descriptor) > 1:
                return False
    return True
