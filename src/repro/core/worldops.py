"""World-creation primitives (the conclusion's "new language constructs").

The paper closes with: "Following our recent investigation on
uncertainty-aware language constructs beyond relational algebra [5], we
identified common physical operators needed to implement many primitives
for the creation and grouping of worlds."  The two primitives MayBMS
eventually shipped are implemented here on top of U-relations:

* :func:`repair_key` — the *repair-key* construct: given a certain relation
  and a (possibly non-)key, create one world per way of choosing exactly
  one tuple from every key group — the canonical way to turn a dirty
  relation into an uncertain one (every world is a key repair).  An
  optional weight attribute induces tuple probabilities (normalized per
  group), giving a probabilistic U-relational database directly.
* :func:`pick_tuples` — independently keep or drop each tuple (optionally
  with a per-tuple probability), the "maybe" construct.

Both return tuple-level U-relations plus the world-table variables they
introduce; they compose with everything else because the output is just
another U-relation.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..relational.relation import Relation
from .descriptor import Descriptor
from .udatabase import UDatabase
from .urelation import URelation, tid_column
from .worldtable import WorldTable

__all__ = ["repair_key", "pick_tuples"]


def repair_key(
    udb: UDatabase,
    name: str,
    relation: Relation,
    key: Sequence[str],
    weight: Optional[str] = None,
) -> UDatabase:
    """Register ``relation`` in ``udb`` as the uncertain result of key repair.

    Every world chooses exactly one tuple from each group of tuples that
    agree on the ``key`` attributes.  Groups of size one stay certain.
    With ``weight`` naming a numeric attribute, the choice probabilities
    are the normalized weights (MayBMS's ``REPAIR KEY ... WEIGHT BY``);
    non-positive total weight in a group is an error.

    The variables are added to ``udb``'s world table and the relation is
    registered under ``name``; the same ``udb`` is returned for chaining.
    """
    key = list(key)
    key_positions = relation.schema.positions(key)
    weight_position = relation.schema.resolve(weight) if weight is not None else None
    value_names = [a for a in relation.schema.names if a != weight]
    value_positions = relation.schema.positions(value_names)

    groups: Dict[Tuple[Any, ...], List[Tuple[Any, ...]]] = {}
    for row in relation.rows:
        group_key = tuple(row[i] for i in key_positions)
        groups.setdefault(group_key, []).append(row)

    world = udb.world_table
    triples = []
    tid = 0
    for group_key in sorted(groups, key=repr):
        rows = groups[group_key]
        tid += 1
        if len(rows) == 1:
            triples.append(
                (Descriptor(), tid, tuple(rows[0][i] for i in value_positions))
            )
            continue
        var = _fresh_variable(world, f"repair[{name}:{_key_label(group_key)}]")
        if weight_position is not None:
            weights = [float(row[weight_position]) for row in rows]
            total = sum(weights)
            if total <= 0:
                raise ValueError(
                    f"repair_key: group {group_key!r} has non-positive total weight"
                )
            probabilities = [w / total for w in weights]
        else:
            probabilities = [1.0 / len(rows)] * len(rows)
        world.add_variable(var, list(range(1, len(rows) + 1)), probabilities)
        for index, row in enumerate(rows, start=1):
            triples.append(
                (
                    Descriptor({var: index}),
                    tid,
                    tuple(row[i] for i in value_positions),
                )
            )

    partition = URelation.build(triples, tid_column(name), value_names)
    udb.add_relation(name, value_names, [partition])
    return udb


def pick_tuples(
    udb: UDatabase,
    name: str,
    relation: Relation,
    probability: float = 0.5,
    weight: Optional[str] = None,
) -> UDatabase:
    """Register ``relation`` with every tuple independently present/absent.

    Each tuple gets its own binary variable: value 1 keeps the tuple (with
    probability ``probability``, or the tuple's ``weight`` attribute when
    given — which must lie in (0, 1]), value 2 drops it.  Tuples with
    weight exactly 1 stay certain.
    """
    weight_position = relation.schema.resolve(weight) if weight is not None else None
    value_names = [a for a in relation.schema.names if a != weight]
    value_positions = relation.schema.positions(value_names)

    world = udb.world_table
    triples = []
    for tid, row in enumerate(relation.rows, start=1):
        p = float(row[weight_position]) if weight_position is not None else probability
        if not 0.0 < p <= 1.0:
            raise ValueError(
                f"pick_tuples: probability {p} of tuple {tid} not in (0, 1]"
            )
        values = tuple(row[i] for i in value_positions)
        if p == 1.0:
            triples.append((Descriptor(), tid, values))
            continue
        var = _fresh_variable(world, f"pick[{name}:{tid}]")
        world.add_variable(var, [1, 2], [p, 1.0 - p])
        triples.append((Descriptor({var: 1}), tid, values))

    partition = URelation.build(triples, tid_column(name), value_names)
    udb.add_relation(name, value_names, [partition])
    return udb


def _fresh_variable(world: WorldTable, base: str) -> str:
    candidate = base
    suffix = 1
    while candidate in world:
        suffix += 1
        candidate = f"{base}#{suffix}"
    return candidate


def _key_label(group_key: Tuple[Any, ...]) -> str:
    return ",".join(repr(v) for v in group_key)
