"""World-set descriptors (ws-descriptors).

A ws-descriptor is a partial valuation of world-table variables — a
conjunction of assignments ``{x -> 1, y -> 2}`` describing the set of
possible worlds whose total valuations extend it (Section 2 of the paper).

Descriptors live in two forms:

* the *logical* form used by the Python API: an immutable mapping
  (:class:`Descriptor`), and
* the *relational encoding* used inside U-relations: ``2k`` columns
  ``c1, w1, ..., ck, wk`` holding (variable, value) pairs, padded by
  repeating an existing pair (Definition 2.2 allows repetition).

The empty descriptor denotes the full world-set; relationally it is padded
with the reserved trivial variable :data:`TOP_VARIABLE`, which every world
table defines with the singleton domain ``{0}`` (the paper's "new variable
with a singleton domain" shortcut).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

__all__ = [
    "Descriptor",
    "TOP_VARIABLE",
    "TOP_VALUE",
    "consistent",
    "encode_descriptor",
    "decode_descriptor",
    "descriptor_columns",
]

#: Reserved trivial variable used to pad empty descriptors.  Every
#: :class:`~repro.core.worldtable.WorldTable` defines it with domain ``{0}``.
TOP_VARIABLE = "_t"
TOP_VALUE = 0


class Descriptor:
    """An immutable partial valuation ``variable -> domain value``."""

    __slots__ = ("_items",)

    def __init__(self, assignments: Optional[Mapping[str, Any]] = None, **kwargs: Any):
        merged: Dict[str, Any] = dict(assignments or {})
        merged.update(kwargs)
        merged.pop(TOP_VARIABLE, None)  # the trivial variable carries no information
        self._items: Tuple[Tuple[str, Any], ...] = tuple(sorted(merged.items()))

    # ------------------------------------------------------------------
    # mapping-ish protocol
    # ------------------------------------------------------------------
    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[str, Any]]) -> "Descriptor":
        """Build a descriptor from (variable, value) pairs.

        Raises :class:`ValueError` if the same variable is given two
        different values (an internally inconsistent descriptor).
        """
        mapping: Dict[str, Any] = {}
        for var, val in pairs:
            if var in mapping and mapping[var] != val:
                raise ValueError(
                    f"inconsistent descriptor: {var} -> {mapping[var]} and {var} -> {val}"
                )
            mapping[var] = val
        return cls(mapping)

    @property
    def empty(self) -> bool:
        return not self._items

    def items(self) -> Tuple[Tuple[str, Any], ...]:
        return self._items

    def variables(self) -> Tuple[str, ...]:
        return tuple(var for var, _ in self._items)

    def __getitem__(self, var: str) -> Any:
        for v, val in self._items:
            if v == var:
                return val
        raise KeyError(var)

    def get(self, var: str, default: Any = None) -> Any:
        for v, val in self._items:
            if v == var:
                return val
        return default

    def __contains__(self, var: str) -> bool:
        return any(v == var for v, _ in self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[str]:
        return iter(self.variables())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Descriptor) and self._items == other._items

    def __hash__(self) -> int:
        return hash(self._items)

    def __repr__(self) -> str:
        if not self._items:
            return "{}"
        return "{" + ", ".join(f"{v}->{val}" for v, val in self._items) + "}"

    # ------------------------------------------------------------------
    # descriptor algebra
    # ------------------------------------------------------------------
    def consistent_with(self, other: "Descriptor") -> bool:
        """The ψ test: no variable maps to two different values."""
        mine = dict(self._items)
        for var, val in other._items:
            if var in mine and mine[var] != val:
                return False
        return True

    def union(self, other: "Descriptor") -> "Descriptor":
        """The combined descriptor (caller must ensure consistency)."""
        if not self.consistent_with(other):
            raise ValueError(f"inconsistent descriptors: {self!r} vs {other!r}")
        merged = dict(self._items)
        merged.update(other._items)
        return Descriptor(merged)

    def extended_by(self, valuation: Mapping[str, Any]) -> bool:
        """Whether a total valuation extends this descriptor (footnote 2)."""
        for var, val in self._items:
            if valuation.get(var) != val:
                return False
        return True


def consistent(left: Descriptor, right: Descriptor) -> bool:
    """Module-level alias for :meth:`Descriptor.consistent_with`."""
    return left.consistent_with(right)


# ----------------------------------------------------------------------
# relational encoding
# ----------------------------------------------------------------------
def descriptor_columns(width: int, start: int = 1) -> List[str]:
    """Column names of a width-``width`` relational descriptor encoding.

    ``descriptor_columns(2)`` -> ``['c1', 'w1', 'c2', 'w2']``.
    """
    names: List[str] = []
    for i in range(start, start + width):
        names.append(f"c{i}")
        names.append(f"w{i}")
    return names


def encode_descriptor(descriptor: Descriptor, width: int) -> Tuple[Any, ...]:
    """Encode a descriptor as a flat ``(c1, w1, ..., ck, wk)`` tuple.

    Descriptors shorter than ``width`` are padded by repeating the first
    pair; the empty descriptor is padded with the trivial variable.
    """
    items = list(descriptor.items())
    if len(items) > width:
        raise ValueError(
            f"descriptor {descriptor!r} has {len(items)} pairs, exceeds width {width}"
        )
    if not items:
        items = [(TOP_VARIABLE, TOP_VALUE)]
    pad = items[0]
    out: List[Any] = []
    for i in range(width):
        var, val = items[i] if i < len(items) else pad
        out.append(var)
        out.append(val)
    return tuple(out)


def decode_descriptor(encoded: Tuple[Any, ...]) -> Descriptor:
    """Decode a flat ``(c1, w1, ..., ck, wk)`` tuple back to a descriptor.

    Repeated pads and the trivial variable disappear; inconsistent encodings
    raise :class:`ValueError` (they cannot arise from valid U-relations).
    """
    pairs = []
    for i in range(0, len(encoded), 2):
        var, val = encoded[i], encoded[i + 1]
        if var == TOP_VARIABLE:
            continue
        pairs.append((var, val))
    return Descriptor.from_pairs(pairs)
