"""The world table ``W(Var, Rng)`` and its probabilistic extension.

A :class:`WorldTable` defines the finite variables and domains that
ws-descriptors refer to (Section 2).  The set of possible worlds is the set
of *total valuations* of the variables; the table represents
``prod(|dom(x)|)`` worlds in ``sum(|dom(x)|)`` tuples.

The probabilistic extension of Section 7 attaches a probability to every
``(Var, Rng)`` pair such that each variable's probabilities sum to 1;
variables are independent, so a descriptor's probability is the product of
its assignment probabilities.

The reserved trivial variable ``_t`` (domain ``{0}``) is always present; it
pads empty descriptors and never affects world counts.
"""

from __future__ import annotations

import itertools
import math
import random
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..relational.relation import Relation
from ..relational.schema import Schema
from .descriptor import TOP_VALUE, TOP_VARIABLE, Descriptor

__all__ = ["WorldTable"]


class WorldTable:
    """Variables and their finite domains (optionally with probabilities)."""

    def __init__(
        self,
        domains: Optional[Mapping[str, Sequence[Any]]] = None,
        probabilities: Optional[Mapping[str, Sequence[float]]] = None,
    ):
        self._domains: Dict[str, Tuple[Any, ...]] = {TOP_VARIABLE: (TOP_VALUE,)}
        self._probabilities: Dict[str, Tuple[float, ...]] = {TOP_VARIABLE: (1.0,)}
        #: Bumped on every mutation; lets snapshot caches (e.g. the ``w``
        #: relation in :meth:`UDatabase.to_database`) detect staleness
        #: without re-materializing the table.
        self.version = 0
        if domains:
            for var, values in domains.items():
                probs = probabilities.get(var) if probabilities else None
                self.add_variable(var, values, probs)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_variable(
        self,
        var: str,
        values: Sequence[Any],
        probabilities: Optional[Sequence[float]] = None,
    ) -> None:
        """Register a variable with its domain (and optional probabilities)."""
        values = tuple(values)
        if not values:
            raise ValueError(f"variable {var!r} must have a non-empty domain")
        if len(set(values)) != len(values):
            raise ValueError(f"variable {var!r} has duplicate domain values")
        if var in self._domains and var != TOP_VARIABLE:
            raise ValueError(f"variable {var!r} already defined")
        if probabilities is not None:
            probabilities = tuple(float(p) for p in probabilities)
            if len(probabilities) != len(values):
                raise ValueError(
                    f"variable {var!r}: {len(values)} values but "
                    f"{len(probabilities)} probabilities"
                )
            total = sum(probabilities)
            if not math.isclose(total, 1.0, rel_tol=1e-9, abs_tol=1e-9):
                raise ValueError(f"variable {var!r}: probabilities sum to {total}, not 1")
        else:
            probabilities = tuple(1.0 / len(values) for _ in values)
        self._domains[var] = values
        self._probabilities[var] = probabilities
        self.version += 1

    @classmethod
    def from_relation(cls, relation: Relation) -> "WorldTable":
        """Rebuild a world table from its relational ``W(Var, Rng[, P])`` form."""
        has_p = len(relation.schema) >= 3
        domains: Dict[str, List[Any]] = {}
        probs: Dict[str, List[float]] = {}
        for row in relation.rows:
            var, rng = row[0], row[1]
            if var == TOP_VARIABLE:
                continue
            domains.setdefault(var, []).append(rng)
            if has_p:
                probs.setdefault(var, []).append(row[2])
        return cls(domains, probs if has_p else None)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def variables(self, include_trivial: bool = False) -> List[str]:
        """All variable names (sorted; trivial variable excluded by default)."""
        names = sorted(self._domains)
        if not include_trivial:
            names = [n for n in names if n != TOP_VARIABLE]
        return names

    def domain(self, var: str) -> Tuple[Any, ...]:
        """The domain of a variable."""
        try:
            return self._domains[var]
        except KeyError:
            raise KeyError(f"unknown variable {var!r}") from None

    def __contains__(self, var: str) -> bool:
        return var in self._domains

    def __len__(self) -> int:
        """Number of (non-trivial) variables."""
        return len(self._domains) - 1

    def probability(self, var: str, value: Any) -> float:
        """P(var = value)."""
        domain = self.domain(var)
        try:
            idx = domain.index(value)
        except ValueError:
            raise KeyError(f"{value!r} not in domain of {var!r}") from None
        return self._probabilities[var][idx]

    def descriptor_probability(self, descriptor: Descriptor) -> float:
        """Probability of the world-set a descriptor denotes (independence)."""
        p = 1.0
        for var, val in descriptor.items():
            p *= self.probability(var, val)
        return p

    def world_count(self) -> int:
        """Number of represented worlds: product of domain sizes."""
        count = 1
        for var, domain in self._domains.items():
            if var != TOP_VARIABLE:
                count *= len(domain)
        return count

    def log10_world_count(self) -> float:
        """log10 of the world count (Figure 9 reports e.g. 10^857.076)."""
        total = 0.0
        for var, domain in self._domains.items():
            if var != TOP_VARIABLE:
                total += math.log10(len(domain))
        return total

    def max_domain_size(self) -> int:
        """The paper's "max. number of local worlds in a component"."""
        sizes = [
            len(domain)
            for var, domain in self._domains.items()
            if var != TOP_VARIABLE
        ]
        return max(sizes, default=1)

    # ------------------------------------------------------------------
    # valuations
    # ------------------------------------------------------------------
    def valuations(self, variables: Optional[Sequence[str]] = None) -> Iterator[Dict[str, Any]]:
        """Enumerate total valuations of the given (default: all) variables.

        The trivial variable is included in every valuation so descriptor
        extension tests need no special case.
        """
        if variables is None:
            variables = self.variables()
        variables = [v for v in variables if v != TOP_VARIABLE]
        domains = [self._domains[v] for v in variables]
        for combo in itertools.product(*domains):
            valuation = dict(zip(variables, combo))
            valuation[TOP_VARIABLE] = TOP_VALUE
            yield valuation

    def sample_valuation(self, rng: random.Random) -> Dict[str, Any]:
        """Sample one total valuation according to the probabilities."""
        valuation: Dict[str, Any] = {TOP_VARIABLE: TOP_VALUE}
        for var in self.variables():
            domain = self._domains[var]
            weights = self._probabilities[var]
            valuation[var] = rng.choices(domain, weights=weights, k=1)[0]
        return valuation

    def valuation_probability(self, valuation: Mapping[str, Any]) -> float:
        """Probability of one total valuation."""
        p = 1.0
        for var in self.variables():
            p *= self.probability(var, valuation[var])
        return p

    # ------------------------------------------------------------------
    # relational views
    # ------------------------------------------------------------------
    def relation(self, with_probabilities: bool = False) -> Relation:
        """The ``W(Var, Rng[, P])`` relation (trivial variable included)."""
        if with_probabilities:
            schema = Schema(["var", "rng", "p"])
            rows = [
                (var, value, prob)
                for var in sorted(self._domains)
                for value, prob in zip(self._domains[var], self._probabilities[var])
            ]
        else:
            schema = Schema(["var", "rng"])
            rows = [
                (var, value)
                for var in sorted(self._domains)
                for value in self._domains[var]
            ]
        return Relation(schema, rows)

    def copy(self) -> "WorldTable":
        """An independent copy (used by normalization)."""
        table = WorldTable()
        for var in self.variables():
            table.add_variable(var, self._domains[var], self._probabilities[var])
        return table

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{var}:{len(self._domains[var])}" for var in self.variables()
        )
        return f"WorldTable({parts or 'empty'}; {self.world_count()} worlds)"
