"""Certain answers on tuple-level normalized U-relations (Lemma 4.3).

A tuple ``t`` is *certain* iff it occurs in every possible world.  For a
tuple-level normalized U-relation ``U[Var, Rng, T, A]`` Lemma 4.3 states
that ``t`` is certain iff some variable ``x`` covers it completely:
``(x -> l, s, t) in U`` for *every* domain value ``l`` of ``x`` (with tuple
ids ``s`` free to vary).

The paper encodes this as one relational algebra query:

    cert(U) := pi_A( pi_Var(W) x pi_A(U)
                     - pi_{Var,A}( W x pi_A(U)  -  pi_{Var,Rng,A}(U) ) )

which this module builds verbatim over the engine's plan nodes — the
whole certain-answer pipeline (normalize, then one RA query) stays inside
relational algebra, which is the point of Section 4.

:func:`certain_answers` takes any query-result U-relation: it normalizes
the descriptors first (query answers are tuple-level already) and then runs
the Lemma 4.3 query.
"""

from __future__ import annotations

from typing import List, Optional

from ..relational.algebra import Difference, Distinct, Plan, Product, Project, Scan
from ..relational.planner import run
from ..relational.relation import Relation
from ..relational.schema import Schema
from .descriptor import TOP_VARIABLE
from .normalization import normalize_urelations
from .urelation import URelation
from .worldtable import WorldTable

__all__ = ["certain_answers", "certain_answers_plan"]


def certain_answers_plan(u_relation: Relation, world: Relation, value_names: List[str]) -> Plan:
    """The Lemma 4.3 relational algebra query as a logical plan.

    ``u_relation`` must be a tuple-level normalized U-relation in its
    relational form ``(c1, w1, t..., A...)`` and ``world`` the ``W(Var,
    Rng)`` relation.  Set semantics is made explicit with ``Distinct``
    (the paper's algebra is set-based).
    """
    u = Scan(u_relation, name="u")
    w = Scan(world, name="w")

    # pi_Var(W) x pi_A(U)
    all_pairs = Product(
        Distinct(Project(w, ["var"])),
        Distinct(Project(u, value_names)),
    )
    # W x pi_A(U) - pi_{Var,Rng,A}(U)
    w_times_a = Product(
        Distinct(Project(w, ["var", "rng"])),
        Distinct(Project(u, value_names)),
    )
    present = Distinct(Project(u, ["c1", "w1"] + value_names))
    missing = Difference(w_times_a, present)
    # pi_{Var,A}(missing)
    incomplete = Distinct(Project(missing, ["var"] + value_names))
    # pairs (x, t) where x covers t completely
    covered = Difference(all_pairs, incomplete)
    return Distinct(Project(covered, value_names))


def certain_answers(
    result: URelation, world_table: WorldTable, optimize: bool = True
) -> Relation:
    """Certain tuples of a (tuple-level) query-result U-relation.

    The result is first normalized (Algorithm 1) so that Lemma 4.3 applies;
    the trivial variable's rows are certain by construction and flow through
    the same query because the world table defines ``_t`` with a singleton
    domain.
    """
    normalized_list, new_world = normalize_urelations([result], world_table)
    (normalized,) = normalized_list
    flat = _flatten_tids(normalized)
    plan = certain_answers_plan(flat.relation, new_world.relation(), list(flat.value_names))
    answer = run(plan, optimize_first=optimize)
    return Relation(Schema(list(result.value_names)), answer.rows)


def _flatten_tids(urel: URelation) -> URelation:
    """Fuse multiple tuple-id columns into one (Lemma 4.3 uses a single T).

    Query results over joins carry one tuple id per base relation; for the
    certain-answer query only *some* tuple id is needed, so the ids are
    combined into a single composite id column.
    """
    if len(urel.tid_names) == 1:
        return urel
    d_cols = 2 * urel.d_width
    n_tids = len(urel.tid_names)
    schema = Schema(
        urel.relation.schema.names[:d_cols]
        + ["tid"]
        + list(urel.value_names)
    )
    rows = []
    for row in urel.relation.rows:
        tid = tuple(row[d_cols : d_cols + n_tids])
        rows.append(row[:d_cols] + (tid,) + row[d_cols + n_tids :])
    return URelation(Relation(schema, rows), urel.d_width, ["tid"], urel.value_names)
