"""Multi-statement transactions: stage privately, publish atomically.

A :class:`Transaction` groups several DML statements into ONE publish.
Each staged statement executes through the ordinary
:func:`~repro.core.dml.execute_dml` machinery, but against a private
*overlay* of the base :class:`~repro.core.udatabase.UDatabase`: the
overlay answers ``partitions()`` from the transaction's staged state
(falling back to — and recording — the base's current partition objects
on first touch), collects ``replace_partitions`` swaps into the staging
dict instead of the catalog, and buffers world-table variables minted by
uncertain inserts.  Nothing a staged statement does is visible to any
reader, session, or concurrent writer.

``COMMIT`` is the swap point the write path already has: under the base
database's write lock it

1. **checks for conflicts** — every staged relation's current base
   partition objects must still be *the exact objects* staging derived
   from (first-updater-wins; relations are immutable values, so object
   identity is the precise "nothing moved" test).  A concurrent writer or
   compaction that replaced them raises :class:`TransactionConflict` and
   the transaction rolls back, publishing nothing — the same refusal
   discipline as session snapshot reads;
2. adds the buffered variables to the shared world table (one version
   bump per variable, exactly as the statements would have done);
3. publishes each touched relation with ONE
   :meth:`~repro.core.udatabase.UDatabase.replace_partitions` swap —
   so the plan cache sees exactly one ``bump_relation`` per replaced
   partition relation for the whole transaction, not one per statement.

``ROLLBACK`` just drops the staging (tuple ids burnt by
``allocate_tids`` stay burnt — ids are never reused, matching every
sequence-based engine).

Reads inside a transaction: ``SELECT`` continues to run against the
committed base state (sessions and the server route queries unchanged);
only UPDATE/DELETE *matching* runs on the overlay, which is what gives
consecutive staged statements read-your-writes semantics (an UPDATE sees
the rows an earlier staged INSERT added).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, NamedTuple, Optional, Sequence, Tuple

from ..obs import counter
from .dml import DMLResult, execute_dml

__all__ = [
    "Transaction",
    "TransactionConflict",
    "TxnResult",
    "Begin",
    "Commit",
    "Rollback",
]


class Begin(NamedTuple):
    """Parsed ``BEGIN [TRANSACTION | WORK]``."""


class Commit(NamedTuple):
    """Parsed ``COMMIT [TRANSACTION | WORK]``."""


class Rollback(NamedTuple):
    """Parsed ``ROLLBACK [TRANSACTION | WORK]``."""


class TransactionConflict(RuntimeError):
    """Commit refused: a touched relation moved under the transaction.

    Raised (after rolling the transaction back) when, at commit time, a
    relation the transaction wrote no longer holds the partition objects
    staging derived from — a concurrent statement, transaction, or
    compaction replaced them.  First updater wins; the loser retries.
    """

    def __init__(self, relation: str):
        super().__init__(
            f"transaction conflict: relation {relation!r} was modified "
            "concurrently; nothing was published — retry the transaction"
        )
        self.relation = relation
        counter(
            "txn_conflicts_total", "Transactions refused at commit by conflict"
        ).inc()


class TxnResult(NamedTuple):
    """Outcome of a transaction-control statement (BEGIN/COMMIT/ROLLBACK).

    ``status`` is ``"open"``, ``"committed"``, or ``"rolled_back"``;
    ``statements`` counts the DML staged; ``relations`` names the logical
    relations a commit published (empty for BEGIN/ROLLBACK) and
    ``variables`` the world-table variables it minted.
    """

    status: str
    statements: int = 0
    relations: Tuple[str, ...] = ()
    variables: Tuple[str, ...] = ()

    def __str__(self) -> str:
        text = self.status.replace("_", " ").upper()
        if self.status != "open":
            text += f" ({self.statements} statements"
            if self.relations:
                text += f", {len(self.relations)} relations"
            text += ")"
        return text


class _StagedWorldTable:
    """The overlay's world table: reads see base + buffered variables.

    ``add_variable`` buffers instead of publishing, so an uncertain
    insert inside a transaction mints nothing visible until COMMIT;
    ``__contains__`` covers both sides so ``fresh_variable`` never hands
    out a name the transaction itself already staged.
    """

    __slots__ = ("_txn", "_base")

    def __init__(self, txn: "Transaction", base) -> None:
        self._txn = txn
        self._base = base

    def __contains__(self, var: str) -> bool:
        return var in self._txn._minted_names or var in self._base

    def add_variable(
        self,
        var: str,
        values: Sequence[Any],
        probabilities: Optional[Sequence[float]] = None,
    ) -> None:
        if var in self:
            raise ValueError(f"variable {var!r} already defined")
        self._txn._minted.append((var, tuple(values), probabilities))
        self._txn._minted_names.add(var)

    def __getattr__(self, attribute: str) -> Any:
        # staged statements only mint; anything else (version reads by
        # to_database, etc.) can safely see the base
        return getattr(self._base, attribute)


class _TxnOverlay:
    """The UDatabase facade staged statements execute against.

    Implements exactly the surface :func:`execute_dml` and the matching
    query path touch: ``logical_schema`` / ``partitions`` /
    ``replace_partitions`` / ``allocate_tids`` / ``fresh_variable`` /
    ``world_table`` / ``_write_lock`` / ``catalog_identity``.  ``_write_lock`` IS the base lock,
    so each staged statement still serializes with concurrent writers
    (``allocate_tids`` mutates the base high-water mark); it is released
    between statements.  ``auto_index`` is off — staged relations carry
    index *definitions* from their base objects, and the publish path
    re-carries from whatever is current at commit.
    """

    def __init__(self, txn: "Transaction", base) -> None:
        self._txn = txn
        self.base = base
        self.world_table = _StagedWorldTable(txn, base.world_table)
        self._write_lock = base._write_lock
        self.auto_index = False

    def catalog_identity(self) -> Dict[str, Any]:
        # the planner's cache-store guard compares this before/after
        # translation (see translate._cached_physical): staged names answer
        # from the overlay's own objects (a base swap cannot stale them),
        # unstaged names from the base — so a concurrent commit replacing
        # an unstaged relation mid-planning skips the store here too.
        # Reads self._txn._staged directly: partitions() would record a
        # conflict witness, and planning a read must not do that.
        out = {}
        for name in self.base.relation_names():
            staged = self._txn._staged.get(name)
            parts = staged if staged is not None else self.base.partitions(name)
            out[name] = tuple(id(part.relation) for part in parts)
        return out

    def logical_schema(self, name: str):
        return self.base.logical_schema(name)

    def partitions(self, name: str) -> List[Any]:
        staged = self._txn._staged.get(name)
        if staged is not None:
            return list(staged)
        parts = self.base.partitions(name)
        # remember the exact base objects this derivation starts from —
        # commit validates against them (object identity = no conflict)
        self._txn._snapshot.setdefault(name, list(parts))
        return parts

    def replace_partitions(self, name: str, partitions: Sequence[Any]) -> None:
        base_parts = self._txn._snapshot.get(name) or self.base.partitions(name)
        if len(base_parts) != len(partitions):
            raise ValueError(
                f"replacement for {name!r} must keep its {len(base_parts)} partitions"
            )
        self._txn._staged[name] = list(partitions)

    def allocate_tids(self, name: str, count: int) -> int:
        return self.base.allocate_tids(name, count)

    def fresh_variable(self, name: str, tid: Any, attribute: str) -> str:
        base = f"{name}_{tid}_{attribute}"
        var = base
        suffix = 2
        while var in self.world_table:
            var = f"{base}_{suffix}"
            suffix += 1
        return var


class Transaction:
    """One open multi-statement transaction over a base UDatabase.

    Created by ``BEGIN`` (through :func:`repro.sql.execute_sql` or a
    session); :meth:`execute` stages parsed DML statements, then exactly
    one of :meth:`commit` / :meth:`rollback` ends it.  A transaction is
    owned by one session/connection and is not itself thread-safe (the
    owning session serializes access); the commit publish is safe against
    every concurrent reader and writer via the base write lock.
    """

    def __init__(self, udb) -> None:
        self.udb = udb
        self.status = "open"
        self.statements = 0
        #: name -> staged partition list (the transaction's latest state)
        self._staged: Dict[str, List[Any]] = {}
        #: name -> the base partition objects first read (conflict witness)
        self._snapshot: Dict[str, List[Any]] = {}
        #: buffered (var, domain, probabilities) minted by uncertain inserts
        self._minted: List[Tuple[str, Tuple[Any, ...], Optional[Sequence[float]]]] = []
        self._minted_names: set = set()
        self._overlay = _TxnOverlay(self, udb)
        self._lock = threading.RLock()
        counter("txn_total", "Transactions begun").inc()

    # ------------------------------------------------------------------
    # staging
    # ------------------------------------------------------------------
    def execute(self, statement) -> DMLResult:
        """Stage one parsed DML statement against the private overlay."""
        with self._lock:
            self._require_open()
            result = execute_dml(statement, self._overlay)
            self.statements += 1
            return result

    def run(self, prepared, params: Tuple[Any, ...] = ()) -> DMLResult:
        """Stage a prepared DML statement, binding ``$n`` parameters.

        Mirrors :meth:`~repro.core.prepared.PreparedDML.run`, holding the
        prepared statement's binding lock so concurrent non-transactional
        users of the same statement text never see torn parameters.
        """
        with self._lock:
            self._require_open()
            if prepared.parameter_count == 0 and not params:
                return self.execute(prepared.statement)
            with prepared._lock:
                prepared.bind(params)
                return self.execute(prepared.statement)

    # ------------------------------------------------------------------
    # ending
    # ------------------------------------------------------------------
    def commit(self) -> TxnResult:
        """Publish every staged statement as one atomic catalog swap.

        Raises :class:`TransactionConflict` (after rolling back, nothing
        published) if any touched relation was concurrently modified.
        """
        with self._lock:
            self._require_open()
            udb = self.udb
            with udb._write_lock:
                for name, staged in self._staged.items():
                    current = udb.partitions(name)
                    witness = self._snapshot.get(name, [])
                    if len(current) != len(witness) or any(
                        c.relation is not w.relation
                        for c, w in zip(current, witness)
                    ):
                        self.status = "rolled_back"
                        raise TransactionConflict(name)
                for var, values, probabilities in self._minted:
                    udb.world_table.add_variable(var, values, probabilities)
                for name, staged in self._staged.items():
                    udb.replace_partitions(name, staged)
            self.status = "committed"
            counter("txn_committed_total", "Transactions committed").inc()
            return TxnResult(
                "committed",
                self.statements,
                tuple(sorted(self._staged)),
                tuple(var for var, _, _ in self._minted),
            )

    def rollback(self) -> TxnResult:
        """Discard everything staged; the base database never knew."""
        with self._lock:
            self._require_open()
            self.status = "rolled_back"
            counter("txn_rolled_back_total", "Transactions rolled back").inc()
            return TxnResult("rolled_back", self.statements)

    def _require_open(self) -> None:
        if self.status != "open":
            raise RuntimeError(
                f"transaction is {self.status}; begin a new one"
            )

    def __repr__(self) -> str:
        return (
            f"Transaction({self.status}, {self.statements} statements, "
            f"{sorted(self._staged)})"
        )
