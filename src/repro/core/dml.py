"""DML over U-relational databases: INSERT / UPDATE / DELETE.

The write path is log-structured, mirroring the paper's representation
invariants: U-relations are *plain relations*, and relations here are
immutable values that plans embed by object identity.  A DML statement
therefore never mutates a partition in place — it derives a **new**
:class:`~repro.relational.relation.Relation` composed of the old one's
immutable segments plus, per statement,

* an appended segment (INSERT, and the rewritten tuples of UPDATE), and/or
* a widened delete vector (DELETE, and the superseded tuples of UPDATE),

then swaps the partition set in the catalog
(:meth:`UDatabase.replace_partitions`).  In-flight plans and pinned
session snapshots keep reading the old relation objects untouched;
``SnapshotChanged`` semantics carry over unchanged because every swap
moves ``catalog_version`` through the same ``bump_relation`` epochs index
DDL already uses — which also evicts exactly the cached plans that
scanned the replaced partitions.

Uncertain inserts follow Section 2's "new variable with a fresh domain"
construction: a value cell listing k alternatives mints one fresh
world-table variable with domain ``0..k-1`` and expands, inside each
vertical partition covering the attribute, into k tuples whose
ws-descriptors assign the variable — so the insert adds ``k`` local
worlds multiplying the world count, at ``k`` representation tuples.

UPDATE/DELETE match tuples under *possible-worlds* semantics: a tuple id
is affected when its WHERE condition holds in at least one world (the
matching runs as an ordinary translated query, so it is planned, cached,
and indexed like any read).  UPDATE rewrites every alternative of an
affected tuple in the partitions covering the SET columns, keeping
descriptors and tuple ids; DELETE removes the tuple from every partition
(all its alternatives, in all worlds).
"""

from __future__ import annotations

import functools
from typing import Any, Dict, List, NamedTuple, Optional, Sequence, Tuple

from ..obs import counter as _counter
from ..relational.expressions import Expression, Param
from ..relational.index import carry_index_defs, carry_indexes_appended
from .descriptor import Descriptor, encode_descriptor
from .query import Rel, USelect
from .urelation import URelation, tid_column

__all__ = [
    "UncertainValue",
    "DMLResult",
    "Insert",
    "Update",
    "Delete",
    "insert_rows",
    "copy_rows",
    "update_where",
    "delete_where",
    "execute_dml",
    "collect_dml_params",
]


class UncertainValue:
    """A value cell listing mutually exclusive alternatives.

    ``INSERT INTO r VALUES (1, {'Tank','Transport'})`` parses the braced
    list into one of these; executing the insert mints a fresh world-table
    variable whose domain indexes the alternatives.
    """

    __slots__ = ("alternatives",)

    def __init__(self, alternatives: Sequence[Any]):
        alternatives = tuple(alternatives)
        if not alternatives:
            raise ValueError("an uncertain value needs at least one alternative")
        if len(set(alternatives)) != len(alternatives):
            raise ValueError(
                f"duplicate alternatives in uncertain value: {list(alternatives)}"
            )
        self.alternatives = alternatives

    def __repr__(self) -> str:
        return "{" + ", ".join(repr(a) for a in self.alternatives) + "}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, UncertainValue)
            and self.alternatives == other.alternatives
        )

    def __hash__(self) -> int:
        return hash(self.alternatives)


class Insert(NamedTuple):
    """Parsed ``INSERT INTO table VALUES (...), (...)``.

    ``rows`` holds plain Python values, :class:`Param` slots, and
    :class:`UncertainValue` alternative lists, in logical-attribute order.
    """

    table: str
    rows: Tuple[Tuple[Any, ...], ...]


class Update(NamedTuple):
    """Parsed ``UPDATE table SET col = cell, ... [WHERE condition]``."""

    table: str
    assignments: Tuple[Tuple[str, Any], ...]
    condition: Optional[Expression] = None


class Delete(NamedTuple):
    """Parsed ``DELETE FROM table [WHERE condition]``."""

    table: str
    condition: Optional[Expression] = None


class DMLResult(NamedTuple):
    """Outcome of one DML statement.

    ``count`` is the number of *logical tuples* inserted / updated /
    deleted; ``variables`` names the world-table variables the statement
    minted (uncertain inserts only).
    """

    statement: str
    count: int
    variables: Tuple[str, ...] = ()

    def __str__(self) -> str:
        text = f"{self.statement.upper()} {self.count}"
        if self.variables:
            text += f" (+{len(self.variables)} variables)"
        return text


def _resolve(value: Any) -> Any:
    """Resolve a parser-produced value cell: ``$n`` slots read their store."""
    if isinstance(value, Param):
        return value.value
    return value


def _counted(fn):
    """Meter a DML funnel function from its :class:`DMLResult`.

    Every write — SQL DML, prepared DML, and the programmatic
    ``udb.insert`` — exits through one of the three decorated funnels, so
    ``dml_statements_total{op}`` / ``dml_rows_total{op}`` count all of
    them exactly once.
    """

    @functools.wraps(fn)
    def wrapper(*args: Any, **kwargs: Any) -> DMLResult:
        result = fn(*args, **kwargs)
        _counter("dml_statements_total", "DML statements executed by op").inc(
            op=result.statement
        )
        if result.count:
            _counter("dml_rows_total", "Logical tuples written by op").inc(
                result.count, op=result.statement
            )
        if result.variables:
            _counter(
                "dml_variables_minted_total",
                "World-table variables minted by uncertain inserts",
            ).inc(len(result.variables))
        return result

    return wrapper


def execute_dml(statement, udb) -> DMLResult:
    """Dispatch a parsed DML statement record to its executor.

    Holds the database's write lock across the whole statement: the write
    path is read-derive-swap over the partition lists, and two concurrent
    writers interleaving would lose one's appends.  Readers never wait —
    they execute against the immutable relation objects a plan embedded.
    """
    with udb._write_lock:
        if isinstance(statement, Insert):
            return insert_rows(udb, statement.table, statement.rows)
        if isinstance(statement, Update):
            return update_where(
                udb, statement.table, statement.assignments, statement.condition
            )
        if isinstance(statement, Delete):
            return delete_where(udb, statement.table, statement.condition)
    raise TypeError(f"not a DML statement: {type(statement).__name__}")


def collect_dml_params(statement) -> List[Param]:
    """Every ``$n`` slot of a DML statement, VALUES/SET cells included."""
    from ..relational.expressions import iter_subexpressions

    params: List[Param] = []

    def walk_expression(expression) -> None:
        if isinstance(expression, Param):
            params.append(expression)
            return
        for child in iter_subexpressions(expression):
            walk_expression(child)

    if isinstance(statement, Insert):
        for row in statement.rows:
            params.extend(cell for cell in row if isinstance(cell, Param))
    elif isinstance(statement, Update):
        params.extend(
            value for _, value in statement.assignments if isinstance(value, Param)
        )
        if statement.condition is not None:
            walk_expression(statement.condition)
    elif isinstance(statement, Delete):
        if statement.condition is not None:
            walk_expression(statement.condition)
    else:
        raise TypeError(f"not a DML statement: {type(statement).__name__}")
    return params


@_counted
def insert_rows(udb, name: str, value_rows: Sequence[Sequence[Any]]) -> DMLResult:
    """Insert logical tuples (possibly with uncertain cells) into ``name``.

    Each row must match the logical schema's arity.  Cells may be plain
    values, bound ``$n`` :class:`Param` slots, or :class:`UncertainValue`
    alternative lists.  Every vertical partition receives the sub-row for
    its value columns under one fresh shared tuple id, so inserted tuples
    are complete in every world that picks an alternative.

    A multi-row ``VALUES`` list is one batch: per partition the whole
    statement appends ONE segment and the publish is one
    ``replace_partitions`` swap — exactly one ``bump_relation`` per
    touched partition relation, however many rows the statement carries.
    """
    return _stage_insert(udb, name, value_rows, "insert")


@_counted
def copy_rows(udb, name: str, rows) -> DMLResult:
    """Bulk-ingest an iterable of logical tuples as one batch (``COPY``).

    The streaming sibling of a multi-row INSERT: ``rows`` (any iterable,
    materialized here) lands as one appended segment per partition and
    one catalog publish, metered under ``op="copy"``.  Rows follow INSERT
    cell rules, uncertain alternative lists included.
    """
    with udb._write_lock:
        return _stage_insert(udb, name, list(rows), "copy")


def _stage_insert(
    udb, name: str, value_rows: Sequence[Sequence[Any]], op: str
) -> DMLResult:
    """The shared INSERT/COPY body: stage one segment per partition, swap once."""
    schema = udb.logical_schema(name)
    parts = udb.partitions(name)
    if not value_rows:
        return DMLResult(op, 0)
    width = len(schema.attributes)
    tid = udb.allocate_tids(name, len(value_rows))
    minted: List[Tuple[str, UncertainValue]] = []
    appends: List[List[Tuple[Any, ...]]] = [[] for _ in parts]
    for row in value_rows:
        row = tuple(row)
        if len(row) != width:
            raise ValueError(
                f"INSERT into {name!r} expects {width} values "
                f"({', '.join(schema.attributes)}), got {len(row)}"
            )
        cells: Dict[str, Any] = {}
        variables: Dict[str, str] = {}
        for attr, value in zip(schema.attributes, row):
            value = _resolve(value)
            if isinstance(value, UncertainValue):
                var = udb.fresh_variable(name, tid, attr)
                minted.append((var, value))
                variables[attr] = var
            cells[attr] = value
        for slot, part in enumerate(parts):
            uncertain = [a for a in part.value_names if a in variables]
            if len(uncertain) > part.d_width:
                raise ValueError(
                    f"partition {name}[{', '.join(part.value_names)}] has "
                    f"descriptor width {part.d_width}, cannot hold "
                    f"{len(uncertain)} uncertain values per tuple"
                )
            combos: List[Dict[str, int]] = [{}]
            for attr in uncertain:
                alternatives = cells[attr].alternatives
                combos = [
                    dict(combo, **{attr: i})
                    for combo in combos
                    for i in range(len(alternatives))
                ]
            for combo in combos:
                descriptor = Descriptor(
                    {variables[attr]: i for attr, i in combo.items()}
                )
                values = tuple(
                    cells[attr].alternatives[combo[attr]]
                    if attr in combo
                    else cells[attr]
                    for attr in part.value_names
                )
                appends[slot].append(
                    encode_descriptor(descriptor, part.d_width) + (tid,) + values
                )
        tid += 1
    new_parts = []
    for part, rows in zip(parts, appends):
        relation = part.relation.with_appended(rows)
        carry_indexes_appended(part.relation, relation, len(rows))
        new_parts.append(
            URelation(relation, part.d_width, part.tid_names, part.value_names)
        )
    # minting bumps the world table's version by exactly one per variable
    for var, value in minted:
        udb.world_table.add_variable(var, tuple(range(len(value.alternatives))))
    udb.replace_partitions(name, new_parts)
    return DMLResult(op, len(value_rows), tuple(var for var, _ in minted))


def _matching_tids(udb, name: str, condition: Optional[Expression]) -> set:
    """Tuple ids whose condition possibly holds (None matches everything)."""
    if condition is None:
        tids = set()
        tid_name = tid_column(name)
        for part in udb.partitions(name):
            position = part.relation.schema.resolve(tid_name)
            tids.update(row[position] for row in part.relation.rows)
        return tids
    from .translate import execute_query

    result = execute_query(USelect(Rel(name), condition), udb)
    position = result.relation.schema.resolve(result.tid_names[0])
    return {row[position] for row in result.relation.rows}


@_counted
def update_where(
    udb,
    name: str,
    assignments: Sequence[Tuple[str, Any]],
    condition: Optional[Expression] = None,
) -> DMLResult:
    """``UPDATE name SET attr = value, ... [WHERE condition]``.

    Affected tuples (possible-worlds match) are rewritten in every
    partition covering a SET column: the old alternatives are marked in
    the delete vector and updated copies — same descriptors, same tuple
    ids, SET columns overwritten in *all* alternatives — land in a fresh
    appended segment.  Partitions not covering any SET column are
    untouched (their relation objects, segments, and indexes survive).
    """
    schema = udb.logical_schema(name)
    updates: Dict[str, Any] = {}
    for attr, value in assignments:
        if attr not in schema.attributes:
            raise ValueError(
                f"UPDATE {name}: unknown column {attr!r} "
                f"(have {', '.join(schema.attributes)})"
            )
        value = _resolve(value)
        if isinstance(value, UncertainValue):
            raise ValueError(
                "uncertain alternative lists are only supported in INSERT"
            )
        updates[attr] = value
    tids = _matching_tids(udb, name, condition)
    if not tids:
        return DMLResult("update", 0)
    new_parts = []
    changed = False
    for part in udb.partitions(name):
        touched = [a for a in part.value_names if a in updates]
        if not touched:
            new_parts.append(part)
            continue
        relation = part.relation
        tid_position = relation.schema.resolve(tid_column(name))
        positions = [
            i for i, row in enumerate(relation.rows) if row[tid_position] in tids
        ]
        if not positions:
            new_parts.append(part)
            continue
        value_base = 2 * part.d_width + len(part.tid_names)
        rewritten = []
        for i in positions:
            row = list(relation.rows[i])
            for offset, attr in enumerate(part.value_names):
                if attr in updates:
                    row[value_base + offset] = updates[attr]
            rewritten.append(tuple(row))
        derived = relation.with_deleted(positions).with_appended(rewritten)
        carry_index_defs(relation, derived)
        new_parts.append(
            URelation(derived, part.d_width, part.tid_names, part.value_names)
        )
        changed = True
    if changed:
        udb.replace_partitions(name, new_parts)
    return DMLResult("update", len(tids))


@_counted
def delete_where(
    udb, name: str, condition: Optional[Expression] = None
) -> DMLResult:
    """``DELETE FROM name [WHERE condition]``.

    Affected tuples (possible-worlds match) are removed from every
    partition by widening the delete vectors — segments are shared
    untouched, so persistence rewrites no segment file, only the vectors.
    """
    tids = _matching_tids(udb, name, condition)
    if not tids:
        return DMLResult("delete", 0)
    new_parts = []
    for part in udb.partitions(name):
        relation = part.relation
        tid_position = relation.schema.resolve(tid_column(name))
        positions = [
            i for i, row in enumerate(relation.rows) if row[tid_position] in tids
        ]
        derived = relation.with_deleted(positions)
        if derived is relation:
            new_parts.append(part)
            continue
        carry_index_defs(relation, derived)
        new_parts.append(
            URelation(derived, part.d_width, part.tid_names, part.value_names)
        )
    udb.replace_partitions(name, new_parts)
    return DMLResult("delete", len(tids))
