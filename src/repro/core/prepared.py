"""Prepared queries: parse/translate/plan once, execute many times.

A :class:`PreparedQuery` wraps a logical query tree (usually parsed from
SQL with ``$1``-style parameter slots) bound to one
:class:`~repro.core.udatabase.UDatabase`.  Its first ``run`` plans the
query through :func:`~repro.core.translate.execute_query`, which inserts
the fully planned physical tree into the prepared-plan cache; every later
``run`` — with *any* parameter binding — hits that entry and goes straight
to the executor.  Parameter values live in a shared mutable store that
generated kernels and index point lookups read at evaluation time, so
rebinding never recompiles or replans anything.

This is the paper's "fast and simple" claim carried to the serving layer:
because translated U-relation queries are purely relational, the entire
per-query fixed cost (parse + translate + optimize + plan) is cacheable,
leaving a repeated query with nothing but executor work.
"""

from __future__ import annotations

import threading
from typing import Any, List, Optional, Tuple

from ..obs import request_trace
from ..relational.expressions import Expression, Param, iter_subexpressions
from .dml import DMLResult, collect_dml_params, execute_dml
from .query import UJoin, UQuery, USelect
from .translate import execute_query, explain_query

__all__ = ["PreparedQuery", "PreparedDML", "collect_params"]


def _expression_params(expression: Expression, out: List[Param]) -> None:
    if isinstance(expression, Param):
        out.append(expression)
        return
    for child in iter_subexpressions(expression):
        _expression_params(child, out)


def collect_params(query: UQuery) -> Tuple[List[Any], int]:
    """The shared parameter store and slot count of a query tree.

    Every ``$n`` slot produced by one parse shares a single store; a tree
    mixing stores (hand-built from two parses) is rejected — its slots
    could not be bound together consistently.  Returns ``([], 0)`` for a
    parameter-free query.
    """
    params: List[Param] = []

    def walk(node: UQuery) -> None:
        if isinstance(node, (USelect, UJoin)):
            _expression_params(node.predicate, params)
        for child in node.children:
            walk(child)

    walk(query)
    if not params:
        return [], 0
    stores = {id(p.store): p.store for p in params}
    if len(stores) > 1:
        raise ValueError(
            "query mixes parameter slots from different stores; "
            "all $n parameters of one prepared query must come from one parse"
        )
    store = next(iter(stores.values()))
    return store, len(store)


class PreparedQuery:
    """A logical query bound to a UDatabase, planned once, run many times."""

    def __init__(self, query: UQuery, udb, sql: Optional[str] = None):
        self.query = query
        self.udb = udb
        self.sql = sql
        self._store, self.parameter_count = collect_params(query)
        #: Serializes bind+execute for *parameterized* statements: the
        #: ``$n`` store is shared mutable state read at evaluation time, so
        #: two threads running one PreparedQuery object with different
        #: bindings must not interleave.  Sessions avoid the contention by
        #: owning their statements (each parse gets its own store);
        #: parameter-free statements skip the lock entirely.
        self._lock = threading.Lock()

    def bind(self, params: Tuple[Any, ...]) -> None:
        """Write parameter values into the shared store (``$1`` first)."""
        if len(params) != self.parameter_count:
            raise ValueError(
                f"prepared query takes {self.parameter_count} parameter(s), "
                f"got {len(params)}"
            )
        self._store[:] = params

    def run(
        self,
        *params: Any,
        optimize: bool = True,
        prefer_merge_join: bool = False,
        mode: str = "columns",
        use_indexes: bool = True,
        batch_size: Optional[int] = None,
        parallel: int = 0,
    ):
        """Bind parameters and execute.

        The first call per (mode, knobs) combination plans and caches; all
        later calls are executor-only.  Returns what
        :func:`~repro.core.translate.execute_query` returns — a plain
        relation for ``possible``/``certain`` statements, a U-relation
        otherwise.

        Thread-safe: parameterized statements hold an internal lock across
        bind+execute, so concurrent callers sharing one object serialize
        instead of reading each other's bindings (per-session statements —
        the serving layer's normal shape — never contend).
        """
        with request_trace(sql=self.sql or ""):
            if self.parameter_count == 0 and not params:
                return execute_query(
                    self.query,
                    self.udb,
                    optimize=optimize,
                    prefer_merge_join=prefer_merge_join,
                    mode=mode,
                    use_indexes=use_indexes,
                    batch_size=batch_size,
                    parallel=parallel,
                )
            with self._lock:
                self.bind(params)
                return execute_query(
                    self.query,
                    self.udb,
                    optimize=optimize,
                    prefer_merge_join=prefer_merge_join,
                    mode=mode,
                    use_indexes=use_indexes,
                    batch_size=batch_size,
                    parallel=parallel,
                )

    def explain(
        self,
        *params: Any,
        optimize: bool = True,
        prefer_merge_join: bool = False,
        mode: str = "columns",
        use_indexes: bool = True,
        analyze: bool = False,
    ) -> str:
        """EXPLAIN the prepared plan (``(cached)``-marked after first use).

        Parameters are optional for a plain EXPLAIN — the plan does not
        depend on their values — but required when ``analyze=True``
        executes it.
        """
        if params or analyze:
            self.bind(params)
        return explain_query(
            self.query,
            self.udb,
            optimize=optimize,
            prefer_merge_join=prefer_merge_join,
            mode=mode,
            use_indexes=use_indexes,
            analyze=analyze,
        )

    def __repr__(self) -> str:
        label = self.sql if self.sql is not None else type(self.query).__name__
        return f"PreparedQuery({label!r}, params={self.parameter_count})"


class PreparedDML:
    """A parsed DML statement bound to a UDatabase, run many times.

    The symmetric write-side sibling of :class:`PreparedQuery`: parsing
    happens once, ``$n`` slots (in VALUES cells, SET values, and WHERE
    conditions) share one binding store, and repeated ``run`` calls with
    fresh bindings reuse the parse.  The WHERE condition of an UPDATE or
    DELETE executes as an ordinary translated query, so *its* physical
    plan lands in the prepared-plan cache keyed by the shared ``Param``
    objects — repeated parameterized DML is planner-free too.
    """

    def __init__(self, statement, udb, sql: Optional[str] = None):
        self.statement = statement
        self.udb = udb
        self.sql = sql
        params = collect_dml_params(statement)
        if params:
            stores = {id(p.store): p.store for p in params}
            if len(stores) > 1:
                raise ValueError(
                    "statement mixes parameter slots from different stores; "
                    "all $n parameters of one prepared statement must come "
                    "from one parse"
                )
            self._store = next(iter(stores.values()))
        else:
            self._store = []
        self.parameter_count = len(self._store)
        self._lock = threading.Lock()

    def bind(self, params: Tuple[Any, ...]) -> None:
        """Write parameter values into the shared store (``$1`` first)."""
        if len(params) != self.parameter_count:
            raise ValueError(
                f"prepared statement takes {self.parameter_count} parameter(s), "
                f"got {len(params)}"
            )
        self._store[:] = params

    def run(self, *params: Any, **_ignored_knobs: Any) -> DMLResult:
        """Bind parameters and apply the statement to the database.

        Execution knobs (``mode``/``use_indexes``/...) are accepted for
        interface parity with :class:`PreparedQuery` and ignored — the
        write path's own work is not executor-shaped; only its WHERE
        matching runs through the executor, under default knobs.
        """
        with request_trace(sql=self.sql or "", cost_class="dml"):
            if self.parameter_count == 0 and not params:
                return execute_dml(self.statement, self.udb)
            with self._lock:
                self.bind(params)
                return execute_dml(self.statement, self.udb)

    def __repr__(self) -> str:
        label = self.sql if self.sql is not None else type(self.statement).__name__
        return f"PreparedDML({label!r}, params={self.parameter_count})"
