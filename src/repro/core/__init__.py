"""``repro.core`` — U-relations, the paper's primary contribution.

The package implements:

* :class:`WorldTable` / :class:`Descriptor` — variables, domains and
  ws-descriptors (Section 2),
* :class:`URelation` / :class:`UDatabase` — vertically partitioned
  uncertain relations and whole databases, with possible-world semantics,
* the logical query algebra (:class:`Rel`, :class:`USelect`,
  :class:`UProject`, :class:`UJoin`, :class:`UUnion`, :class:`UMerge`,
  :class:`Poss`, :class:`Certain`, :class:`Conf`) and the Figure 4
  translation to plain relational algebra (:func:`translate`,
  :func:`execute_query`),
* reduction (Prop. 3.3), normalization (Algorithm 1), certain answers
  (Lemma 4.3), and probabilistic confidence computation (Section 7).

Quickstart::

    from repro.core import *
    from repro.relational import col, lit

    w = WorldTable({"x": [1, 2]})
    u_type = URelation.build(
        [(Descriptor(x=1), "d", ("Tank",)), (Descriptor(x=2), "d", ("Transport",))],
        tid_name="tid_r", value_names=["type"])
    udb = UDatabase(w)
    udb.add_relation("r", ["type"], [u_type])
    answer = execute_query(Poss(USelect(Rel("r"), col("type").eq(lit("Tank")))), udb)
"""

from .aggregates import (
    aggregate_distribution,
    count_bounds,
    expected_count,
    expected_sum,
    sum_bounds,
)
from .certain import certain_answers, certain_answers_plan
from .descriptor import (
    TOP_VARIABLE,
    Descriptor,
    decode_descriptor,
    descriptor_columns,
    encode_descriptor,
)
from .equivalences import (
    apply_merge_rules,
    rule2_commute,
    rule3_reassociate,
    rule4_selection_into_merge,
    rule5_join_into_merge,
    rule6_projection_into_merge,
    translate_early,
    translate_late,
)
from .persist import load_udatabase, save_udatabase
from .normalization import (
    is_normalized,
    normalize_udatabase,
    normalize_urelations,
    variable_components,
)
from .probability import (
    ConfidenceAnswer,
    ConfidenceEngine,
    approx_confidence,
    assignment_space_size,
    confidence_engine,
    confidence_relation,
    exact_confidence,
    monte_carlo_confidence,
    tuple_confidences,
)
from .query import (
    Certain,
    Conf,
    Poss,
    Rel,
    UJoin,
    UMerge,
    UProject,
    UQuery,
    USelect,
    UUnion,
    evaluate_in_world,
)
from .reduction import (
    is_reduced,
    reduce_partitions,
    reduce_partitions_relational,
    reduce_udatabase,
    reduction_plan,
)
from .prepared import PreparedQuery
from .translate import (
    Translated,
    alpha_condition,
    execute_query,
    explain_query,
    psi_condition,
    query_structure_key,
    translate,
)
from .udatabase import LogicalSchema, UDatabase
from .urelation import URelation, tid_column
from .worldops import pick_tuples, repair_key
from .worldtable import WorldTable

__all__ = [
    # representation
    "WorldTable",
    "Descriptor",
    "URelation",
    "UDatabase",
    "LogicalSchema",
    "TOP_VARIABLE",
    "tid_column",
    "descriptor_columns",
    "encode_descriptor",
    "decode_descriptor",
    # queries
    "UQuery",
    "Rel",
    "USelect",
    "UProject",
    "UJoin",
    "UUnion",
    "UMerge",
    "Poss",
    "Certain",
    "Conf",
    "evaluate_in_world",
    # translation
    "Translated",
    "translate",
    "translate_late",
    "translate_early",
    "execute_query",
    "explain_query",
    "query_structure_key",
    "PreparedQuery",
    "psi_condition",
    "alpha_condition",
    # equivalences
    "apply_merge_rules",
    "rule2_commute",
    "rule3_reassociate",
    "rule4_selection_into_merge",
    "rule5_join_into_merge",
    "rule6_projection_into_merge",
    # normalization & friends
    "normalize_udatabase",
    "normalize_urelations",
    "variable_components",
    "is_normalized",
    "reduce_udatabase",
    "reduce_partitions",
    "reduce_partitions_relational",
    "reduction_plan",
    "is_reduced",
    "certain_answers",
    "certain_answers_plan",
    "save_udatabase",
    "load_udatabase",
    # probability
    "exact_confidence",
    "approx_confidence",
    "monte_carlo_confidence",
    "tuple_confidences",
    "confidence_relation",
    "ConfidenceEngine",
    "ConfidenceAnswer",
    "confidence_engine",
    "assignment_space_size",
    # aggregation (future-work extension)
    "expected_count",
    "expected_sum",
    "count_bounds",
    "sum_bounds",
    "aggregate_distribution",
    # world-creation primitives (conclusion / MayBMS language constructs)
    "repair_key",
    "pick_tuples",
]
