"""The Figure 4 translation ``[[·]]`` — queries on U-relations.

Translates positive relational algebra with ``poss`` and ``merge`` on the
*logical* schema into plain relational algebra plans over the representation
relations (the U-relations and, for certain answers only, the world table).
The translation is size-preserving: a selection becomes a selection, a
projection a projection, a join a join (with the extra ψ condition), merge a
join (α ∧ ψ), and ``poss`` a projection — Theorem 3.5.

Conditions (Figure 4):

* ``α`` — equality of shared tuple-id columns (merge only),
* ``ψ`` — descriptor consistency: for every descriptor pair (c_i, w_i) of
  the left and (c_j, w_j) of the right,
  ``(left.c_i <> right.c_j) OR (left.w_i = right.w_j)``.

A :class:`Translated` object carries the relational plan plus the U-relation
column structure of its output, so results can be wrapped back into
:class:`~repro.core.urelation.URelation` values and fed to further queries.

Automatic merging: a :class:`~repro.core.query.Rel` leaf translates to the
merge of the *minimal* set of vertical partitions covering the attributes
the query actually uses (Example 3.1's rewriting, plus the reduced-database
optimization of Section 3 — single-partition answers need no merge at all).

Precondition (the paper's "we assume that the input database is always
reduced", made precise): the minimal-cover optimization is sound when every
partition tuple is completable in **every** world its descriptor covers —
i.e. each tuple field either is certain or takes a value for every relevant
variable assignment ("total" fields).  Both the paper's extended dbgen and
:mod:`repro.ugen` only produce such databases; for inputs that merely
satisfy the weaker some-world condition, use
:func:`repro.core.equivalences.translate_early`, which always merges all
partitions and needs no precondition.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..relational.algebra import (
    ConfCompute,
    Distinct,
    Extend,
    Join,
    Plan,
    Project,
    ProjectAs,
    Rename,
    Scan,
    Select,
    Union,
)
from ..relational.expressions import (
    Comparison,
    Expression,
    Lit,
    Or,
    col,
    columns_of,
    conjunction,
)
from ..relational.relation import Relation
from .descriptor import descriptor_columns
from .query import (
    Certain,
    Conf,
    Poss,
    Rel,
    UJoin,
    UMerge,
    UProject,
    UQuery,
    USelect,
    UUnion,
)
from .udatabase import UDatabase
from .urelation import URelation, tid_column

__all__ = [
    "Translated",
    "translate",
    "execute_query",
    "explain_query",
    "query_structure_key",
    "query_cache_key",
    "query_fingerprint",
    "psi_condition",
    "alpha_condition",
]


class Translated:
    """A translated query: a relational plan + U-relation column structure."""

    def __init__(
        self,
        plan: Plan,
        d_width: int,
        tid_names: Sequence[str],
        value_names: Sequence[str],
    ):
        self.plan = plan
        self.d_width = d_width
        self.tid_names: Tuple[str, ...] = tuple(tid_names)
        self.value_names: Tuple[str, ...] = tuple(value_names)

    def canonical_names(self) -> List[str]:
        return descriptor_columns(self.d_width) + list(self.tid_names) + list(self.value_names)

    def __repr__(self) -> str:
        return (
            f"Translated(d_width={self.d_width}, tids={list(self.tid_names)}, "
            f"values={list(self.value_names)})"
        )


# ----------------------------------------------------------------------
# the α and ψ conditions
# ----------------------------------------------------------------------
def psi_condition(
    left_width: int, right_width: int, right_offset: int
) -> Optional[Expression]:
    """The ψ consistency condition between two descriptor encodings.

    ``right_offset`` is the renumbering shift applied to the right operand's
    descriptor columns before the join (its ``c1`` became ``c{offset+1}``).
    """
    clauses: List[Expression] = []
    for i in range(1, left_width + 1):
        for j in range(right_offset + 1, right_offset + right_width + 1):
            clauses.append(
                Or(
                    Comparison("<>", col(f"c{i}"), col(f"c{j}")),
                    Comparison("=", col(f"w{i}"), col(f"w{j}")),
                )
            )
    return conjunction(clauses) if clauses else None


def alpha_condition(shared_tids: Sequence[str], right_suffix: str) -> Optional[Expression]:
    """The α condition: equality of shared (renamed-right) tuple-id columns."""
    clauses = [
        Comparison("=", col(t), col(t + right_suffix)) for t in shared_tids
    ]
    return conjunction(clauses) if clauses else None


# ----------------------------------------------------------------------
# translation
# ----------------------------------------------------------------------
def translate(query: UQuery, udb: UDatabase) -> Translated:
    """Translate a logical query (without top-level poss/certain).

    Uses the default late-materialization strategy: the needed-attribute set
    is seeded from the query's own output attributes, so relation leaves
    merge in only the partitions the query actually touches.
    """
    translator = _Translator(udb)
    needed = set(translator.attributes_of(query))
    return translator.translate(query, needed)


class _Translator:
    """Stateful translation context (attribute binding + needed-set logic)."""

    def __init__(self, udb: UDatabase, merge_all: bool = False):
        self.udb = udb
        #: When True, every Rel leaf reconstructs its relation from *all*
        #: partitions (the naive plan P1 of Figure 3); when False, only the
        #: minimal partition cover of the needed attributes is merged in.
        self.merge_all = merge_all

    # -- attribute binding --------------------------------------------
    def attributes_of(self, query: UQuery) -> Tuple[str, ...]:
        """Logical output attributes of a subquery, with aliasing applied."""
        if isinstance(query, Rel):
            schema = self.udb.logical_schema(query.name)
            return tuple(query.qualified(a) for a in schema.attributes)
        if isinstance(query, (USelect, Poss, Certain)):
            return self.attributes_of(query.children[0])
        if isinstance(query, UProject):
            child_attrs = self.attributes_of(query.child)
            return tuple(_resolve_ref(r, child_attrs) for r in query.attributes)
        if isinstance(query, UJoin):
            return self.attributes_of(query.left) + self.attributes_of(query.right)
        if isinstance(query, UUnion):
            return self.attributes_of(query.left)
        if isinstance(query, UMerge):
            left = self.attributes_of(query.left)
            right = self.attributes_of(query.right)
            return tuple(list(left) + [a for a in right if a not in set(left)])
        raise TypeError(f"unknown query node {type(query).__name__}")

    # -- main recursion -------------------------------------------------
    def translate(self, query: UQuery, needed: Optional[Set[str]]) -> Translated:
        if isinstance(query, Rel):
            return self._translate_rel(query, needed)
        if isinstance(query, USelect):
            return self._translate_select(query, needed)
        if isinstance(query, UProject):
            return self._translate_project(query)
        if isinstance(query, UJoin):
            return self._translate_join(query, needed)
        if isinstance(query, UMerge):
            return self._translate_merge(query, needed)
        if isinstance(query, UUnion):
            return self._translate_union(query, needed)
        if isinstance(query, (Poss, Certain)):
            raise ValueError(
                "poss/certain must be at the top level; use execute_query"
            )
        raise TypeError(f"unknown query node {type(query).__name__}")

    def _translate_rel(self, query: Rel, needed: Optional[Set[str]]) -> Translated:
        schema = self.udb.logical_schema(query.name)
        attrs = [query.qualified(a) for a in schema.attributes]
        if needed is None or self.merge_all:
            wanted = list(attrs)
        else:
            wanted = [a for a in attrs if _needed_matches(a, needed)]
            if not wanted:
                wanted = attrs[:1]  # keep the relation observable
        # choose the minimal partition cover (greedy set cover)
        base_wanted = {_base_name(a) for a in wanted}
        partitions = self.udb.partitions(query.name)
        chosen = _cover(partitions, base_wanted)
        translated: Optional[Translated] = None
        for part in chosen:
            unit = self._scan_partition(part, query)
            translated = unit if translated is None else self._merge(translated, unit)
        assert translated is not None
        return translated

    def _scan_partition(self, part: URelation, query: Rel) -> Translated:
        label = f"u_{query.name}_" + "_".join(part.value_names)
        plan: Plan = Scan(part.relation, name=label)
        tid_old = tid_column(query.name)
        tid_new = tid_column(query.name, query.alias)
        mapping: Dict[str, str] = {}
        if query.alias:
            if tid_new != tid_old:
                mapping[tid_old] = tid_new
            for a in part.value_names:
                mapping[a] = query.qualified(a)
        if mapping:
            plan = Rename(plan, mapping)
        values = tuple(query.qualified(a) for a in part.value_names)
        return Translated(plan, part.d_width, (tid_new,), values)

    def _translate_select(self, query: USelect, needed: Optional[Set[str]]) -> Translated:
        child_needed = None
        if needed is not None:
            child_needed = set(needed) | set(columns_of(query.predicate))
        child = self.translate(query.child, child_needed)
        predicate = _qualify_predicate(query.predicate, child.value_names)
        return Translated(
            Select(child.plan, predicate), child.d_width, child.tid_names, child.value_names
        )

    def _translate_project(self, query: UProject) -> Translated:
        child_attrs = self.attributes_of(query.child)
        resolved = [_resolve_ref(r, child_attrs) for r in query.attributes]
        child = self.translate(query.child, set(resolved))
        keep = (
            descriptor_columns(child.d_width)
            + list(child.tid_names)
            + [_resolve_ref(r, child.value_names) for r in query.attributes]
        )
        return Translated(
            Project(child.plan, keep),
            child.d_width,
            child.tid_names,
            tuple(_resolve_ref(r, child.value_names) for r in query.attributes),
        )

    def _translate_join(self, query: UJoin, needed: Optional[Set[str]]) -> Translated:
        pred_refs = set(columns_of(query.predicate))
        left_attrs = self.attributes_of(query.left)
        right_attrs = self.attributes_of(query.right)
        left_needed, right_needed = None, None
        if needed is not None:
            wanted = needed | pred_refs
            left_needed = {r for r in wanted if _matches_any(r, left_attrs)}
            right_needed = {r for r in wanted if _matches_any(r, right_attrs)}
        else:
            left_needed = None
            right_needed = None
        left = self.translate(query.left, left_needed)
        right = self.translate(query.right, right_needed)
        if set(left.tid_names) & set(right.tid_names):
            raise ValueError(
                "join operands share tuple-id columns "
                f"{sorted(set(left.tid_names) & set(right.tid_names))}; "
                "alias one side (self-joins require aliases)"
            )
        if set(left.value_names) & set(right.value_names):
            raise ValueError(
                "join operands share value attributes "
                f"{sorted(set(left.value_names) & set(right.value_names))}; "
                "alias the relations to disambiguate"
            )
        predicate = _qualify_predicate(
            query.predicate, left.value_names + right.value_names
        )
        return self._combine(left, right, alpha=None, extra=predicate)

    def _translate_merge(self, query: UMerge, needed: Optional[Set[str]]) -> Translated:
        left_needed, right_needed = None, None
        if needed is not None:
            left_attrs = self.attributes_of(query.left)
            right_attrs = self.attributes_of(query.right)
            left_needed = {r for r in needed if _matches_any(r, left_attrs)}
            right_needed = {r for r in needed if _matches_any(r, right_attrs)}
        left = self.translate(query.left, left_needed)
        right = self.translate(query.right, right_needed)
        return self._merge(left, right)

    def _merge(self, left: Translated, right: Translated) -> Translated:
        shared = [t for t in left.tid_names if t in set(right.tid_names)]
        if not shared:
            raise ValueError(
                f"merge requires shared tuple ids; got {list(left.tid_names)} "
                f"vs {list(right.tid_names)}"
            )
        return self._combine(left, right, alpha=shared, extra=None)

    def _combine(
        self,
        left: Translated,
        right: Translated,
        alpha: Optional[List[str]],
        extra: Optional[Expression],
    ) -> Translated:
        """Shared machinery of join (α empty) and merge (α on shared tids)."""
        suffix = "__r"
        offset = left.d_width
        # rename the right side's descriptor columns to continue numbering,
        # and suffix any colliding tid / value columns
        mapping: Dict[str, str] = {}
        for i in range(1, right.d_width + 1):
            mapping[f"c{i}"] = f"c{offset + i}"
            mapping[f"w{i}"] = f"w{offset + i}"
        shared_tids = alpha or []
        for t in shared_tids:
            mapping[t] = t + suffix
        shared_values = [v for v in right.value_names if v in set(left.value_names)]
        for v in shared_values:
            mapping[v] = v + suffix
        right_plan: Plan = Rename(right.plan, mapping)

        conditions: List[Expression] = []
        psi = psi_condition(left.d_width, right.d_width, offset)
        alpha_expr = alpha_condition(shared_tids, suffix)
        if alpha_expr is not None and shared_tids:
            conditions.append(alpha_expr)
        if psi is not None:
            conditions.append(psi)
        if extra is not None:
            conditions.append(extra)
        joined: Plan = Join(left.plan, right_plan, conjunction(conditions))

        d_width = left.d_width + right.d_width
        tid_names = list(left.tid_names) + [
            t for t in right.tid_names if t not in set(shared_tids)
        ]
        value_names = list(left.value_names) + [
            v for v in right.value_names if v not in set(shared_values)
        ]
        keep = descriptor_columns(d_width) + tid_names + value_names
        plan = Project(joined, keep)
        return Translated(plan, d_width, tid_names, value_names)

    def _translate_union(self, query: UUnion, needed: Optional[Set[str]]) -> Translated:
        left_attrs = self.attributes_of(query.left)
        right_attrs = self.attributes_of(query.right)
        if len(left_attrs) != len(right_attrs):
            raise ValueError(
                f"union arity mismatch: {list(left_attrs)} vs {list(right_attrs)}"
            )
        # union output uses the left names; need all columns positionally
        left = self.translate(query.left, None)
        right = self.translate(query.right, None)
        width = max(left.d_width, right.d_width)
        tids = list(left.tid_names) + [
            t for t in right.tid_names if t not in set(left.tid_names)
        ]
        left_plan = _pad_branch(left, width, tids, list(left.value_names))
        # the right branch's value columns are renamed positionally to the left's
        right_plan = _pad_branch(
            right, width, tids, list(left.value_names), rename_from=list(right.value_names)
        )
        plan = Union(left_plan, right_plan)
        return Translated(plan, width, tids, left.value_names)


# ----------------------------------------------------------------------
# union padding
# ----------------------------------------------------------------------
def _pad_branch(
    branch: Translated,
    width: int,
    tids: List[str],
    value_names: List[str],
    rename_from: Optional[List[str]] = None,
) -> Plan:
    """Bring one union branch to the common (width, tids, values) shape.

    Descriptors are pumped by duplicating the first pair; missing tuple-id
    columns are added as NULL columns (the paper's "new empty columns").
    """
    plan = branch.plan
    missing_tids = [t for t in tids if t not in set(branch.tid_names)]
    if missing_tids:
        plan = Extend(plan, [(t, Lit(None)) for t in missing_tids])
    items: List[Tuple[str, str]] = []
    for i in range(1, width + 1):
        src = i if i <= branch.d_width else 1  # pump pair 1
        items.append((f"c{src}", f"c{i}"))
        items.append((f"w{src}", f"w{i}"))
    for t in tids:
        items.append((t, t))
    sources = rename_from if rename_from is not None else value_names
    for src, dst in zip(sources, value_names):
        items.append((src, dst))
    return ProjectAs(plan, items)


# ----------------------------------------------------------------------
# normalized query keys (for the prepared-plan cache)
# ----------------------------------------------------------------------
def query_structure_key(query: UQuery) -> Tuple:
    """A hashable key identifying a logical query tree up to structure.

    Relation leaves key by (name, alias) — the owning
    :class:`~repro.core.udatabase.UDatabase` is part of the cache key, so
    names resolve identically on every lookup — and predicates use
    :func:`~repro.relational.expressions.structural_key`, under which
    ``$n`` parameter slots key by slot (not value): every binding of a
    prepared query shares one cached plan.  Raises ``TypeError`` for
    unknown node or expression shapes, which callers treat as "plan
    uncached".
    """
    from ..relational.expressions import structural_key

    if isinstance(query, Rel):
        return ("rel", query.name, query.alias)
    if isinstance(query, USelect):
        return (
            "uselect",
            query_structure_key(query.child),
            structural_key(query.predicate),
        )
    if isinstance(query, UProject):
        return ("uproject", query_structure_key(query.child), query.attributes)
    if isinstance(query, UJoin):
        return (
            "ujoin",
            query_structure_key(query.left),
            query_structure_key(query.right),
            structural_key(query.predicate),
        )
    if isinstance(query, UUnion):
        return (
            "uunion",
            query_structure_key(query.left),
            query_structure_key(query.right),
        )
    if isinstance(query, UMerge):
        return (
            "umerge",
            query_structure_key(query.left),
            query_structure_key(query.right),
        )
    if isinstance(query, Poss):
        return ("poss", query_structure_key(query.child))
    if isinstance(query, Certain):
        return ("certain", query_structure_key(query.child))
    if isinstance(query, Conf):
        return (
            "conf",
            query_structure_key(query.child),
            query.method,
            query.epsilon,
            query.delta,
            query.seed,
        )
    raise TypeError(f"no plan-cache key for {type(query).__name__}")


# ----------------------------------------------------------------------
# workload fingerprints (for the obs workload history)
# ----------------------------------------------------------------------
def _fingerprint_expression_key(expression) -> Tuple:
    """Like :func:`~repro.relational.expressions.structural_key`, but with
    literal values and ``$n`` parameter identity erased: ``x = 5``,
    ``x = 7``, and ``x = $1`` all key identically.  Raises ``TypeError``
    for unknown expression shapes (callers treat as "no fingerprint").
    """
    from ..relational.expressions import (
        And,
        Arithmetic,
        Between,
        Col,
        Comparison,
        InList,
        IsNull,
        Not,
        Or,
        Param,
    )

    e = expression
    if isinstance(e, Col):
        return ("col", e.name)
    if isinstance(e, (Lit, Param)):
        return ("?",)
    if isinstance(e, Comparison):
        return (
            "cmp",
            e.op,
            _fingerprint_expression_key(e.left),
            _fingerprint_expression_key(e.right),
        )
    if isinstance(e, Arithmetic):
        return (
            "arith",
            e.op,
            _fingerprint_expression_key(e.left),
            _fingerprint_expression_key(e.right),
        )
    if isinstance(e, And):
        return ("and",) + tuple(_fingerprint_expression_key(op) for op in e.operands)
    if isinstance(e, Or):
        return ("or",) + tuple(_fingerprint_expression_key(op) for op in e.operands)
    if isinstance(e, Not):
        return ("not", _fingerprint_expression_key(e.operand))
    if isinstance(e, IsNull):
        return ("isnull", _fingerprint_expression_key(e.operand))
    if isinstance(e, InList):
        return ("in", _fingerprint_expression_key(e.operand), "?")
    if isinstance(e, Between):
        return ("between", _fingerprint_expression_key(e.operand), "?", "?")
    raise TypeError(f"no fingerprint for {type(e).__name__}")


def _fingerprint_query_key(query: UQuery) -> Tuple:
    """The normalized structural key a fingerprint digests.

    Mirrors :func:`query_structure_key`, with predicates normalized by
    :func:`_fingerprint_expression_key` and confidence knobs
    (``epsilon``/``delta``/``seed``) treated as bindings.
    """
    if isinstance(query, Rel):
        return ("rel", query.name, query.alias)
    if isinstance(query, USelect):
        return (
            "uselect",
            _fingerprint_query_key(query.child),
            _fingerprint_expression_key(query.predicate),
        )
    if isinstance(query, UProject):
        return ("uproject", _fingerprint_query_key(query.child), query.attributes)
    if isinstance(query, UJoin):
        return (
            "ujoin",
            _fingerprint_query_key(query.left),
            _fingerprint_query_key(query.right),
            _fingerprint_expression_key(query.predicate),
        )
    if isinstance(query, (UUnion, UMerge)):
        tag = "uunion" if isinstance(query, UUnion) else "umerge"
        return (
            tag,
            _fingerprint_query_key(query.left),
            _fingerprint_query_key(query.right),
        )
    if isinstance(query, Poss):
        return ("poss", _fingerprint_query_key(query.child))
    if isinstance(query, Certain):
        return ("certain", _fingerprint_query_key(query.child))
    if isinstance(query, Conf):
        return ("conf", _fingerprint_query_key(query.child), query.method)
    raise TypeError(f"no fingerprint for {type(query).__name__}")


def key_digest(key) -> str:
    """A short stable hex digest of a (repr-stable) key tuple."""
    import hashlib

    return hashlib.blake2b(repr(key).encode(), digest_size=8).hexdigest()


def query_fingerprint(query: UQuery) -> Optional[str]:
    """The workload fingerprint of a logical query tree, or ``None``.

    Stable across literal values and ``$n`` bindings, stable across
    processes (no object identity involved), computed once per plan-cache
    entry and threaded through sessions, the worker pool, and slowlog
    entries.  ``None`` means the shape is unfingerprintable (an unknown
    node or expression subclass) — such queries simply stay out of the
    workload history.
    """
    try:
        return key_digest(_fingerprint_query_key(query))
    except TypeError:
        return None


def _indexable_shape(conjunct) -> Optional[Tuple[str, str]]:
    """``(column, op)`` when a conjunct has an index-servable shape.

    Mirrors the planner's ``_classify_conjuncts``: a column compared to a
    literal or parameter with ``= < <= > >=``, ``BETWEEN``, or ``IN``.
    """
    from ..relational.expressions import Between, Col, InList, Param

    if isinstance(conjunct, Comparison) and conjunct.op in ("=", "<", "<=", ">", ">="):
        left, right = conjunct.left, conjunct.right
        if isinstance(left, Col) and isinstance(right, (Lit, Param)):
            return (left.name, conjunct.op)
        if isinstance(right, Col) and isinstance(left, (Lit, Param)):
            flipped = {"=": "=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}
            return (right.name, flipped[conjunct.op])
    if isinstance(conjunct, Between):
        if isinstance(conjunct.operand, Col):
            return (conjunct.operand.name, "between")
    if isinstance(conjunct, InList) and isinstance(conjunct.operand, Col):
        return (conjunct.operand.name, "in")
    return None


def _scans_under(plan) -> List:
    out = []
    stack = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, Scan):
            out.append(node)
        else:
            stack.extend(node.children)
    return out


def _attribute_column(scans, reference: str) -> Optional[Tuple[str, str]]:
    """``(relation_name, base_column)`` of the scan a reference resolves on."""
    for scan in scans:
        try:
            position = scan.schema.resolve(reference)
        except Exception:
            continue
        return (scan.name, scan.relation.schema.names[position])
    return None


def _plan_predicates(plan) -> List[Tuple[str, str, str]]:
    """The ``(relation, column, op)`` shapes the planner saw in a plan.

    Walks the optimized logical plan: selection conjuncts in indexable
    shapes attribute to the representation relation (the ``u_*``
    partition) whose scan schema resolves the column — exactly the
    relations ``CREATE INDEX`` addresses — and join equi-conjuncts
    attribute each side to its input subtree.
    """
    from ..relational.algebra import SemiJoin
    from ..relational.expressions import Col, split_conjuncts

    out: List[Tuple[str, str, str]] = []
    stack = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, Select):
            scans = _scans_under(node.child)
            for conjunct in split_conjuncts(node.predicate):
                shape = _indexable_shape(conjunct)
                if shape is None:
                    continue
                owner = _attribute_column(scans, shape[0])
                if owner is not None:
                    out.append((owner[0], owner[1], shape[1]))
        elif isinstance(node, (Join, SemiJoin)):
            sides = (_scans_under(node.left), _scans_under(node.right))
            for conjunct in split_conjuncts(node.predicate):
                if (
                    isinstance(conjunct, Comparison)
                    and conjunct.op == "="
                    and isinstance(conjunct.left, Col)
                    and isinstance(conjunct.right, Col)
                ):
                    for ref in (conjunct.left.name, conjunct.right.name):
                        for scans in sides:
                            owner = _attribute_column(scans, ref)
                            if owner is not None:
                                out.append((owner[0], owner[1], "="))
                                break
        stack.extend(node.children)
    # dedupe, stable order
    return sorted(set(out))


#: Physical operator -> access-path label for the workload history.
_ACCESS_PATH_LABELS = {
    "SeqScan": "seq_scan",
    "IndexScan": "index_scan",
    "IndexNestedLoopJoin": "index_join",
    "HashJoin": "hash_join",
    "MergeJoin": "merge_join",
    "NestedLoopJoin": "nested_loop",
}


def _physical_access_paths(physical) -> Dict[str, int]:
    """Counts of index-vs-scan (and join) operators in a physical tree."""
    counts: Dict[str, int] = {}
    stack = [physical]
    while stack:
        node = stack.pop()
        label = _ACCESS_PATH_LABELS.get(type(node).__name__)
        if label is not None:
            counts[label] = counts.get(label, 0) + 1
        stack.extend(node.children)
    return counts


def _workload_profile(query: UQuery, plan, physical, key, cost_class: str):
    """The plan-time workload shape that rides a plan-cache payload.

    Computed once at plan-cache-entry creation; every later execution of
    the cached plan folds this (plus its per-run numbers) into the
    workload history with one dict merge.  ``None`` when the query has no
    fingerprint.
    """
    fingerprint = query_fingerprint(query)
    if fingerprint is None:
        return None
    scans = _scans_under(plan)
    return {
        "fingerprint": fingerprint,
        "plan_key": key_digest(key) if key is not None else None,
        "cost_class": cost_class,
        "relations": tuple(sorted({scan.name for scan in scans})),
        "predicates": tuple(_plan_predicates(plan)),
        "access_paths": _physical_access_paths(physical),
    }


def query_cache_key(
    query: UQuery,
    udb: UDatabase,
    optimize: bool = True,
    prefer_merge_join: bool = False,
    mode: str = "columns",
    use_indexes: bool = True,
    parallel: int = 0,
):
    """The prepared-plan cache key this query would plan under, or None.

    ``None`` means the query shape is uncacheable (an unknown node or
    expression subclass).  The serving layer's admission controller uses
    this to peek at a request's cached cost class *before* admitting it —
    building the key costs a tree walk, never a translation.
    """
    from ..relational.plancache import build_key

    fuse = mode == "columns"
    return build_key(
        lambda: (
            "uquery",
            id(udb),
            query_structure_key(query),
            optimize,
            prefer_merge_join,
            use_indexes,
            fuse,
            parallel,
        )
    )


def _cached_physical(
    query: UQuery,
    udb: UDatabase,
    optimize: bool,
    prefer_merge_join: bool,
    mode: str,
    use_indexes: bool,
    parallel: int = 0,
):
    """The fully planned physical tree for a logical query, via the cache.

    Returns ``((physical, wrap, profile), was_cached, key)`` where
    ``wrap`` is ``None`` for a top-level ``Poss`` (the plan's output is
    the answer relation) and otherwise the ``(d_width, tid_names,
    value_names, canonical)`` U-relation column structure needed to wrap
    the result, and ``profile`` is the plan-time workload shape
    (fingerprint, predicate columns, access paths — see
    :func:`_workload_profile`; ``None`` for unfingerprintable queries).

    A hit skips translation, optimization, and physical planning — the
    repeated-query path is executor-only.  The cache key is the normalized
    query structure, the owning database, and every knob that shapes the
    plan (``rows`` and ``blocks`` share one unfused plan; ``columns``
    caches its fused plan separately).  Invalidation is exact: any catalog
    mutation of a relation the plan scans evicts the entry (see
    :mod:`repro.relational.plancache`).  Entries record planning time
    (the eviction weight) and the plan's admission cost class.
    """
    import time

    from ..obs import span as obs_span
    from ..relational.optimizer import optimize as optimize_plan
    from ..relational.plancache import (
        cache_lookup,
        cache_store,
        cost_class_of,
        plan_relations,
    )
    from ..relational.planner import plan_physical

    fuse = mode == "columns"
    key = query_cache_key(
        query, udb, optimize, prefer_merge_join, mode, use_indexes, parallel
    )
    # captured before translation resolves any relation: the store below
    # only commits if no catalog *swap* landed in between (see cache_store).
    # Identity, not version: this planning's own lazy index builds bump the
    # version in place without making the plan stale, and must still store
    catalog_before = udb.catalog_identity()
    with obs_span("plan") as sp:
        cached = cache_lookup(key)
        if cached is not None:
            sp.set(cached=True)
            return cached, True, key
        sp.set(cached=False)
        started = time.perf_counter()
        conf: Optional[Conf] = None
        if isinstance(query, Poss):
            inner = translate(query.child, udb)
            plan: Plan = Distinct(Project(inner.plan, list(inner.value_names)))
            wrap = None
        elif isinstance(query, Conf):
            conf = query
            inner = translate(query.child, udb)
            plan = inner.plan
            wrap = None
        else:
            inner = translate(query, udb)
            plan = inner.plan
            wrap = (
                inner.d_width,
                inner.tid_names,
                inner.value_names,
                inner.canonical_names(),
            )
        deps = plan_relations(plan)
        if optimize:
            plan = optimize_plan(plan)
        if conf is not None:
            # inserted above the *optimized* child: the rewrite rules never
            # see (and could not soundly move through) a confidence
            # computation, while the child still gets the full optimizer.
            # Positions stay canonical — optimize() re-projects to the
            # original column order.
            plan = ConfCompute(
                plan,
                inner.d_width,
                len(inner.tid_names),
                list(inner.value_names),
                udb.world_table,
                conf.method,
                conf.epsilon,
                conf.delta,
                conf.seed,
            )
        physical = plan_physical(
            plan,
            prefer_merge_join=prefer_merge_join,
            use_indexes=use_indexes,
            fuse=fuse,
            parallel=parallel,
        )
        cost_class = cost_class_of(physical)
        profile = _workload_profile(query, plan, physical, key, cost_class)
        payload = (physical, wrap, profile)
        # pin the query tree (it holds any $n parameter stores) and the udb
        # (id-keyed owners must outlive their entries)
        cache_store(
            key,
            payload,
            deps,
            pins=(udb, query),
            cost_class=cost_class,
            plan_cost=time.perf_counter() - started,
            guard=lambda: udb.catalog_identity() == catalog_before,
            fingerprint=profile["fingerprint"] if profile else None,
        )
    return payload, False, key


# ----------------------------------------------------------------------
# execution entry point
# ----------------------------------------------------------------------
def execute_query(
    query: UQuery,
    udb: UDatabase,
    optimize: bool = True,
    prefer_merge_join: bool = False,
    mode: str = "columns",
    use_indexes: bool = True,
    batch_size: Optional[int] = None,
    parallel: int = 0,
):
    """Translate and run a query against a U-relational database.

    Returns a plain :class:`Relation` for top-level ``Poss``/``Certain``
    queries, a :class:`~repro.core.probability.ConfidenceAnswer` (a
    relation plus the computation summary) for ``Conf``, and a
    :class:`URelation` otherwise.  ``mode`` selects the
    executor: ``"columns"`` (columnar batches over a fused plan, the
    default), ``"blocks"`` (row-batch vectorized, the PR 1/2 baseline), or
    ``"rows"`` (legacy tuple-at-a-time); ``use_indexes=False`` disables
    access-path selection, which is the benchmarks' pre-index baseline.

    The physical plan is served from the prepared-plan cache when the same
    query structure ran before against an unchanged catalog, so repeated
    executions skip translate → optimize → plan entirely.
    """
    import time

    from ..obs import counter, current_span, current_trace
    from ..obs import workload as obs_workload
    from ..relational.physical import BATCH_SIZE, Confidence, execute
    from ..relational.plancache import cost_class_of, record_observed_rows

    if isinstance(query, Certain):
        from .certain import certain_answers

        inner = execute_query(
            query.child,
            udb,
            optimize,
            prefer_merge_join,
            mode,
            use_indexes,
            batch_size,
            parallel,
        )
        return certain_answers(inner, udb.world_table)
    (physical, wrap, profile), was_cached, key = _cached_physical(
        query, udb, optimize, prefer_merge_join, mode, use_indexes, parallel
    )
    started = time.perf_counter()
    relation = execute(
        physical, mode=mode, batch_size=BATCH_SIZE if batch_size is None else batch_size
    )
    elapsed = time.perf_counter() - started
    # feed the estimate-vs-actual loop and the trace from the accounting
    # the batch iterators already did — no re-run, no extra measurement
    record_observed_rows(key, physical.estimated_rows, physical.actual_rows)
    cost_class = cost_class_of(physical)
    counter("queries_total", "Queries executed by class and plan-cache outcome").inc(
        cls=cost_class, cached=str(was_cached).lower()
    )
    trace = current_trace()
    if trace is not None:
        trace.root.attrs.setdefault("cost_class", cost_class)
        if profile is not None:
            # threads the fingerprint through the session, the worker
            # pool (the trace is shared across it), and slowlog payloads
            trace.root.attrs.setdefault("fingerprint", profile["fingerprint"])
            trace.root.attrs.setdefault("plan_key", profile["plan_key"])
        current_span().set(operators=physical.actuals())
    obs_workload.record_execution(
        profile,
        seconds=elapsed,
        rows=len(relation),
        cached=was_cached,
        estimated=physical.estimated_rows,
        actual=physical.actual_rows,
        sql=trace.root.attrs.get("sql") if trace is not None else None,
    )
    if wrap is None:
        if isinstance(physical, Confidence) and physical.last_summary is not None:
            from .probability import ConfidenceAnswer

            return ConfidenceAnswer.adopt(relation, physical.last_summary)
        return relation
    d_width, tid_names, value_names, canonical = wrap
    # normalize output column names to the canonical U-relation layout
    if relation.schema.names != canonical:
        relation = Relation(canonical, relation.rows)
    return URelation(relation, d_width, tid_names, value_names)


def explain_query(
    query: UQuery,
    udb: UDatabase,
    optimize: bool = True,
    prefer_merge_join: bool = False,
    mode: str = "columns",
    use_indexes: bool = True,
    analyze: bool = False,
    parallel: int = 0,
    trace: bool = False,
):
    """EXPLAIN output for a logical query against a U-relational database.

    A plan served from the prepared-plan cache is marked ``(cached)`` on
    its top line; the explained plan is inserted into the cache, so
    explaining then running plans exactly once.  ``Certain`` queries show
    the plan of their relational core (the Lemma 4.3 pipeline on top is
    not a relational plan).

    ``trace=True`` (with ``analyze=True``) returns ``(text, data)`` where
    ``data`` is the structured span/operator tree from
    :func:`repro.relational.explain.explain_analyze` — the machine-readable
    sibling of the rendered text.
    """
    from ..relational.explain import explain as explain_physical
    from ..relational.explain import explain_analyze
    from ..relational.plancache import mark_cached

    if isinstance(query, Certain):
        return explain_query(
            query.child,
            udb,
            optimize,
            prefer_merge_join,
            mode,
            use_indexes,
            analyze,
            parallel,
            trace,
        )
    (physical, _wrap, _profile), was_cached, _key = _cached_physical(
        query, udb, optimize, prefer_merge_join, mode, use_indexes, parallel
    )
    if analyze and trace:
        _result, text, data = explain_analyze(physical, mode=mode, trace=True)
        return (mark_cached(text) if was_cached else text), data
    if analyze:
        _result, text = explain_analyze(physical, mode=mode)
    else:
        text = explain_physical(physical)
    return mark_cached(text) if was_cached else text


# ----------------------------------------------------------------------
# reference resolution helpers
# ----------------------------------------------------------------------
def _base_name(reference: str) -> str:
    return reference.split(".", 1)[-1]


def _resolve_ref(reference: str, available: Sequence[str]) -> str:
    """Resolve a (possibly unqualified) reference among available attributes."""
    if reference in available:
        return reference
    matches = [a for a in available if _base_name(a) == reference]
    if len(matches) == 1:
        return matches[0]
    if not matches:
        raise KeyError(f"attribute {reference!r} not found among {list(available)}")
    raise KeyError(f"attribute {reference!r} is ambiguous among {list(available)}")


def _matches_any(reference: str, attributes: Sequence[str]) -> bool:
    if reference in attributes:
        return True
    return any(_base_name(a) == reference for a in attributes)


def _needed_matches(attribute: str, needed: Set[str]) -> bool:
    if attribute in needed:
        return True
    return _base_name(attribute) in needed


def _qualify_predicate(predicate: Expression, available: Sequence[str]) -> Expression:
    """Rewrite predicate column refs to the exact available value-column names."""
    from ..relational.expressions import Col

    def rewrite(expr: Expression) -> Expression:
        if isinstance(expr, Col):
            return Col(_resolve_ref(expr.name, available))
        clone = expr.__class__.__new__(expr.__class__)
        for klass in type(expr).__mro__:
            for slot in getattr(klass, "__slots__", ()):
                value = getattr(expr, slot)
                if isinstance(value, Expression):
                    value = rewrite(value)
                elif isinstance(value, tuple) and value and isinstance(value[0], Expression):
                    value = tuple(rewrite(v) for v in value)
                object.__setattr__(clone, slot, value)
        return clone

    return rewrite(predicate)


def _cover(partitions: List[URelation], wanted: Set[str]) -> List[URelation]:
    """Greedy minimal cover of wanted attributes by vertical partitions."""
    remaining = set(wanted)
    chosen: List[URelation] = []
    pool = list(partitions)
    while remaining:
        best = max(pool, key=lambda p: len(remaining & set(p.value_names)), default=None)
        if best is None or not (remaining & set(best.value_names)):
            raise ValueError(f"attributes {sorted(remaining)} not covered by any partition")
        chosen.append(best)
        remaining -= set(best.value_names)
        pool.remove(best)
    if not chosen:
        chosen = [partitions[0]]
    return chosen
