"""Reduction of U-relational databases (Proposition 3.3).

A U-relational database is *reduced* when every tuple of every U-relation
can be completed to an actual tuple in at least one world — i.e. for each
partition tuple there exist partner tuples in the other partitions of the
same relation, with the same tuple id and pairwise-consistent descriptors,
covering all attributes.

The paper reduces by a relational program of semijoins, with the α (shared
tuple id) and ψ (descriptor consistency) conditions as semijoin conditions.
We implement exactly that: each partition is filtered by a semijoin against
every other partition of the same relation.  One pass is what Prop. 3.3
prescribes; since removing tuples can invalidate earlier survivors, the
function iterates to a fixpoint by default (``iterate=False`` gives the
single-pass program).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..relational.relation import Relation
from .udatabase import UDatabase
from .urelation import URelation

__all__ = ["reduce_udatabase", "reduce_partitions", "is_reduced"]


def reduce_partitions(partitions: List[URelation], iterate: bool = True) -> List[URelation]:
    """Semijoin-reduce the vertical partitions of one logical relation."""
    current = list(partitions)
    while True:
        filtered = []
        changed = False
        for i, part in enumerate(current):
            keep = part
            for j, other in enumerate(current):
                if i == j:
                    continue
                keep = _semijoin(keep, other)
            if len(keep) != len(part):
                changed = True
            filtered.append(keep)
        current = filtered
        if not changed or not iterate:
            return current


def _semijoin(left: URelation, right: URelation) -> URelation:
    """Keep left tuples with an α∧ψ partner in ``right``."""
    by_tid: Dict[object, List] = {}
    for descriptor, tids, _values in right:
        by_tid.setdefault(tids[0], []).append(descriptor)
    survivors = []
    d_cols = 2 * left.d_width
    triples = list(left)
    for row, (descriptor, tids, _values) in zip(left.relation.rows, triples):
        partners = by_tid.get(tids[0], ())
        if any(descriptor.consistent_with(p) for p in partners):
            survivors.append(row)
    return URelation(
        Relation(left.relation.schema, survivors),
        left.d_width,
        left.tid_names,
        left.value_names,
    )


def reduction_plan(target: URelation, others: List[URelation]):
    """Prop. 3.3 as an actual relational algebra program.

    Returns a logical plan computing the reduced version of ``target``: a
    cascade of semijoins against every other partition, with the α (shared
    tuple id) and ψ (descriptor consistency) conditions — exactly the
    relational program the proposition asserts exists.
    """
    from ..relational.algebra import Rename, Scan, SemiJoin
    from ..relational.expressions import conjunction
    from .translate import alpha_condition, psi_condition

    plan = Scan(target.relation, name="u_target")
    for index, other in enumerate(others):
        mapping = {}
        for i in range(1, other.d_width + 1):
            mapping[f"c{i}"] = f"c{target.d_width + i}"
            mapping[f"w{i}"] = f"w{target.d_width + i}"
        suffix = "__r"
        shared = [t for t in target.tid_names if t in set(other.tid_names)]
        for tid in shared:
            mapping[tid] = tid + suffix
        for value in other.value_names:
            if value in set(target.value_names):
                mapping[value] = value + suffix
        right = Rename(Scan(other.relation, name=f"u_other{index}"), mapping)
        conditions = []
        alpha = alpha_condition(shared, suffix)
        if shared:
            conditions.append(alpha)
        psi = psi_condition(target.d_width, other.d_width, target.d_width)
        if psi is not None:
            conditions.append(psi)
        plan = SemiJoin(plan, right, conjunction(conditions))
    return plan


def reduce_partitions_relational(partitions: List[URelation]) -> List[URelation]:
    """One pass of the Prop. 3.3 program, executed on the engine."""
    from ..relational.planner import run

    out = []
    for i, part in enumerate(partitions):
        others = [p for j, p in enumerate(partitions) if j != i]
        if not others:
            out.append(part)
            continue
        plan = reduction_plan(part, others)
        relation = run(plan, optimize_first=False)
        out.append(
            URelation(relation, part.d_width, part.tid_names, part.value_names)
        )
    return out


def reduce_udatabase(udb: UDatabase, iterate: bool = True) -> UDatabase:
    """A reduced copy of a U-relational database (same world-set)."""
    out = UDatabase(udb.world_table)
    for name in udb.relation_names():
        schema = udb.logical_schema(name)
        reduced = reduce_partitions(udb.partitions(name), iterate=iterate)
        out.add_relation(name, schema.attributes, reduced)
    return out


def is_reduced(udb: UDatabase) -> bool:
    """Whether every partition tuple survives the semijoin program."""
    for name in udb.relation_names():
        parts = udb.partitions(name)
        reduced = reduce_partitions(parts, iterate=True)
        for before, after in zip(parts, reduced):
            if len(before) != len(after):
                return False
    return True
