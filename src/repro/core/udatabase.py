"""U-relational databases: world table + vertical partitions per relation.

A :class:`UDatabase` holds, for every logical relation ``R[A1..An]``, a list
of U-relations whose value columns jointly cover ``A1..An`` (Definition 2.2
— overlap is allowed), plus the shared world table ``W``.

This module also implements the *semantics*: instantiating the possible
world of a total valuation (Section 2), enumerating all worlds (the
brute-force oracle the test suite checks query translation against), and
the validity condition (no contradictory values for a tuple field in any
world).
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..relational.database import Database
from ..relational.index import (
    attach_index,
    build_index,
    built_indexes_on,
    carry_index_defs,
    defer_index,
    ensure_index,
    indexes_on,
)
from ..relational.plancache import bump_relation, watch_relation
from ..relational.relation import Relation
from ..relational.schema import Schema
from .descriptor import Descriptor
from .urelation import URelation, tid_column
from .worldtable import WorldTable

__all__ = ["UDatabase", "LogicalSchema", "CompactionPolicy", "CompactionResult"]


class CompactionPolicy:
    """The configurable bar a partition must cross to be worth compacting.

    A partition is *due* when its segment stack has grown past
    ``segment_limit`` appended segments, or when at least ``min_deleted``
    rows are dead and they make up ``deleted_ratio`` or more of everything
    ever appended.  The inputs are exactly what
    :meth:`UDatabase.segment_health` publishes, so a trigger (the server's
    background hook, a cron, an operator reading the gauges) needs no
    other state.
    """

    __slots__ = ("segment_limit", "deleted_ratio", "min_deleted")

    def __init__(
        self,
        segment_limit: int = 8,
        deleted_ratio: float = 0.3,
        min_deleted: int = 1,
    ):
        if segment_limit < 1:
            raise ValueError("segment_limit must be at least 1")
        self.segment_limit = int(segment_limit)
        self.deleted_ratio = float(deleted_ratio)
        self.min_deleted = int(min_deleted)

    def due(self, health: Mapping[str, Any]) -> bool:
        """Whether one partition's health record crosses the bar."""
        if health["segment_count"] > self.segment_limit:
            return True
        return (
            health["deleted_rows"] >= self.min_deleted
            and health["deleted_ratio"] >= self.deleted_ratio
        )

    def __repr__(self) -> str:
        return (
            f"CompactionPolicy(segment_limit={self.segment_limit}, "
            f"deleted_ratio={self.deleted_ratio}, min_deleted={self.min_deleted})"
        )


class CompactionResult(NamedTuple):
    """What one :meth:`UDatabase.compact` run (a ``VACUUM``) accomplished.

    ``relations`` names the logical relations that had at least one
    partition rewritten; ``partitions`` counts rewritten partitions,
    ``segments_before`` how many segments they held going in (each comes
    out holding one), and ``rows_dropped`` how many dead rows the rewrite
    reclaimed.  An all-compact database yields the zero result.
    """

    relations: Tuple[str, ...]
    partitions: int
    segments_before: int
    rows_dropped: int
    seconds: float

    @property
    def changed(self) -> bool:
        return self.partitions > 0


class LogicalSchema:
    """The logical (uncertain) schema of one relation: name + attributes."""

    def __init__(self, name: str, attributes: Sequence[str]):
        self.name = name
        self.attributes: Tuple[str, ...] = tuple(attributes)

    def __repr__(self) -> str:
        return f"{self.name}({', '.join(self.attributes)})"


def _tid_index_name(name: str, part: URelation) -> str:
    """Deterministic name of a partition's auto-created tuple-id index."""
    return f"idx_u_{name}_{'_'.join(part.value_names)}_tid"


def _value_index_name(name: str, part: URelation, column: str) -> str:
    """Deterministic name of a partition's auto-created value-column index."""
    return f"idx_u_{name}_{'_'.join(part.value_names)}_{column}"


def _auto_index_partition(name: str, part: URelation) -> None:
    """The (eager) auto-indexing policy for one vertical partition.

    Hash index on the tuple-id column (the partition-merge equijoins of
    the Figure 4 translation probe it), plus a sorted index per value
    column (selections of the experiment queries become point/range index
    scans).  Value columns with unsortable content are skipped silently —
    they simply stay sequential-scan-only.
    """
    ensure_index(
        part.relation, [tid_column(name)], kind="hash", name=_tid_index_name(name, part)
    )
    for column in part.value_names:
        try:
            ensure_index(
                part.relation,
                [column],
                kind="sorted",
                name=_value_index_name(name, part, column),
            )
        except TypeError:
            pass


def _defer_index_partition(name: str, part: URelation) -> None:
    """The lazy variant: record the same definitions, build on first
    planner access (``indexes_on``) — write-only pipelines never pay."""
    defer_index(
        part.relation, [tid_column(name)], kind="hash", name=_tid_index_name(name, part)
    )
    for column in part.value_names:
        defer_index(
            part.relation,
            [column],
            kind="sorted",
            name=_value_index_name(name, part, column),
        )


def _merge_tid_index_name(name: str, part: URelation) -> str:
    """Deterministic name of the ``auto_index="merge"`` sorted tid index."""
    return f"idx_u_{name}_{'_'.join(part.value_names)}_tid_sorted"


def _merge_index_partition(name: str, part: URelation) -> None:
    """Eagerly build the sorted tuple-id index of the ``"merge"`` policy.

    The merge-join profile (``prefer_merge_join=True``) consumes an
    already-*built* sorted index on exactly the join columns — and never
    triggers deferred builds — so this policy builds the index now rather
    than deferring.  Checked against *built* indexes only (``ensure_index``
    would force every pending lazy definition just to look).
    """
    target = _merge_tid_index_name(name, part)
    for index in built_indexes_on(part.relation):
        if index.name == target:
            return  # carried over incrementally by the write path
    index = build_index(
        part.relation, [tid_column(name)], kind="sorted", name=target
    )
    attach_index(part.relation, index)


class UDatabase:
    """A U-relational database (Definition 2.2)."""

    def __init__(
        self,
        world_table: Optional[WorldTable] = None,
        auto_index: Union[bool, str] = True,
    ):
        self.world_table = world_table or WorldTable()
        self._partitions: Dict[str, List[URelation]] = {}
        self._schemas: Dict[str, LogicalSchema] = {}
        #: Mirror the paper's experiment setup: every vertical partition
        #: gets a hash index on its tuple-id column (and the world table
        #: one on Var), so the tid-equijoins that reassemble partitions
        #: run as index probes.  ``"merge"`` extends the policy with an
        #: eagerly built *sorted* tuple-id index per partition, so the
        #: merge-join profile (``prefer_merge_join=True``, which never
        #: builds deferred indexes) hits the presorted merge path without
        #: manual ``CREATE INDEX`` — the paper's Figure 13 plans (merge
        #: joins over tid order) then run sort-free.
        self.auto_index = auto_index
        self._database: Optional[Database] = None
        self._database_world_version: Optional[int] = None
        #: User-created world-table index definitions ``(name, columns,
        #: kind)`` restored by persistence; applied whenever the ``w``
        #: snapshot is (re)materialized in :meth:`to_database`.
        self.world_index_defs: List[Tuple[str, Tuple[str, ...], str]] = []
        #: Mutation counter behind :attr:`catalog_version` — bumped by
        #: schema changes here and, via the plan cache's watcher hook, by
        #: any mutation of a partition relation (index DDL, deferred
        #: auto-index builds, statistics refreshes).
        self._catalog_version = 0
        #: Prepared statements keyed by SQL text (``repro.sql.prepare`` /
        #: ``execute_sql`` fill this so re-issued statements skip parsing
        #: *and* planning).
        self._statements: Dict[str, Any] = {}
        #: Next tuple id to hand out per relation, computed lazily from
        #: the partitions' tid columns on first INSERT and invalidated on
        #: :meth:`add_relation` (external replacement may renumber).
        self._next_tid: Dict[str, int] = {}
        #: Serializes DML statements: the write path is read-derive-swap
        #: over the partition lists, so concurrent writers must not
        #: interleave (readers never take this — they work off immutable
        #: relation objects).  RLock because UPDATE/DELETE matching runs a
        #: translated query while the statement holds the lock.
        self._write_lock = threading.RLock()
        #: The database-level open :class:`~repro.core.txn.Transaction`
        #: serving direct ``execute_sql`` BEGIN/COMMIT/ROLLBACK callers;
        #: server sessions carry their own per-connection transaction.
        self._active_txn = None

    @property
    def catalog_version(self) -> int:
        """Monotone catalog version covering schema, index, and world state.

        Bumps on :meth:`add_relation`, on every index mutation of a
        partition (including lazy auto-index first builds), on statistics
        refreshes, and on world-table growth (its own version counter is a
        component).  The prepared-plan cache invalidates *dependent*
        entries exactly on each of these; the version is the observable
        that provably moves whenever any of them happens.
        """
        return self._catalog_version + self.world_table.version

    def _bump_catalog_version(self) -> None:
        """Plan-cache watcher hook: a partition relation mutated."""
        self._catalog_version += 1

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_relation(
        self,
        name: str,
        attributes: Sequence[str],
        partitions: Iterable[URelation],
        build_now: bool = False,
    ) -> None:
        """Register a logical relation with its vertical partitions.

        The partitions' value columns must jointly cover ``attributes``.
        Auto-indexing is *lazy* by default: the partition index
        definitions are recorded but only built on first planner access,
        so write-only pipelines (conversion, save) skip the cost
        entirely.  ``build_now=True`` builds them eagerly, for callers
        that need deterministic first-query latency (see also
        :meth:`build_indexes`, which benchmark setup uses to force all
        deferred builds after generation).
        """
        partitions = list(partitions)
        covered = set()
        for part in partitions:
            if list(part.tid_names) != [tid_column(name)]:
                raise ValueError(
                    f"partition of {name!r} must have tid column {tid_column(name)!r}, "
                    f"got {list(part.tid_names)}"
                )
            covered.update(part.value_names)
        missing = set(attributes) - covered
        if missing:
            raise ValueError(f"partitions of {name!r} do not cover attributes {sorted(missing)}")
        extra = covered - set(attributes)
        if extra:
            raise ValueError(f"partitions of {name!r} carry unknown attributes {sorted(extra)}")
        replaced = self._partitions.get(name)
        self._schemas[name] = LogicalSchema(name, attributes)
        self._partitions[name] = partitions
        self._database = None  # the cached catalog view is stale now
        self._next_tid.pop(name, None)
        self._catalog_version += 1
        for part in partitions:
            # future index builds / stats refreshes on this partition must
            # bump this database's catalog version
            watch_relation(part.relation, self)
        if replaced is not None:
            # re-registering a name swaps its partition set: evict every
            # cached plan that scanned the old partitions
            for part in replaced:
                bump_relation(part.relation)
        if self.auto_index:
            for part in partitions:
                if build_now:
                    _auto_index_partition(name, part)
                else:
                    _defer_index_partition(name, part)
                if self.auto_index == "merge":
                    _merge_index_partition(name, part)

    # ------------------------------------------------------------------
    # the write path (see :mod:`repro.core.dml`)
    # ------------------------------------------------------------------
    def replace_partitions(self, name: str, partitions: Sequence[URelation]) -> None:
        """Swap a relation's partition set for DML-derived replacements.

        The lightweight sibling of :meth:`add_relation` for the write
        path: the logical schema is unchanged and the replacements were
        *derived* from the current partitions (appended segments and/or
        delete vectors), carrying their index structures or deferred
        definitions with them — so no re-validation and no auto-index
        re-deferral happens here.  Partitions whose relation object is
        reused (untouched by the statement) are not bumped; each actually
        replaced relation goes through :func:`bump_relation`, which evicts
        exactly the cached plans that scanned it and moves this database's
        :attr:`catalog_version` through the watcher hook.
        """
        old = self.partitions(name)
        if len(old) != len(partitions):
            raise ValueError(
                f"replacement for {name!r} must keep its {len(old)} partitions"
            )
        self._partitions[name] = list(partitions)
        self._database = None  # the cached catalog view is stale now
        kept = {id(part.relation) for part in partitions}
        for part in partitions:
            watch_relation(part.relation, self)
        for part in old:
            if id(part.relation) not in kept:
                bump_relation(part.relation)
        if self.auto_index == "merge":
            # keep the presorted-merge access path alive across writes:
            # append-derived relations carried the extended sorted index
            # (no-op here); delete/update-derived ones rebuild it eagerly
            for part in partitions:
                _merge_index_partition(name, part)

    def allocate_tids(self, name: str, count: int) -> int:
        """Reserve ``count`` fresh tuple ids; returns the first.

        The high-water mark is read once from the partitions' integer tid
        columns (non-integer tids are ignored) and advanced in memory
        afterwards, so repeated inserts don't rescan.
        """
        self.logical_schema(name)
        next_tid = self._next_tid.get(name)
        if next_tid is None:
            highest = 0
            tid_name = tid_column(name)
            for part in self._partitions[name]:
                position = part.relation.schema.resolve(tid_name)
                for row in part.relation.rows:
                    tid = row[position]
                    if isinstance(tid, int) and tid > highest:
                        highest = tid
            next_tid = highest + 1
        self._next_tid[name] = next_tid + count
        return next_tid

    def fresh_variable(self, name: str, tid: Any, attribute: str) -> str:
        """A world-table variable name no existing variable collides with."""
        base = f"{name}_{tid}_{attribute}"
        var = base
        suffix = 2
        while var in self.world_table:
            var = f"{base}_{suffix}"
            suffix += 1
        return var

    def insert(self, name: str, *rows: Sequence[Any]):
        """Insert logical tuples; see :func:`repro.core.dml.insert_rows`."""
        from .dml import insert_rows

        with self._write_lock:
            return insert_rows(self, name, rows)

    def copy_rows(self, name: str, rows: Iterable[Sequence[Any]]):
        """Bulk-ingest many logical tuples as ONE appended segment.

        The streaming-ingest funnel: semantically identical to inserting
        every row of ``rows`` one statement at a time, but the whole batch
        builds a single segment per partition and publishes with a single
        :meth:`replace_partitions` swap — exactly one ``bump_relation``
        per touched partition relation, so the plan cache invalidates
        once per batch instead of once per row.  Metered under the
        ``copy`` DML op.  See :func:`repro.core.dml.copy_rows`.
        """
        from .dml import copy_rows

        with self._write_lock:
            return copy_rows(self, name, rows)

    def compact(self, table: Optional[str] = None) -> CompactionResult:
        """Rewrite segment stacks into single base segments (``VACUUM``).

        For every partition of ``table`` (or of every relation when
        ``None``) that holds more than one segment or any deleted rows,
        build a replacement relation whose live rows sit in one fresh base
        segment (:meth:`~repro.relational.relation.Relation.compacted`)
        and swap it in through :meth:`replace_partitions` under the write
        lock.  Readers and pinned snapshots keep the old immutable
        relation objects; the swap is one catalog bump per rewritten
        partition, indistinguishable from any other write.  Index
        definitions carry over (re-deferred — compaction renumbers
        ordinals, so structures rebuild lazily on next planner access) and
        statistics recompute lazily for the new relation objects.  The
        world table is never touched.

        Emits ``compactions_total`` (per rewritten relation) and observes
        ``compaction_seconds``.
        """
        from ..obs import counter, histogram

        if table is not None:
            self.logical_schema(table)  # unknown table: raise before locking
        started = time.perf_counter()
        names = [table] if table is not None else self.relation_names()
        compacted: List[str] = []
        partitions_rewritten = 0
        segments_before = 0
        rows_dropped = 0
        bytes_reclaimed = 0
        with self._write_lock:
            for name in names:
                parts = self.partitions(name)
                replacements: List[URelation] = []
                changed = False
                for part in parts:
                    relation = part.relation
                    rewritten = relation.compacted()
                    if rewritten is relation:
                        replacements.append(part)
                        continue
                    segments_before += len(relation.segments())
                    dropped_here = len(relation.deleted_ordinals())
                    rows_dropped += dropped_here
                    # pointer-slot estimate of the reclaimed tuples (CPython
                    # tuple header + one slot per column); values are shared
                    # so their own sizes are not reclaimed by compaction
                    bytes_reclaimed += dropped_here * (
                        56 + 8 * len(relation.schema)
                    )
                    # ordinals changed wholesale: carry the definitions,
                    # rebuild the structures lazily on first planner access
                    carry_index_defs(relation, rewritten)
                    replacements.append(
                        URelation(
                            rewritten, part.d_width, part.tid_names, part.value_names
                        )
                    )
                    partitions_rewritten += 1
                    changed = True
                if changed:
                    self.replace_partitions(name, replacements)
                    compacted.append(name)
        seconds = time.perf_counter() - started
        if compacted:
            total = counter(
                "compactions_total", "Partition-stack rewrites, by relation"
            )
            for name in compacted:
                total.inc(relation=name)
            histogram(
                "compaction_seconds", "Wall seconds per compaction run"
            ).observe(seconds)
            counter(
                "compaction_rows_reclaimed_total",
                "Deleted rows dropped by compaction",
            ).inc(rows_dropped)
            counter(
                "compaction_bytes_reclaimed_total",
                "Estimated bytes reclaimed by compaction (tuple slots)",
            ).inc(bytes_reclaimed)
        return CompactionResult(
            tuple(compacted), partitions_rewritten, segments_before, rows_dropped,
            seconds,
        )

    def maybe_compact(
        self, policy: Optional[CompactionPolicy] = None
    ) -> CompactionResult:
        """Compact exactly the relations whose health crosses ``policy``.

        The threshold half of the compaction story: reads
        :meth:`segment_health` (without republishing gauges), asks the
        :class:`CompactionPolicy` which partitions are due, and compacts
        the owning relations.  Cheap when nothing is due — no lock taken,
        the zero :class:`CompactionResult` returned.
        """
        policy = policy or CompactionPolicy()
        due: List[str] = []
        for key, health in self.segment_health(publish=False).items():
            name = key.rsplit("/part", 1)[0]
            if name not in due and policy.due(health):
                due.append(name)
        if not due:
            return CompactionResult((), 0, 0, 0, 0.0)
        started = time.perf_counter()
        results = [self.compact(name) for name in due]
        return CompactionResult(
            tuple(n for r in results for n in r.relations),
            sum(r.partitions for r in results),
            sum(r.segments_before for r in results),
            sum(r.rows_dropped for r in results),
            time.perf_counter() - started,
        )

    @classmethod
    def from_certain(
        cls, relations: Mapping[str, Relation], world_table: Optional[WorldTable] = None
    ) -> "UDatabase":
        """Wrap certain one-world relations as trivial U-relations."""
        db = cls(world_table)
        for name, relation in relations.items():
            attrs = relation.schema.names
            partition = URelation.from_certain_rows(relation.rows, tid_column(name), attrs)
            db.add_relation(name, attrs, [partition])
        return db

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def relation_names(self) -> List[str]:
        return sorted(self._schemas)

    def logical_schema(self, name: str) -> LogicalSchema:
        try:
            return self._schemas[name]
        except KeyError:
            raise KeyError(
                f"unknown logical relation {name!r}; have {sorted(self._schemas)}"
            ) from None

    def partitions(self, name: str) -> List[URelation]:
        self.logical_schema(name)
        return list(self._partitions[name])

    def catalog_identity(self) -> Dict[str, Tuple[int, ...]]:
        """The identity map of every partition relation object.

        Answer-changing catalog mutations (DML publishes, compaction,
        table replacement) swap relation *objects*; access-path mutations
        (lazy index builds, statistics refreshes) mutate the same objects
        in place.  The identity map therefore moves exactly when answers
        may move — the discriminator :attr:`catalog_version` (bumped by
        both kinds) cannot be.  Consumed by the planner's cache-store
        guard and by session snapshot validation.
        """
        return {
            name: tuple(id(part.relation) for part in parts)
            for name, parts in self._partitions.items()
        }

    def segment_health(self, publish: bool = True) -> Dict[str, Dict[str, Any]]:
        """Per-partition write-path health, optionally published as gauges.

        For every vertical partition (keyed ``relation/part<i>``):
        ``segment_count`` (appended segments accumulated since the last
        base rewrite), ``live_rows``, ``deleted_rows``, and
        ``deleted_ratio`` (dead fraction of all appended rows) — exactly
        the inputs a compaction trigger needs (ROADMAP's write-path
        follow-on).  With ``publish=True`` (default) each value is also
        set on the ``segment_*`` gauges, labeled by partition, so the
        metrics snapshot carries the write path's state.

        Reading is cheap and never forces segment materialization: a
        relation the write path has not touched reports one base segment
        with nothing deleted, without copying its rows.
        """
        from ..obs import gauge

        out: Dict[str, Dict[str, Any]] = {}
        for name, parts in sorted(self._partitions.items()):
            for i, part in enumerate(parts):
                relation = part.relation
                segments = getattr(relation, "_segments", None)
                if segments is None:  # untouched: one implicit base segment
                    segment_count = 1
                    live = len(relation.rows)
                    deleted = 0
                else:
                    segment_count = len(segments)
                    live = len(relation.rows)
                    deleted = len(relation.deleted_ordinals())
                total = live + deleted
                key = f"{name}/part{i}"
                out[key] = {
                    "segment_count": segment_count,
                    "live_rows": live,
                    "deleted_rows": deleted,
                    "deleted_ratio": (deleted / total) if total else 0.0,
                }
        if publish:
            count_gauge = gauge(
                "segment_count", "Segments per partition (1 = compacted base)"
            )
            live_gauge = gauge("segment_live_rows", "Live rows per partition")
            ratio_gauge = gauge(
                "segment_deleted_ratio", "Dead fraction of appended rows"
            )
            deleted_gauge = gauge(
                "segment_deleted_rows",
                "Delete-vector density: dead rows per partition",
            )
            for key, health in out.items():
                count_gauge.set(health["segment_count"], partition=key)
                live_gauge.set(health["live_rows"], partition=key)
                ratio_gauge.set(health["deleted_ratio"], partition=key)
                deleted_gauge.set(health["deleted_rows"], partition=key)
        return out

    def build_indexes(self) -> None:
        """Force-build every deferred partition index now.

        The lazy auto-indexing escape hatch for callers that need
        deterministic query latency — benchmark setup calls this after
        generation so measured times never include one-off index builds.
        """
        for parts in self._partitions.values():
            for part in parts:
                indexes_on(part.relation)

    def prepare(self, sql: str):
        """Prepare a SQL statement (with optional ``$n`` parameter slots).

        Returns a :class:`~repro.core.prepared.PreparedQuery`; repeated
        ``run(...)`` calls — with any parameter bindings — reuse one
        cached physical plan and go executor-only.  Statements are cached
        by text, so preparing the same SQL twice returns the same object.
        """
        from ..sql import prepare as prepare_sql

        return prepare_sql(sql, self)

    def confidence(
        self,
        query,
        method: str = "auto",
        epsilon: float = 0.01,
        delta: float = 0.05,
        seed: int = 0,
        **knobs,
    ):
        """Tuple confidences of a query's possible answers (Section 7).

        Wraps ``query`` in :class:`~repro.core.query.Conf` and executes it
        through the vectorized confidence operator; the result is a
        :class:`~repro.core.probability.ConfidenceAnswer` — the possible
        value tuples plus a ``conf`` column, sorted by descending
        confidence, carrying the computation summary.  ``method`` is
        ``"auto"`` (default), ``"exact"``, or ``"approx"``; the sampler
        guarantees ``|answer - conf| <= epsilon`` with probability at
        least ``1 - delta``.  Extra ``knobs`` pass through to
        :func:`~repro.core.translate.execute_query`.
        """
        from .query import Conf
        from .translate import execute_query

        return execute_query(
            Conf(query, method=method, epsilon=epsilon, delta=delta, seed=seed),
            self,
            **knobs,
        )

    def session(self, **knobs):
        """Open a standalone :class:`~repro.server.session.Session` here.

        The session owns its prepared-statement namespace and ``$n``
        binding stores (concurrent sessions never share parameter state)
        and offers catalog-version snapshot reads.  Statements execute
        inline on the calling thread; for pooled execution with admission
        control, open sessions through a
        :class:`~repro.server.server.QueryServer` instead.
        """
        from ..server.session import Session

        return Session(self, **knobs)

    def serve(self, **knobs):
        """A :class:`~repro.server.server.QueryServer` over this database.

        Keyword arguments are the server's (``workers``, ``policy``,
        ``coalesce``, ``mode``, ``use_indexes``, ``parallel``).
        """
        from ..server import QueryServer

        return QueryServer(self, **knobs)

    def world_count(self) -> int:
        return self.world_table.world_count()

    def total_representation_rows(self) -> int:
        """Rows across all U-relations plus the world table."""
        total = len(self.world_table.relation())
        for parts in self._partitions.values():
            total += sum(len(p) for p in parts)
        return total

    def to_database(self) -> Database:
        """Expose the representation as plain named relations (plus ``w``).

        Partition naming follows the paper's experiments: ``u_<rel>_<attrs>``.
        The :class:`Database` (and its index registry) is cached across
        calls — DDL applied to it, e.g. ``CREATE INDEX`` through the SQL
        layer, persists — and invalidated when relations are added.  The
        ``w`` snapshot is refreshed only when the world table's version
        says it gained variables since the last call.

        Registering the auto-index definitions with the catalog *builds*
        any still-deferred ones (the registry stores live indexes): the
        first call here pays the lazy builds.  Only index DDL goes
        through this view — translated queries scan partitions directly
        — so plain query/convert/save pipelines keep their laziness.
        """
        if self._database is None:
            db = Database()
            for name, parts in sorted(self._partitions.items()):
                for part in parts:
                    label = f"u_{name}_" + "_".join(part.value_names)
                    db.create(label, part.relation, replace=True)
                    # register the partition's attached (auto-created)
                    # indexes with the catalog so SQL DDL can see/drop them
                    for idx in indexes_on(part.relation):
                        db.indexes.create(
                            idx.name, label, part.relation, idx.columns,
                            kind=idx.kind, replace=True,
                        )
            self._database = db
        db = self._database
        stale = self._database_world_version != self.world_table.version
        if stale or "w" not in db:
            world_relation = self.world_table.relation()
            db.create("w", world_relation, replace="w" in db)
            # index DDL and statistics refreshes on the world snapshot must
            # move this database's catalog version too (session snapshot
            # reads validate against it)
            watch_relation(world_relation, self)
            if self.auto_index:
                db.create_index("idx_w_var", "w", ["var"], kind="hash", replace=True)
            # restore persisted user-created world-table indexes; replacing
            # an existing ``w`` already carried live definitions over via
            # the registry rebuild, so this is idempotent
            for index_name, columns, kind in self.world_index_defs:
                try:
                    db.create_index(
                        index_name, "w", list(columns), kind=kind, replace=True
                    )
                except TypeError:
                    pass  # unsortable column in this snapshot: skip
            self._database_world_version = self.world_table.version
        return db

    def __repr__(self) -> str:
        rels = ", ".join(
            f"{name}[{len(parts)} parts]" for name, parts in sorted(self._partitions.items())
        )
        return f"UDatabase({rels}; {self.world_table!r})"

    # ------------------------------------------------------------------
    # semantics: possible worlds
    # ------------------------------------------------------------------
    def instantiate(self, valuation: Mapping[str, Any], name: str) -> Relation:
        """The instance of logical relation ``name`` in one world.

        Per Section 2: for every partition tuple whose descriptor the
        valuation extends, assign its values to the fields of the tuple id;
        tuples left partial are removed; the world's relation is a set.
        """
        schema = self.logical_schema(name)
        attr_pos = {a: i for i, a in enumerate(schema.attributes)}
        fields: Dict[Any, List[Any]] = {}
        assigned: Dict[Any, set] = {}
        for part in self._partitions[name]:
            for descriptor, tids, values in part:
                if not descriptor.extended_by(valuation):
                    continue
                (tid,) = tids
                row = fields.setdefault(tid, [None] * len(schema.attributes))
                got = assigned.setdefault(tid, set())
                for attr, value in zip(part.value_names, values):
                    pos = attr_pos[attr]
                    if attr in got and row[pos] != value:
                        raise ValueError(
                            f"invalid U-database: field {name}.{attr} of tuple {tid!r} "
                            f"takes both {row[pos]!r} and {value!r} in one world"
                        )
                    row[pos] = value
                    got.add(attr)
        complete = [
            tuple(row)
            for tid, row in fields.items()
            if len(assigned[tid]) == len(schema.attributes)
        ]
        return Relation(Schema(schema.attributes), complete).distinct()

    def worlds(self) -> Iterator[Tuple[Dict[str, Any], Dict[str, Relation]]]:
        """Enumerate (valuation, {relation name -> instance}) for all worlds.

        Exponential — this is the brute-force oracle for tests and for tiny
        illustrative examples, not a query processing path.
        """
        for valuation in self.world_table.valuations():
            instances = {
                name: self.instantiate(valuation, name) for name in self._schemas
            }
            yield valuation, instances

    def world_relations(self, valuation: Mapping[str, Any]) -> Dict[str, Relation]:
        """All relation instances of one world."""
        return {name: self.instantiate(valuation, name) for name in self._schemas}

    # ------------------------------------------------------------------
    # validity (Definition 2.2 / Example 2.3)
    # ------------------------------------------------------------------
    def is_valid(self) -> bool:
        """Check that no world assigns two values to the same tuple field.

        Pairwise check over partitions sharing value attributes: tuples with
        the same tuple id and consistent descriptors must agree on shared
        attributes.
        """
        for name, parts in self._partitions.items():
            for i, left in enumerate(parts):
                for right in parts[i:]:
                    shared = set(left.value_names) & set(right.value_names)
                    if not shared:
                        continue
                    if not _partitions_agree(left, right, shared, same=left is right):
                        return False
        return True


def _partitions_agree(
    left: URelation, right: URelation, shared: set, same: bool
) -> bool:
    left_pos = [left.value_names.index(a) for a in sorted(shared)]
    right_pos = [right.value_names.index(a) for a in sorted(shared)]
    by_tid: Dict[Any, List[Tuple[Descriptor, Tuple[Any, ...]]]] = {}
    for descriptor, tids, values in right:
        by_tid.setdefault(tids[0], []).append(
            (descriptor, tuple(values[i] for i in right_pos))
        )
    for descriptor, tids, values in left:
        mine = tuple(values[i] for i in left_pos)
        for other_descriptor, other_values in by_tid.get(tids[0], ()):
            if same and descriptor == other_descriptor and mine == other_values:
                continue  # the same physical tuple
            if descriptor.consistent_with(other_descriptor) and mine != other_values:
                return False
    return True
