"""U-relations: vertically partitioned uncertain relations.

A U-relation (Definition 2.2) has schema ``U[D; T; B]``:

* ``D`` — a relational ws-descriptor encoding of ``d_width`` (variable,
  value) column pairs named ``c1, w1, ..., ck, wk``,
* ``T`` — one tuple-id column per logical relation the U-relation carries
  ids for (base partitions have one; join results have several),
* ``B`` — value columns named by the logical attributes they hold.

:class:`URelation` wraps a plain :class:`~repro.relational.relation.Relation`
with this column structure; everything query processing does to it is plain
relational algebra on the wrapped relation (the paper's central claim).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..relational.relation import Relation
from ..relational.schema import Schema
from .descriptor import (
    Descriptor,
    decode_descriptor,
    descriptor_columns,
    encode_descriptor,
)

__all__ = ["URelation", "tid_column"]


def tid_column(relation_name: str, alias: Optional[str] = None) -> str:
    """The canonical tuple-id column name for a logical relation (or alias).

    Self-joins require the two copies to have *disjoint* tuple-id columns
    (Section 3), which aliasing achieves: ``tid_orders`` vs ``tid_o2``.
    """
    return f"tid_{alias or relation_name}"


class URelation:
    """A U-relation: a wrapped relation plus its D/T/B column structure."""

    def __init__(
        self,
        relation: Relation,
        d_width: int,
        tid_names: Sequence[str],
        value_names: Sequence[str],
    ):
        self.relation = relation
        self.d_width = int(d_width)
        self.tid_names: Tuple[str, ...] = tuple(tid_names)
        self.value_names: Tuple[str, ...] = tuple(value_names)
        expected = descriptor_columns(self.d_width) + list(self.tid_names) + list(self.value_names)
        if relation.schema.names != expected:
            raise ValueError(
                f"U-relation schema mismatch: expected {expected}, "
                f"got {relation.schema.names}"
            )

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        tuples: Iterable[Tuple[Descriptor, Any, Sequence[Any]]],
        tid_name: str,
        value_names: Sequence[str],
        d_width: Optional[int] = None,
    ) -> "URelation":
        """Build a single-tid U-relation from (descriptor, tid, values) triples.

        ``d_width`` defaults to the largest descriptor present (minimum 1).
        """
        materialized = [(d, t, tuple(vs)) for d, t, vs in tuples]
        if d_width is None:
            d_width = max((len(d) for d, _, _ in materialized), default=1)
            d_width = max(d_width, 1)
        schema = Schema(descriptor_columns(d_width) + [tid_name] + list(value_names))
        rows = []
        for descriptor, tid, values in materialized:
            if len(values) != len(value_names):
                raise ValueError(
                    f"expected {len(value_names)} values, got {len(values)}: {values!r}"
                )
            rows.append(encode_descriptor(descriptor, d_width) + (tid,) + values)
        return cls(Relation(schema, rows), d_width, [tid_name], value_names)

    @classmethod
    def from_certain_rows(
        cls,
        rows: Iterable[Sequence[Any]],
        tid_name: str,
        value_names: Sequence[str],
        tid_start: int = 1,
    ) -> "URelation":
        """Wrap a certain (one-world) relation: empty descriptors, fresh tids."""
        empty = Descriptor()
        triples = [
            (empty, tid_start + i, tuple(row)) for i, row in enumerate(rows)
        ]
        return cls.build(triples, tid_name, value_names, d_width=1)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        return self.relation.schema

    @property
    def descriptor_names(self) -> List[str]:
        """Names of the D columns: ``c1, w1, ..., ck, wk``."""
        return descriptor_columns(self.d_width)

    def __len__(self) -> int:
        return len(self.relation)

    def __iter__(self) -> Iterator[Tuple[Descriptor, Tuple[Any, ...], Tuple[Any, ...]]]:
        """Iterate logical triples (descriptor, tids, values)."""
        d_cols = 2 * self.d_width
        n_tids = len(self.tid_names)
        for row in self.relation.rows:
            descriptor = decode_descriptor(row[:d_cols])
            tids = row[d_cols : d_cols + n_tids]
            values = row[d_cols + n_tids :]
            yield descriptor, tids, values

    def descriptors(self) -> List[Descriptor]:
        """All descriptors, in row order."""
        return [d for d, _, _ in self]

    def tuples(self) -> List[Tuple[Descriptor, Tuple[Any, ...], Tuple[Any, ...]]]:
        """Materialized logical triples."""
        return list(self)

    def __eq__(self, other: object) -> bool:
        """Logical equality: same structure, same set of decoded triples.

        Encoded padding may differ between logically equal U-relations, so
        equality compares decoded (descriptor, tids, values) triples.
        """
        if not isinstance(other, URelation):
            return NotImplemented
        if self.tid_names != other.tid_names or self.value_names != other.value_names:
            return False
        return sorted(map(_triple_key, self)) == sorted(map(_triple_key, other))

    def __repr__(self) -> str:
        return (
            f"URelation(d_width={self.d_width}, tids={list(self.tid_names)}, "
            f"values={list(self.value_names)}, {len(self.relation)} rows)"
        )

    def pretty(self, limit: int = 20) -> str:
        """Human-readable table with decoded descriptors."""
        header = ["D"] + list(self.tid_names) + list(self.value_names)
        lines = []
        for descriptor, tids, values in list(self)[:limit]:
            lines.append([repr(descriptor)] + [str(t) for t in tids] + [str(v) for v in values])
        widths = [
            max(len(header[i]), *(len(l[i]) for l in lines)) if lines else len(header[i])
            for i in range(len(header))
        ]
        out = [
            " | ".join(h.ljust(w) for h, w in zip(header, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        for line in lines:
            out.append(" | ".join(c.ljust(w) for c, w in zip(line, widths)))
        if len(self.relation) > limit:
            out.append(f"... ({len(self.relation)} rows total)")
        return "\n".join(out)

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def repadded(self, d_width: int) -> "URelation":
        """Re-encode with a (usually larger) descriptor width."""
        if d_width == self.d_width:
            return self
        schema = Schema(
            descriptor_columns(d_width) + list(self.tid_names) + list(self.value_names)
        )
        rows = []
        for descriptor, tids, values in self:
            rows.append(encode_descriptor(descriptor, d_width) + tids + values)
        return URelation(Relation(schema, rows), d_width, self.tid_names, self.value_names)

    def compacted(self) -> "URelation":
        """Re-encode with the minimum descriptor width and dedupe rows."""
        width = max((len(d) for d, _, _ in self), default=1)
        width = max(width, 1)
        seen = set()
        triples = []
        for triple in self:
            key = _triple_key(triple)
            if key not in seen:
                seen.add(key)
                triples.append(triple)
        schema = Schema(
            descriptor_columns(width) + list(self.tid_names) + list(self.value_names)
        )
        rows = [
            encode_descriptor(d, width) + tids + values for d, tids, values in triples
        ]
        return URelation(Relation(schema, rows), width, self.tid_names, self.value_names)

    def rename_values(self, mapping: Dict[str, str]) -> "URelation":
        """Rename value columns (for logical-level aliasing)."""
        new_values = [mapping.get(v, v) for v in self.value_names]
        relation = self.relation.rename(
            {old: new for old, new in mapping.items() if old in self.value_names}
        )
        return URelation(relation, self.d_width, self.tid_names, new_values)

    def rename_tid(self, old: str, new: str) -> "URelation":
        """Rename a tuple-id column (aliasing for self-joins)."""
        tids = [new if t == old else t for t in self.tid_names]
        return URelation(
            self.relation.rename({old: new}), self.d_width, tids, self.value_names
        )


def _triple_key(triple: Tuple[Descriptor, Tuple[Any, ...], Tuple[Any, ...]]):
    """A totally ordered, hash-stable key for a logical triple."""
    descriptor, tids, values = triple
    return (
        tuple((var, type(val).__name__, repr(val)) for var, val in descriptor.items()),
        tuple((type(t).__name__, repr(t)) for t in tids),
        tuple((type(v).__name__, repr(v)) for v in values),
    )
