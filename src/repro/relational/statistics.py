"""Cardinality and selectivity estimation.

A deliberately simple, PostgreSQL-flavoured cost model:

* equality against a literal: ``1 / ndistinct`` of the column,
* range predicates against a literal: fraction of the (min, max) interval,
* equi-joins: ``|L| * |R| / max(ndistinct_L, ndistinct_R)``,
* unknown predicates: a fixed default selectivity.

Statistics are computed lazily per relation and cached.  The estimates only
need to be good enough to order joins sensibly, which (as the paper reports
for PostgreSQL) is what makes translated U-relation queries run well.
"""

from __future__ import annotations

import datetime
from bisect import bisect_left, bisect_right
from typing import Any, Dict, Optional, Tuple

from .expressions import (
    And,
    Between,
    Col,
    Comparison,
    Expression,
    InList,
    IsNull,
    Lit,
    Not,
    Or,
)
from .relation import Relation

__all__ = [
    "ColumnStats",
    "TableStats",
    "selectivity",
    "DEFAULT_SELECTIVITY",
    "use_index_scan",
    "use_index_join",
]

DEFAULT_SELECTIVITY = 0.33
EQUALITY_DEFAULT = 0.05
RANGE_DEFAULT = 0.3

#: An IndexScan wins over a SeqScan when it is expected to fetch at most
#: this fraction of the table.  Although the fetch itself is a cheap
#: bucket/slice access, a sorted-index fetch emits rows in *key* order —
#: downstream operators (tid-index probes especially) then touch memory
#: randomly instead of in relation order, which measurably hurts above
#: roughly a third of the table.
INDEX_SCAN_MAX_SELECTIVITY = 0.3

#: An IndexNestedLoopJoin over an *unfiltered* inner wins over a HashJoin
#: when the outer input is at most this many times the indexed relation:
#: probing a prebuilt index costs one lookup per outer row, while the hash
#: join must scan and re-hash the whole inner side every execution.
INDEX_JOIN_MAX_OUTER_RATIO = 8.0

#: When the inner side carries pushed-down filters, each probe must also
#: evaluate them on the matched rows: with O(outer) probes the filter runs
#: ~outer times instead of ~inner-base times, so the index path stops
#: winning once the outer input outgrows the inner base relation.
INDEX_JOIN_FILTERED_OUTER_RATIO = 1.0


def use_index_scan(estimated_matches: float, table_rows: float) -> bool:
    """Cost gate: is an index scan expected to beat a sequential scan?"""
    if table_rows <= 0:
        return True
    return estimated_matches <= table_rows * INDEX_SCAN_MAX_SELECTIVITY


def use_index_join(
    outer_rows: float, inner_base_rows: float, inner_filtered: bool = False
) -> bool:
    """Cost gate: is probing the inner index expected to beat hash-building?

    ``inner_base_rows`` is the size of the indexed base relation — the
    hash alternative pays a full scan (plus filter and build) of it per
    execution, regardless of how selective the inner filters are.
    """
    ratio = INDEX_JOIN_FILTERED_OUTER_RATIO if inner_filtered else INDEX_JOIN_MAX_OUTER_RATIO
    return outer_rows <= max(inner_base_rows, 1.0) * ratio


#: Number of quantile boundaries kept per column (PostgreSQL keeps 100).
HISTOGRAM_BINS = 128


class ColumnStats:
    """Distinct count, min/max, and an equi-depth histogram for one column.

    Range estimates interpolate on the histogram (quantiles of a full sort
    of the column), so skewed distributions — TPC-H dates, for example —
    estimate far better than the min/max linear interpolation they fall
    back to when the column is not sortable.
    """

    __slots__ = ("ndistinct", "minimum", "maximum", "null_fraction", "histogram")

    def __init__(self, values) -> None:
        non_null = [v for v in values if v is not None]
        total = max(len(values), 1)
        self.null_fraction = 1.0 - len(non_null) / total
        self.ndistinct = max(len(set(non_null)), 1)
        comparable = [v for v in non_null if _is_orderable(v)]
        self.minimum = min(comparable) if comparable else None
        self.maximum = max(comparable) if comparable else None
        self.histogram: Optional[list] = None
        if len(comparable) >= 2:
            try:
                ordered = sorted(comparable)
            except TypeError:
                ordered = None
            if ordered is not None:
                if len(ordered) > HISTOGRAM_BINS + 1:
                    last = len(ordered) - 1
                    self.histogram = [
                        ordered[(i * last) // HISTOGRAM_BINS]
                        for i in range(HISTOGRAM_BINS + 1)
                    ]
                else:
                    self.histogram = ordered

    def eq_selectivity(self) -> float:
        return 1.0 / self.ndistinct

    def _fraction_below(self, literal: Any, inclusive: bool) -> Optional[float]:
        """Histogram estimate of ``P(value < literal)`` (``<=`` if inclusive)."""
        if self.histogram is not None:
            try:
                cut = (
                    bisect_right(self.histogram, literal)
                    if inclusive
                    else bisect_left(self.histogram, literal)
                )
            except TypeError:
                return None
            return cut / len(self.histogram)
        if self.minimum is None or self.maximum is None:
            return None
        lo, hi = _as_number(self.minimum), _as_number(self.maximum)
        v = _as_number(literal)
        if lo is None or hi is None or v is None or hi <= lo:
            return None
        return min(max((v - lo) / (hi - lo), 0.0), 1.0)

    def range_selectivity(self, op: str, literal: Any) -> float:
        """Estimate the fraction of values satisfying ``col op literal``."""
        frac = self._fraction_below(literal, inclusive=op in ("<=", ">"))
        if frac is None:
            return RANGE_DEFAULT
        if op in ("<", "<="):
            return max(frac, 1e-6)
        if op in (">", ">="):
            return max(1.0 - frac, 1e-6)
        return RANGE_DEFAULT

    def interval_selectivity(self, lower: Any, upper: Any) -> float:
        """Estimate the fraction of values inside ``[lower, upper]``.

        Unlike multiplying the two one-sided selectivities — which treats
        perfectly correlated bounds on the *same* column as independent —
        this estimates the interval's mass directly.  ``None`` bounds are
        open.
        """
        if lower is None and upper is None:
            return 1.0
        if lower is None:
            return self.range_selectivity("<=", upper)
        if upper is None:
            return self.range_selectivity(">=", lower)
        below_upper = self.range_selectivity("<=", upper)
        above_lower = self.range_selectivity(">=", lower)
        return max(below_upper + above_lower - 1.0, 1e-6)


class TableStats:
    """Lazily computed per-column statistics for a relation."""

    def __init__(self, relation: Relation):
        self.relation = relation
        self.row_count = len(relation)
        self._columns: Dict[str, ColumnStats] = {}

    def column(self, reference: str) -> Optional[ColumnStats]:
        """Stats for one column, or ``None`` if the reference is unknown."""
        if reference in self._columns:
            return self._columns[reference]
        if not self.relation.schema.has(reference):
            return None
        i = self.relation.schema.resolve(reference)
        stats = ColumnStats([row[i] for row in self.relation.rows])
        self._columns[reference] = stats
        return stats


def selectivity(
    predicate: Expression, stats: Optional[TableStats] = None
) -> float:
    """Estimated fraction of rows satisfying ``predicate``."""
    if isinstance(predicate, And):
        out = 1.0
        for part in predicate.operands:
            out *= selectivity(part, stats)
        return out
    if isinstance(predicate, Or):
        miss = 1.0
        for part in predicate.operands:
            miss *= 1.0 - selectivity(part, stats)
        return 1.0 - miss
    if isinstance(predicate, Not):
        return max(1.0 - selectivity(predicate.operand, stats), 1e-6)
    if isinstance(predicate, Comparison):
        return _comparison_selectivity(predicate, stats)
    if isinstance(predicate, Between):
        low = Comparison(">=", predicate.operand, predicate.low)
        high = Comparison("<=", predicate.operand, predicate.high)
        return selectivity(low, stats) * selectivity(high, stats)
    if isinstance(predicate, InList):
        base = _column_eq_selectivity(predicate.operand, stats)
        return min(base * max(len(predicate.values), 1), 1.0)
    if isinstance(predicate, IsNull):
        col_stats = _stats_for(predicate.operand, stats)
        if col_stats is not None:
            return max(col_stats.null_fraction, 1e-6)
        return 0.01
    return DEFAULT_SELECTIVITY


def join_cardinality(
    left_rows: float,
    right_rows: float,
    left_stats: Optional[ColumnStats],
    right_stats: Optional[ColumnStats],
) -> float:
    """Estimated output rows of an equi-join."""
    nd_left = left_stats.ndistinct if left_stats else max(left_rows, 1.0)
    nd_right = right_stats.ndistinct if right_stats else max(right_rows, 1.0)
    return left_rows * right_rows / max(nd_left, nd_right, 1.0)


# ----------------------------------------------------------------------
# internals
# ----------------------------------------------------------------------
def _comparison_selectivity(cmp: Comparison, stats: Optional[TableStats]) -> float:
    column, literal = _column_vs_literal(cmp)
    if column is None:
        if cmp.op == "=":
            return EQUALITY_DEFAULT
        if cmp.op in ("<>", "!="):
            return 1.0 - EQUALITY_DEFAULT
        return RANGE_DEFAULT
    col_stats = stats.column(column.name) if stats else None
    if cmp.op == "=":
        return col_stats.eq_selectivity() if col_stats else EQUALITY_DEFAULT
    if cmp.op in ("<>", "!="):
        base = col_stats.eq_selectivity() if col_stats else EQUALITY_DEFAULT
        return max(1.0 - base, 1e-6)
    if col_stats is not None and literal is not None:
        return col_stats.range_selectivity(cmp.op, literal)
    return RANGE_DEFAULT


def _column_vs_literal(cmp: Comparison) -> Tuple[Optional[Col], Any]:
    if isinstance(cmp.left, Col) and isinstance(cmp.right, Lit):
        return cmp.left, cmp.right.value
    if isinstance(cmp.right, Col) and isinstance(cmp.left, Lit):
        return cmp.right, cmp.left.value
    return None, None


def _column_eq_selectivity(expr: Expression, stats: Optional[TableStats]) -> float:
    col_stats = _stats_for(expr, stats)
    if col_stats is not None:
        return col_stats.eq_selectivity()
    return EQUALITY_DEFAULT


def _stats_for(expr: Expression, stats: Optional[TableStats]) -> Optional[ColumnStats]:
    if isinstance(expr, Col) and stats is not None:
        return stats.column(expr.name)
    return None


def _is_orderable(value: Any) -> bool:
    return isinstance(value, (int, float, datetime.date)) and not isinstance(value, bool)


def _as_number(value: Any) -> Optional[float]:
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, datetime.date):
        return float(value.toordinal())
    return None
