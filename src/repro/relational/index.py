"""Secondary indexes over relations, and the catalog that manages them.

The paper's performance argument (Figures 12-13) rests on U-relations being
*plain relations* the host DBMS can index: the tid-equijoins that reassemble
vertical partitions, and the selective scans of the experiment queries, run
as index accesses in PostgreSQL.  This module gives the substrate the same
capability:

* :class:`HashIndex`   — equality lookups (dict of key -> row bucket),
* :class:`SortedIndex` — binary-search point and range lookups over a
  key-sorted row array (the btree stand-in),
* :class:`IndexRegistry` — the named-index catalog a
  :class:`~repro.relational.database.Database` owns (``CREATE INDEX`` /
  ``DROP INDEX``), with rebuild-on-replacement maintenance.

Indexes *attach* to the :class:`~repro.relational.relation.Relation` they
cover (a private slot on the relation object).  The planner discovers
access paths through :func:`indexes_on`, so any code path that scans a
relation — including the U-relations translation, which builds
:class:`~repro.relational.algebra.Scan` nodes directly without going
through a :class:`Database` — sees the indexes.  Because relations are
immutable values, attachment is safe: an index can never go stale while its
relation object is alive, and replacing a relation in a catalog replaces
the object, at which point the registry rebuilds its definitions onto the
new one.

NULL semantics match the executor's comparisons: rows whose key contains
``None`` are excluded from every index (a NULL never compares equal, so an
equality or range lookup can never return it).
"""

from __future__ import annotations

import threading
from bisect import bisect_left, bisect_right
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .relation import Relation

__all__ = [
    "Index",
    "HashIndex",
    "SortedIndex",
    "IndexRegistry",
    "build_index",
    "attach_index",
    "detach_index",
    "defer_index",
    "indexes_on",
    "built_indexes_on",
    "attached_index_defs",
    "default_index_name",
    "ensure_index",
    "carry_indexes_appended",
    "carry_index_defs",
]

Row = Tuple[Any, ...]

#: Index kinds accepted by :func:`build_index` / ``CREATE INDEX ... USING``.
INDEX_KINDS = ("hash", "sorted")


class Index:
    """Base class: an access structure over one relation's column list."""

    kind = "index"

    def __init__(self, relation: Relation, columns: Sequence[str], name: Optional[str] = None):
        self.relation = relation
        positions = tuple(relation.schema.resolve(c) for c in columns)
        if len(set(positions)) != len(positions):
            raise ValueError(f"duplicate columns in index definition: {list(columns)}")
        self.positions: Tuple[int, ...] = positions
        #: Canonical column names (as they appear in the relation schema).
        self.columns: Tuple[str, ...] = tuple(
            relation.schema.names[p] for p in positions
        )
        self.name = name or default_index_name(self.columns)
        self._single = len(positions) == 1
        self._build()

    # ------------------------------------------------------------------
    def key_of(self, row: Row) -> Any:
        """The index key of a row: a scalar for single-column indexes, else
        a tuple; ``None``-containing keys are reported as ``None``."""
        if self._single:
            return row[self.positions[0]]
        key = tuple(row[p] for p in self.positions)
        if None in key:
            return None
        return key

    def _build(self) -> None:
        raise NotImplementedError

    def _derived_shell(self, relation: Relation) -> "Index":
        """A structure-less clone of this index over a replacement relation.

        Incremental maintenance (:func:`carry_indexes_appended`) fills the
        access structure in without re-running :meth:`_build`; the target
        relation must share the source relation's schema.
        """
        clone = type(self).__new__(type(self))
        clone.relation = relation
        clone.positions = self.positions
        clone.columns = self.columns
        clone.name = self.name
        clone._single = self._single
        return clone

    def extended(self, relation: Relation, start: int, appended: Sequence[Row]) -> "Index":
        """This index plus ``appended`` rows (live ordinals from ``start``).

        Used when ``relation`` was derived from this index's relation by a
        pure segment append: existing entries are carried over without
        touching the old rows, only the appended segment is indexed.
        """
        raise NotImplementedError

    def lookup(self, key: Any) -> Sequence[Row]:
        """All rows whose key equals ``key`` (in relation row order)."""
        raise NotImplementedError

    def lookup_fn(self):
        """The fastest point-lookup callable for hot loops.

        Returns a callable mapping a key to a bucket of rows; the result is
        falsy (``None`` or empty) when nothing matches.  Executors hoist
        this once per operator instead of paying a method dispatch per
        probe.
        """
        return self.lookup

    def __len__(self) -> int:
        """Number of indexed rows (NULL-keyed rows are not indexed)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, columns={list(self.columns)}, {len(self)} entries)"


class HashIndex(Index):
    """Equality-lookup index: a dict from key to its bucket of rows."""

    kind = "hash"

    def _build(self) -> None:
        table: Dict[Any, List[Row]] = {}
        setdefault = table.setdefault
        key_of = self.key_of
        count = 0
        for row in self.relation.rows:
            key = key_of(row)
            if key is None:
                continue
            setdefault(key, []).append(row)
            count += 1
        self._table = table
        self._count = count

    def extended(self, relation: Relation, start: int, appended: Sequence[Row]) -> "HashIndex":
        """Incremental append maintenance: O(existing keys + new rows).

        The bucket dict is copied shallowly (pointer copy, no re-hashing of
        old rows); a bucket is deep-copied only when an appended row lands
        in it, so the old index's buckets are never mutated.
        """
        clone = self._derived_shell(relation)
        table = dict(self._table)
        copied: set = set()
        key_of = clone.key_of
        count = self._count
        for row in appended:
            key = key_of(row)
            if key is None:
                continue
            bucket = table.get(key)
            if bucket is None:
                table[key] = [row]
            elif key in copied:
                bucket.append(row)
            else:
                table[key] = bucket + [row]
                copied.add(key)
            count += 1
        clone._table = table
        clone._count = count
        return clone

    def lookup(self, key: Any) -> Sequence[Row]:
        if key is None:
            return ()
        return self._table.get(key, ())

    def lookup_fn(self):
        return self._table.get  # plain dict.get: None for missing keys

    def mixed_table(self) -> Dict[Any, Any]:
        """A probe table storing single rows bare: key -> row | [rows].

        Most keys of a tuple-id index map to exactly one row; storing that
        row directly (instead of a one-element bucket) lets the columnar
        executor's generated probe kernels skip the bucket iterator for
        the common case — a ``type(value) is list`` test tells the two
        apart, since rows are tuples.  Built once and cached on the index.
        """
        mixed = getattr(self, "_mixed", None)
        if mixed is None:
            mixed = {
                key: bucket[0] if len(bucket) == 1 else bucket
                for key, bucket in self._table.items()
            }
            self._mixed = mixed
        return mixed

    def __len__(self) -> int:
        return self._count


class SortedIndex(Index):
    """Binary-search index: rows sorted by key, point + range lookups.

    Keys must be mutually comparable (homogeneous column types); building
    over an unsortable column raises ``TypeError`` — use a
    :class:`HashIndex` there instead.  Range lookups bound the *first*
    index column; multi-column sorted indexes still support point lookups
    and ordered scans.
    """

    kind = "sorted"

    def _build(self) -> None:
        key_of = self.key_of
        entries = [
            (key, ordinal, row)
            for ordinal, row in enumerate(self.relation.rows)
            if (key := key_of(row)) is not None
        ]
        entries.sort(key=lambda e: e[0])
        self._keys: List[Any] = [k for k, _, _ in entries]
        #: Original row ordinal per entry — range results are restored to
        #: relation order so downstream operators keep their locality.
        self._ordinals: List[int] = [o for _, o, _ in entries]
        self._rows: List[Row] = [r for _, _, r in entries]
        #: First key column only, for range bisection on multi-column keys.
        self._first: List[Any] = (
            self._keys if self._single else [k[0] for k in self._keys]
        )

    def extended(self, relation: Relation, start: int, appended: Sequence[Row]) -> "SortedIndex":
        """Incremental append maintenance: sort only the new rows, then
        merge the two key-sorted runs in one linear pass.

        Raises ``TypeError`` when an appended key does not compare against
        the existing keys (mixed types); callers fall back to a deferred
        rebuild in that case, like the eager auto-index policy does.
        """
        clone = self._derived_shell(relation)
        key_of = clone.key_of
        fresh = [
            (key, start + offset, row)
            for offset, row in enumerate(appended)
            if (key := key_of(row)) is not None
        ]
        fresh.sort(key=lambda e: e[0])
        old_keys, old_ordinals, old_rows = self._keys, self._ordinals, self._rows
        keys: List[Any] = []
        ordinals: List[int] = []
        rows: List[Row] = []
        i = j = 0
        n, m = len(old_keys), len(fresh)
        while i < n and j < m:
            if fresh[j][0] < old_keys[i]:  # may raise TypeError: caller rebuilds
                key, ordinal, row = fresh[j]
                j += 1
            else:
                key, ordinal, row = old_keys[i], old_ordinals[i], old_rows[i]
                i += 1
            keys.append(key)
            ordinals.append(ordinal)
            rows.append(row)
        if i < n:
            keys.extend(old_keys[i:])
            ordinals.extend(old_ordinals[i:])
            rows.extend(old_rows[i:])
        for key, ordinal, row in fresh[j:]:
            keys.append(key)
            ordinals.append(ordinal)
            rows.append(row)
        clone._keys = keys
        clone._ordinals = ordinals
        clone._rows = rows
        clone._first = keys if clone._single else [k[0] for k in keys]
        return clone

    def lookup(self, key: Any) -> Sequence[Row]:
        if key is None:
            return ()
        try:
            lo = bisect_left(self._keys, key)
            hi = bisect_right(self._keys, key)
        except TypeError:
            # a type-mismatched key can never compare equal to any stored
            # key: equality never raises in the executor, so neither do we
            return ()
        return self._rows[lo:hi]

    def range(
        self,
        lower: Any = None,
        upper: Any = None,
        lower_inclusive: bool = True,
        upper_inclusive: bool = True,
    ) -> Sequence[Row]:
        """Rows whose first key column lies within the given bounds.

        ``None`` bounds are open.  For multi-column indexes the bound
        applies to the first column.  Results are returned in *relation*
        order, not key order: emitting a large range in key order makes
        every downstream probe/touch jump randomly through memory, which
        costs more than the ordinal re-sort here.
        """
        first = self._first
        lo = 0
        hi = len(first)
        if lower is not None:
            lo = bisect_left(first, lower) if lower_inclusive else bisect_right(first, lower)
        if upper is not None:
            hi = bisect_right(first, upper) if upper_inclusive else bisect_left(first, upper)
        if hi <= lo:
            return ()
        matched = sorted(zip(self._ordinals[lo:hi], self._rows[lo:hi]))
        return [row for _, row in matched]

    def ordered(self) -> Sequence[Row]:
        """All indexed rows in ascending key order."""
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)


_KIND_CLASSES = {"hash": HashIndex, "sorted": SortedIndex}


def build_index(
    relation: Relation, columns: Sequence[str], kind: str = "hash", name: Optional[str] = None
) -> Index:
    """Construct (but do not attach) an index of the given kind."""
    try:
        cls = _KIND_CLASSES[kind]
    except KeyError:
        raise ValueError(f"unknown index kind {kind!r} (use one of {list(INDEX_KINDS)})") from None
    return cls(relation, columns, name=name)


# ----------------------------------------------------------------------
# attachment: indexes live on the relation object they cover
# ----------------------------------------------------------------------
#: Serializes attach/detach and deferred-build materialization.  One
#: process-wide RLock (builds can re-enter through ``ensure_index`` →
#: ``indexes_on``): concurrent planners discovering access paths while a
#: DDL thread creates/drops indexes must never observe a half-attached
#: list, and a deferred auto-index must be built exactly once even when N
#: sessions hit the first planner access simultaneously.
_ATTACH_LOCK = threading.RLock()


def attach_index(relation: Relation, index: Index) -> None:
    """Attach an index to its relation so planners can discover it.

    Attaching changes the access paths a fresh plan over the relation
    would choose, so the prepared-plan cache is told (every index build —
    ``CREATE INDEX``, registry rebuilds, and the deferred auto-index
    builds that materialize on first planner access — funnels through
    here): dependent cached plans are evicted and watching catalogs bump
    their version.
    """
    if index.relation is not relation:
        raise ValueError("index was built over a different relation object")
    with _ATTACH_LOCK:
        existing = getattr(relation, "_indexes", None)
        if existing is None:
            relation._indexes = [index]
        elif index not in existing:
            existing.append(index)
        else:
            return  # already attached: no access-path change
        from .plancache import bump_relation

        bump_relation(relation)


def detach_index(relation: Relation, index: Index) -> None:
    """Remove an attached index (no-op if it is not attached).

    Like :func:`attach_index`, a successful detach is a catalog mutation:
    cached plans probing the index are evicted through the plan cache.
    """
    with _ATTACH_LOCK:
        existing = getattr(relation, "_indexes", None)
        if existing and index in existing:
            existing.remove(index)
            from .plancache import bump_relation

            bump_relation(relation)


def default_index_name(columns: Sequence[str]) -> str:
    """The name an index over ``columns`` gets when none is given."""
    return f"idx_{'_'.join(c.replace('.', '_') for c in columns)}"


def defer_index(
    relation: Relation,
    columns: Sequence[str],
    kind: str = "hash",
    name: Optional[str] = None,
) -> None:
    """Record an index *definition* to be built on first planner access.

    Write-only pipelines (data conversion, save) never trigger the build;
    the first :func:`indexes_on` call — which is how planners discover
    access paths — materializes every pending definition.  A definition
    whose name is already attached or pending is skipped (idempotent).
    Sorted definitions over unsortable columns are skipped silently at
    materialization time, matching the eager auto-indexing policy.
    """
    effective = name or default_index_name(columns)
    with _ATTACH_LOCK:
        for index in getattr(relation, "_indexes", None) or ():
            if index.name == effective:
                return
        pending = getattr(relation, "_pending_indexes", None)
        if pending is None:
            pending = []
            relation._pending_indexes = pending
        if any((d[2] or default_index_name(d[0])) == effective for d in pending):
            return
        pending.append((tuple(columns), kind, name))


def _materialize_pending(relation: Relation) -> None:
    from .schema import SchemaError

    pending = getattr(relation, "_pending_indexes", None)
    if not pending:
        return
    with _ATTACH_LOCK:
        # re-read under the lock: another planner thread may have built
        # (and detached) the pending list while we waited
        pending = getattr(relation, "_pending_indexes", None)
        if not pending:
            return
        # detach the list first: ensure_index consults indexes_on, which
        # would otherwise re-enter this function once per remaining
        # definition
        relation._pending_indexes = []
        while pending:
            columns, kind, name = pending.pop(0)
            try:
                ensure_index(relation, list(columns), kind=kind, name=name)
            except (TypeError, SchemaError):
                # unsortable column / stale definition (e.g. schema drift
                # in a persisted directory): this index stays unavailable,
                # the relation stays queryable via sequential scans
                pass
            except BaseException:
                # an unexpected error loses only the definition that raised
                # — re-attach the ones still queued behind it
                relation._pending_indexes = pending
                raise


def indexes_on(relation: Relation) -> Tuple[Index, ...]:
    """All indexes attached to a relation (hash indexes first).

    This is the planner's discovery hook: any index definitions deferred
    by :func:`defer_index` are built here, on first access (exactly once,
    even under concurrent planning — see :data:`_ATTACH_LOCK`).
    """
    _materialize_pending(relation)
    with _ATTACH_LOCK:
        existing = getattr(relation, "_indexes", None)
        if not existing:
            return ()
        return tuple(sorted(existing, key=lambda i: i.kind != "hash"))


def built_indexes_on(relation: Relation) -> Tuple[Index, ...]:
    """Already-built attached indexes only — never triggers deferred builds.

    Executor-side opportunistic consumers (e.g. the presorted merge-join
    path) use this so an execution-time peek cannot force the lazy
    auto-index builds that :func:`defer_index` postponed.
    """
    with _ATTACH_LOCK:
        existing = getattr(relation, "_indexes", None)
        if not existing:
            return ()
        return tuple(existing)


def attached_index_defs(relation: Relation) -> List[Tuple[Tuple[str, ...], str, str]]:
    """(columns, kind, name) of built *and* pending indexes, without building.

    Persistence uses this so saving a database with deferred auto-indexes
    records their definitions without paying the builds.
    """
    defs: List[Tuple[Tuple[str, ...], str, str]] = []
    for index in getattr(relation, "_indexes", None) or ():
        defs.append((index.columns, index.kind, index.name))
    for columns, kind, name in getattr(relation, "_pending_indexes", None) or ():
        defs.append((tuple(columns), kind, name or default_index_name(columns)))
    return defs


def ensure_index(
    relation: Relation, columns: Sequence[str], kind: str = "hash", name: Optional[str] = None
) -> Index:
    """Reuse an equivalent attached index or build-and-attach a new one.

    An equivalent index is only reused when the caller did not ask for a
    specific ``name`` (or asked for the one it already has) — EXPLAIN
    attributes scans by index name, so an explicitly-named creation must
    yield an index that actually bears that name.
    """
    positions = tuple(relation.schema.resolve(c) for c in columns)
    for index in indexes_on(relation):
        if (
            index.positions == positions
            and index.kind == kind
            and (name is None or index.name == name)
        ):
            return index
    index = build_index(relation, columns, kind=kind, name=name)
    attach_index(relation, index)
    return index


# ----------------------------------------------------------------------
# write-path maintenance: carry access paths onto a derived relation
# ----------------------------------------------------------------------
def carry_indexes_appended(old: Relation, new: Relation, appended_count: int) -> None:
    """Maintain ``old``'s indexes incrementally onto an append-derived ``new``.

    ``new`` must be ``old`` plus ``appended_count`` rows at the end of
    ``new.rows`` (a pure segment append: same delete vector, same live
    prefix).  Built indexes are *extended* — per appended segment, never a
    rebuild over the old rows; still-pending (deferred) definitions are
    copied over as pending.  An index whose new keys do not merge
    (``TypeError``) degrades to a deferred rebuild of just that index.

    No plan-cache bump happens here: ``new`` is a fresh, unpublished
    relation object, so no cached plan can depend on it yet.  The caller
    bumps ``old`` when it swaps the catalog entry.
    """
    start = len(new.rows) - appended_count
    appended = new.rows[start:]
    with _ATTACH_LOCK:
        built = list(getattr(old, "_indexes", None) or ())
        pending = list(getattr(old, "_pending_indexes", None) or ())
    derived: List[Index] = []
    for index in built:
        try:
            derived.append(index.extended(new, start, appended))
        except (TypeError, NotImplementedError):
            pending.append((index.columns, index.kind, index.name))
    with _ATTACH_LOCK:
        if derived:
            new._indexes = derived
        if pending:
            new._pending_indexes = pending


def carry_index_defs(old: Relation, new: Relation) -> None:
    """Re-defer every index of ``old`` (built or pending) onto ``new``.

    The fallback for derivations that invalidate stored ordinals (delete
    vectors, updates): definitions survive, structures rebuild lazily on
    the next planner access, serialized on the build lock as usual.
    """
    for columns, kind, name in attached_index_defs(old):
        defer_index(new, columns, kind=kind, name=name)


# ----------------------------------------------------------------------
# the named-index catalog owned by a Database
# ----------------------------------------------------------------------
class IndexRegistry:
    """Named index definitions over a catalog of named relations.

    The registry stores *definitions* (name, table, columns, kind) plus the
    live :class:`Index` objects, and keeps them attached to the current
    relation object of each table.  When a table's relation is replaced
    (``Database.create(..., replace=True)``), :meth:`rebuild_table` carries
    every definition over to the new relation.
    """

    def __init__(self) -> None:
        self._indexes: Dict[str, Index] = {}
        self._tables: Dict[str, str] = {}

    # -- catalog ------------------------------------------------------
    def create(
        self,
        name: str,
        table: str,
        relation: Relation,
        columns: Sequence[str],
        kind: str = "hash",
        replace: bool = False,
    ) -> Index:
        """Create (or with ``replace=True`` re-create) a named index."""
        if name in self._indexes:
            existing = self._indexes[name]
            if (
                existing.relation is relation
                and existing.kind == kind
                and existing.columns == tuple(relation.schema.names[p] for p in existing.positions)
                and self._tables[name] == table
                and existing.positions == tuple(relation.schema.resolve(c) for c in columns)
            ):
                return existing  # identical definition: idempotent
            if not replace:
                raise KeyError(f"index {name!r} already exists")
            self.drop(name)
        index = ensure_index(relation, columns, kind=kind, name=name)
        self._indexes[name] = index
        self._tables[name] = table
        return index

    def drop(self, name: str) -> None:
        """Drop a named index and detach it from its relation."""
        try:
            index = self._indexes.pop(name)
        except KeyError:
            raise KeyError(f"index {name!r} not found; have {sorted(self._indexes)}") from None
        self._tables.pop(name, None)
        # only detach when no other registry entry shares the object
        if index not in self._indexes.values():
            detach_index(index.relation, index)

    def drop_table(self, table: str) -> None:
        """Drop every index defined on a table (table itself was dropped)."""
        for name in [n for n, t in self._tables.items() if t == table]:
            self.drop(name)

    def rebuild_table(self, table: str, relation: Relation) -> None:
        """Re-create all of a table's indexes over its replacement relation.

        All-or-nothing: every replacement index is built *before* anything
        is swapped, so a definition the new relation cannot satisfy (a
        dropped column, an unsortable type) raises without leaving the
        registry half-rebuilt or the old indexes detached.
        """
        names = [n for n, t in self._tables.items() if t == table]
        rebuilt = {
            name: build_index(
                relation,
                self._indexes[name].columns,
                kind=self._indexes[name].kind,
                name=name,
            )
            for name in names
        }
        for name, index in rebuilt.items():
            old = self._indexes[name]
            detach_index(old.relation, old)
            attach_index(relation, index)
            self._indexes[name] = index

    # -- inspection ---------------------------------------------------
    def get(self, name: str) -> Index:
        try:
            return self._indexes[name]
        except KeyError:
            raise KeyError(f"index {name!r} not found; have {sorted(self._indexes)}") from None

    def table_of(self, name: str) -> str:
        self.get(name)
        return self._tables[name]

    def __contains__(self, name: str) -> bool:
        return name in self._indexes

    def __len__(self) -> int:
        return len(self._indexes)

    def names(self, table: Optional[str] = None) -> List[str]:
        if table is None:
            return sorted(self._indexes)
        return sorted(n for n, t in self._tables.items() if t == table)

    def on_table(self, table: str) -> List[Index]:
        return [self._indexes[n] for n in self.names(table)]

    def definitions(self) -> List[Tuple[str, str, Tuple[str, ...], str]]:
        """(name, table, columns, kind) for every index, sorted by name."""
        return [
            (n, self._tables[n], self._indexes[n].columns, self._indexes[n].kind)
            for n in sorted(self._indexes)
        ]
