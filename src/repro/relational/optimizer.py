"""Logical plan optimizer.

Implements the classical rewrites the paper relies on PostgreSQL for:

1. **Conjunct splitting + selection pushdown** — σ over AND splits into
   cascaded selections, each pushed as far toward the leaves as its column
   references allow (through projections, renames, distinct, and into the
   matching side of joins/products).
2. **Product-to-join conversion** — a selection over a cartesian product
   whose conjuncts span both sides becomes a join predicate.
3. **Greedy selectivity-based join ordering** — cascades of joins/products
   are flattened into a join graph and re-assembled left-deep, choosing at
   each step the input that minimizes the estimated intermediate result,
   avoiding cross products when any connected choice exists.  This is the
   "standard selectivity-based cost measure" behaviour that Section 3 of the
   paper reports works well for translated U-relation queries.
4. **Column pruning** — projections are inserted above join inputs so that
   only columns needed upstream flow through the pipeline (the paper's
   plan P3 of Figure 3 projects away value attributes early).

The entry point is :func:`optimize`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple
from weakref import WeakKeyDictionary

from .algebra import (
    Difference,
    Distinct,
    Extend,
    Join,
    Plan,
    Product,
    Project,
    ProjectAs,
    Rename,
    Scan,
    Select,
    Union,
)
from .expressions import (
    Expression,
    columns_of,
    conjunction,
    equijoin_pairs,
    split_conjuncts,
)
from .statistics import (
    DEFAULT_SELECTIVITY,
    ColumnStats,
    TableStats,
    join_cardinality,
    selectivity,
)

__all__ = [
    "optimize",
    "push_selections",
    "order_joins",
    "prune_columns",
    "estimate_rows",
    "scan_stats",
    "refresh_statistics",
]


def optimize(plan: Plan) -> Plan:
    """Full rewrite pipeline: pushdown, join ordering, column pruning."""
    original_names = plan.schema.names
    plan = push_selections(plan)
    plan = order_joins(plan)
    plan = push_selections(plan)  # join reordering can expose new pushdowns
    plan = prune_columns(plan, set(original_names))
    if plan.schema.names != original_names:
        plan = Project(plan, original_names)
    return plan


# ======================================================================
# selection pushdown
# ======================================================================
def push_selections(plan: Plan) -> Plan:
    """Split conjunctions and push selections toward the leaves."""
    plan = plan.with_children([push_selections(c) for c in plan.children])
    if isinstance(plan, Select):
        conjuncts = split_conjuncts(plan.predicate)
        return _push_conjuncts(plan.child, conjuncts)
    return plan


def _push_conjuncts(child: Plan, conjuncts: Sequence[Expression]) -> Plan:
    """Push each conjunct into ``child`` where possible; wrap the rest."""
    remaining: List[Expression] = []
    for conjunct in conjuncts:
        pushed = _push_one(child, conjunct)
        if pushed is None:
            remaining.append(conjunct)
        else:
            child = pushed
    if remaining:
        return Select(child, conjunction(remaining))
    return child


def _push_one(plan: Plan, conjunct: Expression) -> Optional[Plan]:
    """Try to push one conjunct below ``plan``; return new plan or None."""
    refs = columns_of(conjunct)

    if isinstance(plan, Select):
        inner = _push_one(plan.child, conjunct)
        if inner is not None:
            return Select(inner, plan.predicate)
        return Select(plan.child, conjunction([plan.predicate, conjunct]))

    if isinstance(plan, Project):
        if all(plan.child.schema.has(r) for r in refs):
            return Project(_push_into(plan.child, conjunct), plan.columns)
        return None

    if isinstance(plan, ProjectAs):
        mapping = {new: ref for ref, new in plan.items}
        if all(r in mapping for r in refs):
            translated = _substitute_columns(conjunct, mapping)
            return ProjectAs(_push_into(plan.child, translated), plan.items)
        return None

    if isinstance(plan, Distinct):
        return Distinct(_push_into(plan.child, conjunct))

    if isinstance(plan, Rename):
        inverse = {new: old for old, new in plan.mapping.items()}
        if any(r in inverse or _base_in(inverse, r) for r in refs):
            # renamed columns appear in the predicate: keep it above the rename
            return None
        if all(plan.child.schema.has(r) for r in refs):
            return Rename(_push_into(plan.child, conjunct), plan.mapping)
        return None

    if isinstance(plan, (Join, Product)):
        left, right = plan.children
        left_covers = all(left.schema.has(r) for r in refs)
        right_covers = all(right.schema.has(r) for r in refs)
        if left_covers and not right_covers:
            return plan.with_children([_push_into(left, conjunct), right])
        if right_covers and not left_covers:
            return plan.with_children([left, _push_into(right, conjunct)])
        if left_covers and right_covers:
            # ambiguous (same base name on both sides) — keep above
            return None
        # spans both sides: merge into the join predicate
        if isinstance(plan, Join):
            return Join(left, right, conjunction([plan.predicate, conjunct]))
        return Join(left, right, conjunct)

    if isinstance(plan, Union):
        left, right = plan.children
        if all(plan.schema.has(r) for r in refs):
            # union uses the left schema's names; translate positionally
            try:
                right_conjunct = _translate_positionally(conjunct, plan, right)
            except Exception:
                return None
            return Union(_push_into(left, conjunct), _push_into(right, right_conjunct))
        return None

    return None


def _push_into(plan: Plan, conjunct: Expression) -> Plan:
    """Push a conjunct into a plan, wrapping with Select if it won't go lower."""
    pushed = _push_one(plan, conjunct)
    if pushed is not None:
        return pushed
    return Select(plan, conjunct)


def _base_in(mapping: Dict[str, str], reference: str) -> bool:
    base = reference.split(".", 1)[-1]
    return any(key.split(".", 1)[-1] == base for key in mapping)


def _translate_positionally(conjunct: Expression, union_plan: Plan, right: Plan) -> Expression:
    """Rewrite column refs of a conjunct from the union's (left) names to the
    right child's names by position."""
    from .expressions import Col

    left_names = union_plan.schema.names
    right_names = right.schema.names
    position = {name: i for i, name in enumerate(left_names)}

    def rewrite(expr: Expression) -> Expression:
        if isinstance(expr, Col):
            idx = position.get(expr.name)
            if idx is None:
                idx = position[left_names[union_plan.schema.resolve(expr.name)]]
            return Col(right_names[idx])
        clone = expr.__class__.__new__(expr.__class__)
        for slot in _iter_slots(expr):
            value = getattr(expr, slot)
            if isinstance(value, Expression):
                value = rewrite(value)
            elif isinstance(value, tuple) and value and isinstance(value[0], Expression):
                value = tuple(rewrite(v) for v in value)
            object.__setattr__(clone, slot, value)
        return clone

    return rewrite(conjunct)


def _substitute_columns(conjunct: Expression, mapping: Dict[str, str]) -> Expression:
    """Rewrite column references through an output-name -> input-ref mapping."""
    from .expressions import Col

    def rewrite(expr: Expression) -> Expression:
        if isinstance(expr, Col):
            return Col(mapping.get(expr.name, expr.name))
        clone = expr.__class__.__new__(expr.__class__)
        for slot in _iter_slots(expr):
            value = getattr(expr, slot)
            if isinstance(value, Expression):
                value = rewrite(value)
            elif isinstance(value, tuple) and value and isinstance(value[0], Expression):
                value = tuple(rewrite(v) for v in value)
            object.__setattr__(clone, slot, value)
        return clone

    return rewrite(conjunct)


def _iter_slots(expr: Expression):
    for klass in type(expr).__mro__:
        for slot in getattr(klass, "__slots__", ()):
            yield slot


# ======================================================================
# cardinality estimation
# ======================================================================
_stats_cache: Dict[int, TableStats] = {}


def _table_stats(scan: Scan) -> TableStats:
    key = id(scan.relation)
    stats = _stats_cache.get(key)
    if stats is None or stats.relation is not scan.relation:
        stats = TableStats(scan.relation)
        _stats_cache[key] = stats
    return stats


def scan_stats(scan: Scan) -> TableStats:
    """Cached per-table statistics for a base-relation scan.

    Public so the planner's access-path selection shares the optimizer's
    statistics cache when costing candidate index scans.
    """
    return _table_stats(scan)


def refresh_statistics(relation) -> None:
    """Drop cached statistics for a relation (the ``ANALYZE`` analogue).

    A statistics refresh is a catalog mutation for plan-caching purposes:
    cached plans were costed against the old estimates, so the relation's
    plan-cache epoch is bumped — dependent prepared plans are evicted and
    watching catalogs bump their version — and the next planning pass
    recomputes :class:`TableStats` lazily.
    """
    from .plancache import bump_relation

    _stats_cache.pop(id(relation), None)
    bump_relation(relation)


def _column_stats(plan: Plan, reference: str) -> Optional[ColumnStats]:
    """Find stats for a column by descending to the base scan that carries it."""
    if isinstance(plan, Scan):
        if plan.schema.has(reference):
            idx = plan.schema.resolve(reference)
            return _table_stats(plan).column(plan.relation.schema.names[idx])
        return None
    if isinstance(plan, Rename):
        inverse = {new: old for old, new in plan.mapping.items()}
        mapped = inverse.get(reference, reference)
        return _column_stats(plan.child, mapped)
    for child in plan.children:
        if child.schema.has(reference):
            return _column_stats(child, reference)
    return None


#: Memo for :func:`estimate_rows`.  Logical plans are immutable trees, so
#: an estimate never changes once computed; without the memo the planner's
#: per-node estimation is quadratic in plan size.  Weak keys let discarded
#: rewrite candidates (join-order trials) drop out.
_estimate_cache: "WeakKeyDictionary[Plan, float]" = WeakKeyDictionary()


def estimate_rows(plan: Plan) -> float:
    """Estimated output cardinality of a logical plan (memoized)."""
    value = _estimate_cache.get(plan)
    if value is None:
        value = _estimate_rows(plan)
        _estimate_cache[plan] = value
    return value


def _estimate_rows(plan: Plan) -> float:
    if isinstance(plan, Scan):
        return float(len(plan.relation))
    if isinstance(plan, Select):
        stats = _PlanStats(plan.child)
        return max(estimate_rows(plan.child) * selectivity(plan.predicate, stats), 0.1)
    if isinstance(plan, (Project, ProjectAs, Rename, Extend)):
        return estimate_rows(plan.children[0])
    if isinstance(plan, Distinct):
        return max(estimate_rows(plan.children[0]) * 0.9, 0.1)
    if isinstance(plan, Join):
        return _estimate_join(plan)
    if isinstance(plan, Product):
        left, right = plan.children
        return estimate_rows(left) * estimate_rows(right)
    if isinstance(plan, Union):
        left, right = plan.children
        return estimate_rows(left) + estimate_rows(right)
    if isinstance(plan, Difference):
        return estimate_rows(plan.children[0])
    from .algebra import ConfCompute as _ConfCompute
    from .algebra import SemiJoin as _SemiJoin

    if isinstance(plan, _SemiJoin):
        return max(estimate_rows(plan.children[0]) * 0.5, 0.1)
    if isinstance(plan, _ConfCompute):
        # one output row per distinct value tuple of the input U-relation
        return max(estimate_rows(plan.children[0]) * 0.5, 1.0)
    return 1000.0


def _estimate_join(plan: Join) -> float:
    left, right = plan.children
    left_rows = estimate_rows(left)
    right_rows = estimate_rows(right)
    pairs, residual = equijoin_pairs(plan.predicate, left.schema, right.schema)
    if pairs:
        best = left_rows * right_rows
        for l, r in pairs:
            cardinality = join_cardinality(
                left_rows, right_rows, _column_stats(left, l), _column_stats(right, r)
            )
            best = min(best, cardinality)
        for res in residual:
            best *= DEFAULT_SELECTIVITY if not _is_psi_shaped(res) else 0.9
        return max(best, 0.1)
    return max(left_rows * right_rows * DEFAULT_SELECTIVITY, 0.1)


def _is_psi_shaped(expression: Expression) -> bool:
    """Heuristic: ψ-conditions (Var mismatch OR Rng equal) are barely selective."""
    from .expressions import Or

    return isinstance(expression, Or)


class _PlanStats:
    """A :class:`TableStats`-compatible view resolving refs through a plan.

    ``Select`` predicates routinely reference alias-qualified names
    ("o.orderdate") introduced by renames above the base scan; the base
    relation's :class:`TableStats` only knows base names, so a direct
    lookup missed and selectivity fell back to defaults.  Resolving by
    *position* through the rename chain (what :func:`_column_stats` does)
    recovers the real column statistics, keeping Select estimates sharp
    under aliases — which is what orders joins well.
    """

    __slots__ = ("plan",)

    def __init__(self, plan: Plan):
        self.plan = plan

    def column(self, reference: str) -> Optional[ColumnStats]:
        return _column_stats(self.plan, reference)


# ======================================================================
# join ordering
# ======================================================================
def order_joins(plan: Plan) -> Plan:
    """Flatten join cascades and re-assemble them greedily by cardinality."""
    plan = plan.with_children([order_joins(c) for c in plan.children])
    if not isinstance(plan, (Join, Product)):
        return plan

    leaves, predicates = _flatten_joins(plan)
    if len(leaves) <= 2:
        return plan
    ordered = _greedy_order(leaves, predicates)
    return ordered


def _flatten_joins(plan: Plan) -> Tuple[List[Plan], List[Expression]]:
    """Collect the leaf inputs and all join conjuncts of a join/product tree."""
    leaves: List[Plan] = []
    predicates: List[Expression] = []

    def walk(node: Plan) -> None:
        if isinstance(node, Join):
            predicates.extend(split_conjuncts(node.predicate))
            walk(node.left)
            walk(node.right)
        elif isinstance(node, Product):
            walk(node.left)
            walk(node.right)
        else:
            leaves.append(node)

    walk(plan)
    return leaves, predicates


def _greedy_order(leaves: List[Plan], predicates: List[Expression]) -> Plan:
    """Left-deep greedy join ordering avoiding cross products when possible."""
    unused = list(predicates)
    remaining = list(leaves)

    def applicable(schema_names: Set[str], extra: Plan) -> List[Expression]:
        combined = schema_names | set(extra.schema.names)
        picked = []
        for p in unused:
            if all(_resolvable(combined, r) for r in columns_of(p)):
                picked.append(p)
        return picked

    # seed with the smallest leaf
    remaining.sort(key=estimate_rows)
    current = remaining.pop(0)

    while remaining:
        best_idx: Optional[int] = None
        best_cost = float("inf")
        best_connected = False
        for i, candidate in enumerate(remaining):
            preds = applicable(set(current.schema.names), candidate)
            connected = bool(preds)
            trial = (
                Join(current, candidate, conjunction(preds))
                if preds
                else Product(current, candidate)
            )
            cost = estimate_rows(trial)
            if (connected, -cost) > (best_connected, -best_cost):
                best_idx, best_cost, best_connected = i, cost, connected
        candidate = remaining.pop(best_idx)
        preds = applicable(set(current.schema.names), candidate)
        if preds:
            for p in preds:
                unused.remove(p)
            current = Join(current, candidate, conjunction(preds))
        else:
            current = Product(current, candidate)

    if unused:
        current = Select(current, conjunction(unused))
    return current


def _resolvable(names: Set[str], reference: str) -> bool:
    if reference in names:
        return True
    base = reference.split(".", 1)[-1]
    matches = [n for n in names if n.split(".", 1)[-1] == base]
    return len(matches) == 1 and "." not in reference


# ======================================================================
# column pruning
# ======================================================================
def prune_columns(plan: Plan, required: Set[str]) -> Plan:
    """Insert projections so only upstream-needed columns flow through."""
    if isinstance(plan, Project):
        child_required = set()
        for c in plan.columns:
            child_required.add(plan.child.schema.names[plan.child.schema.resolve(c)])
        return Project(prune_columns(plan.child, child_required), plan.columns)

    if isinstance(plan, ProjectAs):
        child_required = set()
        for ref, _new in plan.items:
            child_required.add(plan.child.schema.names[plan.child.schema.resolve(ref)])
        return ProjectAs(prune_columns(plan.child, child_required), plan.items)

    if isinstance(plan, Select):
        child_required = set(required)
        for r in columns_of(plan.predicate):
            child_required.add(plan.child.schema.names[plan.child.schema.resolve(r)])
        return Select(prune_columns(plan.child, child_required), plan.predicate)

    if isinstance(plan, (Join, Product)):
        left, right = plan.children
        needed = set(required)
        if isinstance(plan, Join):
            for r in columns_of(plan.predicate):
                needed.add(plan.schema.names[plan.schema.resolve(r)])
        left_req = {n for n in needed if n in set(left.schema.names)}
        right_req = {n for n in needed if n in set(right.schema.names)}
        new_left = _maybe_project(prune_columns(left, left_req), left_req)
        new_right = _maybe_project(prune_columns(right, right_req), right_req)
        return plan.with_children([new_left, new_right])

    if isinstance(plan, (Distinct, Union, Difference)):
        # these need all columns positionally / semantically
        return plan.with_children(
            [prune_columns(c, set(c.schema.names)) for c in plan.children]
        )

    if isinstance(plan, Rename):
        inverse = {new: old for old, new in plan.mapping.items()}
        child_required = set()
        for name in required:
            old = inverse.get(name, name)
            if plan.child.schema.has(old):
                child_required.add(plan.child.schema.names[plan.child.schema.resolve(old)])
        child_required |= {
            plan.child.schema.names[plan.child.schema.resolve(o)] for o in plan.mapping
        }
        return Rename(prune_columns(plan.child, child_required), plan.mapping)

    return plan


def _maybe_project(plan: Plan, required: Set[str]) -> Plan:
    names = plan.schema.names
    keep = [n for n in names if n in required]
    if not keep:
        keep = names[:1]  # must keep at least one column
    if len(keep) == len(names):
        return plan
    if isinstance(plan, Project):
        return Project(plan.child, [plan.columns[names.index(k)] for k in keep])
    return Project(plan, keep)
