"""Value types for the in-memory relational engine.

The engine stores plain Python values inside row tuples: ``int``, ``float``,
``str``, ``bool``, :class:`datetime.date`, and ``None`` (SQL NULL).  This
module provides the small amount of type machinery the rest of the engine
needs:

* a :class:`DataType` enumeration used in schemas and statistics,
* type inference for Python values and text parsing for CSV-style input,
* three-valued-logic-free comparison helpers (the engine treats ``None`` as
  incomparable; predicates over ``None`` evaluate to ``False``).

Dates are ordinary :class:`datetime.date` objects so the natural ``<``/``>``
operators used by predicates such as ``o_orderdate > DATE '1995-03-15'`` work
without special cases.
"""

from __future__ import annotations

import datetime
import enum
from typing import Any, Optional

__all__ = [
    "DataType",
    "Date",
    "infer_type",
    "parse_value",
    "format_value",
    "coerce",
]


class DataType(enum.Enum):
    """Logical column types used by schemas and the statistics module."""

    INT = "int"
    FLOAT = "float"
    STR = "str"
    BOOL = "bool"
    DATE = "date"
    ANY = "any"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DataType.{self.name}"


def Date(text_or_year: Any, month: Optional[int] = None, day: Optional[int] = None) -> datetime.date:
    """Construct a date either from ``'YYYY-MM-DD'`` text or from components.

    Examples
    --------
    >>> Date("1995-03-15")
    datetime.date(1995, 3, 15)
    >>> Date(1995, 3, 15)
    datetime.date(1995, 3, 15)
    """
    if month is None:
        if isinstance(text_or_year, datetime.date):
            return text_or_year
        year_s, month_s, day_s = str(text_or_year).split("-")
        return datetime.date(int(year_s), int(month_s), int(day_s))
    return datetime.date(int(text_or_year), int(month), int(day or 1))


_PY_TO_TYPE = {
    bool: DataType.BOOL,  # must precede int: bool is a subclass of int
    int: DataType.INT,
    float: DataType.FLOAT,
    str: DataType.STR,
    datetime.date: DataType.DATE,
}


def infer_type(value: Any) -> DataType:
    """Return the :class:`DataType` of a Python value (``None`` -> ``ANY``)."""
    if value is None:
        return DataType.ANY
    for py_type, data_type in _PY_TO_TYPE.items():
        if type(value) is py_type:
            return data_type
    if isinstance(value, datetime.date):
        return DataType.DATE
    if isinstance(value, int):
        return DataType.INT
    if isinstance(value, float):
        return DataType.FLOAT
    if isinstance(value, str):
        return DataType.STR
    return DataType.ANY


def parse_value(text: str, data_type: DataType) -> Any:
    """Parse a text field (e.g. from CSV) into a typed Python value.

    Empty strings parse to ``None`` for every type except :data:`DataType.STR`.
    """
    if text == "" and data_type is not DataType.STR:
        return None
    if data_type is DataType.INT:
        return int(text)
    if data_type is DataType.FLOAT:
        return float(text)
    if data_type is DataType.BOOL:
        return text.strip().lower() in ("1", "true", "t", "yes")
    if data_type is DataType.DATE:
        return Date(text)
    return text


def format_value(value: Any) -> str:
    """Render a value for plan/table output (``None`` -> ``NULL``)."""
    if value is None:
        return "NULL"
    if isinstance(value, float):
        return f"{value:g}"
    if isinstance(value, datetime.date):
        return value.isoformat()
    return str(value)


def coerce(value: Any, data_type: DataType) -> Any:
    """Coerce a Python value to the requested type, if sensible.

    Used by loaders; raises :class:`TypeError` on impossible coercions so
    schema mismatches surface early rather than as bad query answers.
    """
    if value is None or data_type is DataType.ANY:
        return value
    current = infer_type(value)
    if current is data_type:
        return value
    if data_type is DataType.FLOAT and current is DataType.INT:
        return float(value)
    if data_type is DataType.INT and current is DataType.FLOAT and float(value).is_integer():
        return int(value)
    if data_type is DataType.STR:
        return format_value(value)
    if current is DataType.STR:
        return parse_value(value, data_type)
    raise TypeError(f"cannot coerce {value!r} ({current.value}) to {data_type.value}")
