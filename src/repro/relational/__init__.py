"""``repro.relational`` — the in-memory relational engine substrate.

This package is a stand-in for the off-the-shelf RDBMS (PostgreSQL 8.2) the
paper runs on: typed schemas, relational algebra (logical plans), a rewrite
optimizer with selection pushdown / join ordering / column pruning, physical
operators (hash, merge, and nested-loop joins), and PostgreSQL-style EXPLAIN
output.

Quick tour::

    from repro.relational import Database, Relation, Scan, Select, col, lit

    db = Database()
    db.create("r", Relation(["a", "b"], [(1, "x"), (2, "y")]))
    result = db.run(Select(db.scan("r"), col("a") > lit(1)))
"""

from .algebra import (
    Difference,
    Distinct,
    Extend,
    Join,
    Plan,
    Product,
    Project,
    ProjectAs,
    Rename,
    Scan,
    Select,
    SemiJoin,
    Union,
)
from .csvio import read_csv, write_csv
from .database import Database
from .explain import explain, explain_analyze, explain_logical
from .index import (
    HashIndex,
    Index,
    IndexRegistry,
    SortedIndex,
    build_index,
    ensure_index,
    indexes_on,
)
from .expressions import (
    And,
    Between,
    Col,
    Comparison,
    Expression,
    InList,
    IsNull,
    Lit,
    Not,
    Or,
    Param,
    col,
    compile_cache_stats,
    conjunction,
    disjunction,
    lit,
    reset_compile_cache,
)
from .optimizer import estimate_rows, optimize, refresh_statistics
from .plancache import plan_cache_stats, reset_plan_cache
from .planner import Planner, plan_physical, run
from .physical import BATCH_SIZE, execute
from .relation import Relation
from .schema import (
    AmbiguousColumnError,
    Attribute,
    Schema,
    SchemaError,
    UnknownColumnError,
)
from .types import DataType, Date

__all__ = [
    # schema / data
    "Attribute",
    "Schema",
    "Relation",
    "Database",
    "DataType",
    "Date",
    "SchemaError",
    "UnknownColumnError",
    "AmbiguousColumnError",
    # expressions
    "Expression",
    "Col",
    "Lit",
    "Param",
    "Comparison",
    "And",
    "Or",
    "Not",
    "Between",
    "InList",
    "IsNull",
    "col",
    "lit",
    "conjunction",
    "disjunction",
    # algebra
    "Plan",
    "Scan",
    "Select",
    "Project",
    "ProjectAs",
    "Extend",
    "Join",
    "SemiJoin",
    "Product",
    "Union",
    "Difference",
    "Distinct",
    "Rename",
    # indexes
    "Index",
    "HashIndex",
    "SortedIndex",
    "IndexRegistry",
    "build_index",
    "ensure_index",
    "indexes_on",
    # execution
    "optimize",
    "estimate_rows",
    "refresh_statistics",
    "plan_cache_stats",
    "reset_plan_cache",
    "compile_cache_stats",
    "reset_compile_cache",
    "Planner",
    "plan_physical",
    "run",
    "execute",
    "BATCH_SIZE",
    "explain",
    "explain_analyze",
    "explain_logical",
    "read_csv",
    "write_csv",
]
