"""EXPLAIN-style plan rendering.

Produces indented plan trees in the visual style of PostgreSQL's
``EXPLAIN`` statement, which the paper shows in Figure 13 for the rewriting
of query Q2.  Works for both logical and physical plans.

Example output::

    Hash Join  (rows=224865665)
      Hash Cond: (u_l_shipdate.tid = u_l_quantity.tid)
      Join Filter: ((u_l_quantity.c1 <> u_l_shipdate.c1) OR ...)
      ->  Seq Scan on u_l_shipdate  (rows=2088896)
            Filter: ((l_shipdate > '1994-01-01') AND ...)
      ->  Seq Scan on u_l_quantity  (rows=2362101)

:func:`explain_analyze` additionally *runs* the plan through the block
executor and annotates every operator with the rows and batches it actually
produced (the analogue of ``EXPLAIN ANALYZE``)::

    Hash Join  (rows=240) (actual rows=182 batches=1)
"""

from __future__ import annotations

from typing import List, Tuple, Union

from .algebra import Plan
from .physical import BATCH_SIZE, PhysicalPlan, execute
from .relation import Relation

__all__ = ["explain", "explain_logical", "explain_analyze"]


def explain(plan: Union[PhysicalPlan, Plan]) -> str:
    """Render a plan tree as an indented EXPLAIN string."""
    if isinstance(plan, Plan):
        return explain_logical(plan)
    lines: List[str] = []
    _render_physical(plan, lines, depth=0, arrow=False)
    return "\n".join(lines)


def explain_analyze(
    plan: PhysicalPlan,
    batch_size: int = BATCH_SIZE,
    mode: str = "columns",
    trace: bool = False,
):
    """Execute a physical plan and render it with actual row counts.

    Returns ``(result, text)`` where every operator line carries the rows
    and batch count it produced during this execution.  ``mode`` selects
    the executor (``"columns"`` default, or ``"blocks"``); for a fused
    plan the counts are *per pipeline* — a ``Fused Pipeline`` line reports
    the rows surviving its entire scan→filter→project chain, and a join
    with a folded ``Output:`` projection reports post-projection rows —
    because the fused-away operators no longer exist to count separately.
    Operators that a presorted merge join skipped draining (its ``Sort``
    children) report no actuals.

    With ``trace=True`` returns ``(result, text, data)`` where ``data`` is
    the structured span/operator form the observability layer uses: the
    execution's span tree (``{"name": "explain_analyze", "children":
    [...], ...}``) plus an ``operators`` entry — the nested
    estimate-vs-actual dict of :meth:`PhysicalPlan.actuals` — instead of
    only the rendered text.
    """
    from ..obs import span as obs_span
    from ..obs import start_trace

    if mode == "rows":
        mode = "blocks"  # rows mode keeps no counters; blocks is equivalent
    if trace:
        with start_trace("explain_analyze", force=True) as trace_obj:
            with obs_span("execute") as exec_span:
                result = execute(plan, mode=mode, batch_size=batch_size)
                exec_span.set(operators=plan.actuals())
        lines: List[str] = []
        _render_physical(plan, lines, depth=0, arrow=False, analyze=True)
        data = trace_obj.to_dict()
        data["operators"] = plan.actuals()
        return result, "\n".join(lines), data
    result = execute(plan, mode=mode, batch_size=batch_size)
    lines: List[str] = []
    _render_physical(plan, lines, depth=0, arrow=False, analyze=True)
    return result, "\n".join(lines)


def _render_physical(
    node: PhysicalPlan, lines: List[str], depth: int, arrow: bool, analyze: bool = False
) -> None:
    indent = "  " * depth
    prefix = f"{indent}->  " if arrow else indent
    rows = int(node.estimated_rows)
    header = f"{prefix}{node.explain_label()}  (rows={rows})"
    if analyze and node.actual_rows is not None:
        header += f" (actual rows={node.actual_rows} batches={node.actual_batches})"
    lines.append(header)
    detail_indent = "  " * depth + ("      " if arrow else "  ")
    for detail in node.explain_details():
        lines.append(f"{detail_indent}{detail}")
    for child in node.children:
        _render_physical(child, lines, depth + (2 if arrow else 1), arrow=True, analyze=analyze)


def explain_logical(plan: Plan) -> str:
    """Render a logical plan tree (operator labels, no cost estimates)."""
    lines: List[str] = []

    def render(node: Plan, depth: int) -> None:
        indent = "  " * depth
        lines.append(f"{indent}{node.node_label()}")
        for child in node.children:
            render(child, depth + 1)

    render(plan, 0)
    return "\n".join(lines)
