"""The prepared-plan cache: repeated queries go executor-only.

Translation + optimization + physical planning cost a few milliseconds per
``execute_query`` — real money once the per-execution work is microseconds
(the compile cache already removed codegen from repeated runs; this module
removes *planning*).  The cache maps

    (normalized query structure, owner catalog, planner knobs)
        -> fully planned physical tree

so a repeated ``run``/``Database.run``/``execute_query`` skips the whole
translate -> optimize -> plan pipeline and goes straight to the executor.

Soundness rests on two facts:

* **Relations are immutable values.**  A physical plan embeds the relation
  objects it scans; as long as those objects are the catalog's current
  ones (and their attached indexes and statistics are unchanged), the plan
  is exactly the plan a fresh compilation would produce.
* **Every catalog mutation funnels through a bump hook.**  Replacing a
  table (``create(replace=True)``), dropping one, creating or dropping an
  index (including the deferred auto-index builds that materialize on
  first planner access), refreshing statistics, and world-table growth all
  end up calling :func:`bump_relation` on the affected relation object —
  which evicts *exactly* the entries whose plans depend on it and bumps
  the catalog version of every registered watcher
  (:class:`~repro.relational.database.Database` /
  :class:`~repro.core.udatabase.UDatabase` instances register themselves
  via :func:`watch_relation`).

Entries additionally record the per-relation *epoch* of each dependency at
insert time and re-validate on lookup, so even a hypothetical missed bump
cannot surface a stale plan — the belt to the eviction hooks' braces.

Keys identify base relations by ``id()``.  That is sound precisely because
every entry holds strong references to its dependency relations: an id can
only be recycled after the object dies, and a dependency object cannot die
while its entry is alive.

Serving-layer duties (PR 5):

* **Thread safety.**  Every cache operation — lookup, store, invalidation,
  stats — runs under one module lock, so N sessions executing cached plans
  concurrently (and a DDL thread bumping relations under them) never see a
  torn cache.  The lock is held for dict bookkeeping only, never during
  planning or execution.
* **LRU eviction with planning-cost weights and a hot-set pin.**  A full
  cache no longer clears wholesale: the victim is the cheapest-to-replan
  entry among the least-recently-used few (a GreedyDual-style compromise —
  recency decides the candidate window, replan cost decides inside it),
  and entries hit often enough are *pinned* (up to half the capacity) so a
  burst of one-off ad-hoc shapes cannot wash out the serving hot set.
* **Per-entry cost class.**  :func:`cost_class_of` classifies a physical
  tree (``point`` / ``scan`` / ``join`` / ``heavy``) and the class is
  stored on the entry; the admission layer reads it back through
  :func:`cached_cost_class` to pick per-class concurrency limits before
  executing (a cached point lookup is not rate-limited like a cold
  six-way join).

:func:`plan_cache_stats` / :func:`reset_plan_cache` mirror the expression
compile cache's introspection hooks (tests and benchmarks use them to
prove second-run queries are planning-free).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple
from weakref import WeakSet

from .algebra import (
    ConfCompute,
    Difference,
    Distinct,
    Extend,
    Join,
    Plan,
    Product,
    Project,
    ProjectAs,
    Rename,
    Scan,
    Select,
    SemiJoin,
    Union,
)
from .expressions import structural_key
from .relation import Relation

__all__ = [
    "LruHotCache",
    "plan_cache_stats",
    "reset_plan_cache",
    "bump_relation",
    "relation_epoch",
    "watch_relation",
    "cache_lookup",
    "cache_store",
    "cache_contains",
    "cached_cost_class",
    "record_observed_rows",
    "plan_cache_entries",
    "publish_plan_cache_metrics",
    "cost_class_of",
    "build_key",
    "mark_cached",
    "logical_plan_key",
    "plan_relations",
    "COST_CLASSES",
]


#: Cache capacity.  Eviction is LRU with planning-cost weights (see
#: :func:`_evict_one`), not wholesale clearing — a serving workload churns
#: ad-hoc shapes through the cache and must not lose its hot set.
_PLAN_CACHE_LIMIT = 256

#: Entries hit at least this often join the pinned hot set (exempt from
#: LRU eviction, still evicted by invalidation).
_HOT_PIN_HITS = 8

#: At most this many entries may be pinned (half the capacity), so the
#: unpinned remainder always leaves room for new shapes.
_HOT_PIN_CAP = _PLAN_CACHE_LIMIT // 2

#: Eviction scans this many least-recently-used unpinned entries and
#: evicts the one that was cheapest to plan (recency picks the window,
#: replan cost picks the victim inside it).
_EVICT_WINDOW = 8

#: The admission-relevant cost classes, cheapest first (``conf`` —
#: confidence computation, potentially #P-hard — is ordered last).
COST_CLASSES = ("point", "scan", "join", "heavy", "conf")

#: A root estimate at or below this (with no joins) counts as a point
#: lookup even without an index-point access path.
_POINT_ROWS_LIMIT = 64.0

#: Join plans estimated above this (or with > 2 joins) are "heavy".
_HEAVY_ROWS_LIMIT = 50_000.0
_HEAVY_JOIN_COUNT = 2


class LruHotCache:
    """A bounded LRU cache with a pinned hot set — the reusable half of
    this module's eviction policy.

    Recency picks the victim (least-recently-used first); entries hit at
    least ``hot_hits`` times are *pinned* (up to ``pin_cap``, half the
    capacity by default) and skipped by eviction, so a burst of one-off
    shapes cannot wash out a serving workload's hot set.  When every
    entry is pinned the LRU head goes regardless — progress beats
    pinning.  Thread-safe; values must not be ``None`` (``get`` returns
    ``None`` for a miss).

    The plan cache itself layers dependency tracking, epoch validation,
    and plan-cost weights on top of this shape; simpler compile caches
    (the expression kernel cache) use this class directly instead of
    wholesale clearing at capacity.
    """

    __slots__ = (
        "capacity",
        "hot_hits",
        "pin_cap",
        "evictions",
        "_lock",
        "_entries",
        "_pinned",
    )

    def __init__(
        self,
        capacity: int,
        hot_hits: Optional[int] = None,
        pin_cap: Optional[int] = None,
    ):
        self.capacity = max(1, int(capacity))
        self.hot_hits = _HOT_PIN_HITS if hot_hits is None else hot_hits
        self.pin_cap = self.capacity // 2 if pin_cap is None else pin_cap
        self.evictions = 0
        self._lock = threading.Lock()
        #: key -> [value, hits, pinned] in least-recently-used-first order.
        self._entries: "OrderedDict[Any, list]" = OrderedDict()
        self._pinned = 0

    def get(self, key: Any) -> Optional[Any]:
        with self._lock:
            slot = self._entries.get(key)
            if slot is None:
                return None
            slot[1] += 1
            if not slot[2] and slot[1] >= self.hot_hits and self._pinned < self.pin_cap:
                slot[2] = True
                self._pinned += 1
            self._entries.move_to_end(key)
            return slot[0]

    def put(self, key: Any, value: Any) -> None:
        with self._lock:
            slot = self._entries.get(key)
            if slot is not None:
                slot[0] = value
                self._entries.move_to_end(key)
                return
            while len(self._entries) >= self.capacity:
                self._evict_one()
            self._entries[key] = [value, 0, False]

    def _evict_one(self) -> None:
        """Evict the LRU unpinned entry (caller holds the lock)."""
        victim = None
        for key, slot in self._entries.items():  # iterates LRU-first
            if not slot[2]:
                victim = key
                break
        if victim is None:  # everything pinned: evict the stalest anyway
            victim = next(iter(self._entries))
            self._pinned -= 1
        self._entries.pop(victim)
        self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._pinned = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def pinned(self) -> int:
        return self._pinned


class _Entry:
    __slots__ = (
        "key", "payload", "deps", "pins", "cost_class", "plan_cost", "hits", "hot",
        "estimated_rows", "observed_rows", "observed_runs", "fingerprint",
    )

    def __init__(
        self,
        key: Tuple,
        payload: Any,
        deps: Sequence[Tuple[Relation, int]],
        pins: Tuple,
        cost_class: str,
        plan_cost: float,
        fingerprint: Optional[str] = None,
    ):
        self.key = key
        self.payload = payload
        #: (relation, epoch-at-insert) per base relation the plan scans or
        #: probes.  The strong reference is what keeps ``id()``-based keys
        #: sound; the epoch is the lookup-time staleness backstop.
        self.deps = list(deps)
        #: Extra strong references (the owning catalog, the query object —
        #: which keeps parameter stores alive for ``$n`` plans).
        self.pins = pins
        #: Admission cost class of the cached plan (see :data:`COST_CLASSES`).
        self.cost_class = cost_class
        #: Seconds the optimize+plan pipeline took — the eviction weight
        #: (evicting a plan that took 10 ms to build costs ten 1 ms plans).
        self.plan_cost = plan_cost
        self.hits = 0
        #: True once the entry joined the pinned hot set.
        self.hot = False
        #: Estimate-vs-actual feedback (see :func:`record_observed_rows`):
        #: the optimizer's root-row estimate, the most recent actual row
        #: count, and how many executions have reported one.  This is the
        #: raw input for the ROADMAP plan-feedback loop (re-optimize plans
        #: whose estimates diverge from actuals).
        self.estimated_rows: Optional[float] = None
        self.observed_rows: Optional[int] = None
        self.observed_runs = 0
        #: Workload fingerprint (literals/bindings normalized out) computed
        #: once at entry creation; joins this entry against the obs
        #: workload history and slowlog lines.
        self.fingerprint = fingerprint


#: One lock for all cache state.  RLock: ``bump_relation`` can re-enter
#: through watcher callbacks that consult the cache.
_lock = threading.RLock()

#: Key -> entry in least-recently-used-first order (lookups move-to-end).
_entries: "OrderedDict[Tuple, _Entry]" = OrderedDict()
#: Reverse dependency map: id(relation) -> keys of entries scanning it.
#: Sound and leak-free because every mapped id belongs to a relation some
#: live entry pins; the mapping is removed with its last entry.
_by_relation: Dict[int, Set[Tuple]] = {}

_hits = 0
_misses = 0
_invalidations = 0
_evictions = 0
_pinned = 0


# ----------------------------------------------------------------------
# versioning hooks
# ----------------------------------------------------------------------
# The per-relation mutation epoch and watcher set live *on the relation
# object* (``_plan_epoch`` / ``_plan_watchers`` slots), so their lifetime
# is exactly the relation's — no global registry to prune, no id-recycling
# corner cases.


def relation_epoch(relation: Relation) -> int:
    """The relation's current mutation epoch (0 until first bump)."""
    return getattr(relation, "_plan_epoch", 0)


def watch_relation(relation: Relation, owner: Any) -> None:
    """Register ``owner`` to have ``_bump_catalog_version()`` called when
    this relation object mutates (index built/dropped, stats refreshed,
    replaced in a catalog).  Held weakly — watching never pins a catalog."""
    with _lock:
        watchers = getattr(relation, "_plan_watchers", None)
        if watchers is None:
            watchers = WeakSet()
            relation._plan_watchers = watchers
        watchers.add(owner)


def bump_relation(relation: Relation) -> int:
    """Record a mutation of ``relation``: bump its epoch, notify watching
    catalogs, and evict exactly the cache entries whose plans depend on it.

    Returns the number of entries evicted.  This is *the* invalidation
    hook: every catalog mutation (table replacement/drop, index DDL, lazy
    index materialization, statistics refresh, world-table refresh)
    reaches the cache through here.  Thread-safe: concurrent executions of
    already-looked-up plans are unaffected (they hold their own physical
    trees), while the next lookup re-plans.
    """
    global _invalidations
    with _lock:
        relation._plan_epoch = getattr(relation, "_plan_epoch", 0) + 1
        for owner in tuple(getattr(relation, "_plan_watchers", None) or ()):
            bump = getattr(owner, "_bump_catalog_version", None)
            if bump is not None:
                bump()
        evicted = 0
        for entry_key in tuple(_by_relation.get(id(relation), ())):
            entry = _entries.get(entry_key)
            if entry is not None and any(dep is relation for dep, _ in entry.deps):
                _remove(entry)
                evicted += 1
        _invalidations += evicted
        return evicted


# ----------------------------------------------------------------------
# the cache proper
# ----------------------------------------------------------------------
def _remove(entry: _Entry) -> None:
    global _pinned
    if _entries.pop(entry.key, None) is not None and entry.hot:
        _pinned -= 1
    for dep, _epoch in entry.deps:
        keys = _by_relation.get(id(dep))
        if keys is not None:
            keys.discard(entry.key)
            if not keys:
                _by_relation.pop(id(dep), None)


def _valid(entry: _Entry) -> bool:
    return all(relation_epoch(dep) == epoch for dep, epoch in entry.deps)


def _evict_one() -> None:
    """Evict one entry: the cheapest-to-replan among the LRU few.

    Pinned (hot) entries are skipped; if every candidate is pinned the LRU
    head goes regardless (progress beats pinning).  Caller holds the lock.
    """
    global _evictions
    window: List[_Entry] = []
    for entry in _entries.values():  # iterates LRU-first
        if not entry.hot:
            window.append(entry)
            if len(window) >= _EVICT_WINDOW:
                break
    if window:
        victim = min(window, key=lambda e: e.plan_cost)
    else:  # everything pinned: evict the stalest entry anyway
        victim = next(iter(_entries.values()))
    _remove(victim)
    _evictions += 1


def cache_lookup(key: Optional[Tuple]) -> Optional[Any]:
    """The cached payload for ``key``, or ``None`` (counted as a miss).

    A ``None`` key (an uncacheable query shape) always misses.  Entries
    whose dependency epochs drifted — which the eviction hooks should have
    removed already — are dropped here rather than returned stale.  A hit
    refreshes the entry's LRU position and, past :data:`_HOT_PIN_HITS`
    hits, pins it into the hot set.
    """
    global _hits, _misses, _invalidations, _pinned
    with _lock:
        if key is None:
            _misses += 1
            return None
        entry = _entries.get(key)
        if entry is None:
            _misses += 1
            return None
        if not _valid(entry):  # pragma: no cover - backstop; hooks evict first
            _remove(entry)
            _invalidations += 1
            _misses += 1
            return None
        _hits += 1
        entry.hits += 1
        if not entry.hot and entry.hits >= _HOT_PIN_HITS and _pinned < _HOT_PIN_CAP:
            entry.hot = True
            _pinned += 1
        _entries.move_to_end(key)
        return entry.payload


def cache_store(
    key: Optional[Tuple],
    payload: Any,
    deps: Sequence[Relation],
    pins: Tuple = (),
    cost_class: str = "scan",
    plan_cost: float = 0.0,
    guard: Optional[Callable[[], bool]] = None,
    fingerprint: Optional[str] = None,
) -> None:
    """Insert a planned payload under ``key`` (``None`` key: not cached).

    ``deps`` are the base relations the plan reads; their *current* epochs
    are recorded, so a store that races a mutation during its own planning
    (a lazy index build, say) self-describes correctly.  ``plan_cost``
    (seconds spent planning) weights eviction; ``cost_class`` is the
    admission classification served back by :func:`cached_cost_class`.

    ``guard`` closes the catalog-resolution race: a planner that resolved
    its relations from a live catalog, then lost the CPU while a writer
    swapped that catalog, would otherwise store a plan over the *old*
    relation objects — recording their already-bumped epochs, so the
    entry self-describes as valid and serves stale answers forever.
    The guard (e.g. ``catalog_version`` unchanged since before planning)
    runs under the cache lock — the same lock :func:`bump_relation` holds
    across its epoch bump, version bump, and eviction sweep — so either
    the swap committed first and the guard refuses the insert, or the
    insert lands first and the swap's sweep evicts it.
    """
    if key is None:
        return
    entry = _Entry(
        key, payload, [(dep, relation_epoch(dep)) for dep in deps], pins,
        cost_class, plan_cost, fingerprint,
    )
    with _lock:
        if guard is not None and not guard():
            return  # the catalog moved mid-planning: unsafe to cache
        old = _entries.get(key)
        if old is not None:
            _remove(old)
        while len(_entries) >= _PLAN_CACHE_LIMIT:
            _evict_one()
        _entries[key] = entry
        for dep in deps:
            _by_relation.setdefault(id(dep), set()).add(key)


def cache_contains(key: Optional[Tuple]) -> bool:
    """Whether a valid entry exists for ``key`` (no stats counted)."""
    with _lock:
        if key is None:
            return False
        entry = _entries.get(key)
        return entry is not None and _valid(entry)


def cached_cost_class(key: Optional[Tuple]) -> Optional[str]:
    """The cost class of a *valid* cached entry, or ``None`` when cold.

    The admission layer's peek: no stats are counted and the LRU order is
    untouched, so classifying a request never perturbs the cache.
    """
    with _lock:
        if key is None:
            return None
        entry = _entries.get(key)
        if entry is None or not _valid(entry):
            return None
        return entry.cost_class


def record_observed_rows(
    key: Optional[Tuple], estimated: Optional[float], actual: Optional[int]
) -> None:
    """Record one execution's estimate-vs-actual root row counts on the
    entry for ``key`` (no-op for uncached keys or evicted entries).

    Called by ``execute_query`` after every cached execution, reusing the
    ``actual_rows`` counts the physical operators already maintain — no
    extra measurement run.  The accumulated deltas are readable through
    :func:`plan_cache_entries` and surface as the
    ``plan_estimate_error_rows`` gauge.
    """
    if key is None or actual is None:
        return
    with _lock:
        entry = _entries.get(key)
        if entry is None:
            return
        entry.estimated_rows = None if estimated is None else float(estimated)
        entry.observed_rows = int(actual)
        entry.observed_runs += 1


def plan_cache_entries() -> List[dict]:
    """Per-entry introspection: cost class, hits, plan cost, and the
    estimate-vs-actual feedback recorded so far (MRU first)."""
    with _lock:
        out = []
        for entry in reversed(_entries.values()):  # MRU first
            out.append(
                {
                    "cost_class": entry.cost_class,
                    "plan_cost": entry.plan_cost,
                    "hits": entry.hits,
                    "hot": entry.hot,
                    "estimated_rows": entry.estimated_rows,
                    "observed_rows": entry.observed_rows,
                    "observed_runs": entry.observed_runs,
                    "fingerprint": entry.fingerprint,
                }
            )
        return out


def plan_cache_stats() -> dict:
    """Hit/miss/invalidation/eviction counters and sizes of the plan cache."""
    with _lock:
        return {
            "hits": _hits,
            "misses": _misses,
            "invalidations": _invalidations,
            "evictions": _evictions,
            "pinned": _pinned,
            "size": len(_entries),
        }


def publish_plan_cache_metrics() -> None:
    """Export the cache internals as registry gauges.

    Mirrors ``segment_health(publish=True)``: counters that already exist
    in :func:`plan_cache_stats` — hits, misses, invalidations, evictions,
    pinned, size — plus per-cost-class entry counts become gauges, so the
    ``metrics`` Prometheus/JSON exposition carries the cache state, not
    only the ``stats`` wire op.  Called by the server's stats/metrics
    paths; a no-op while ``REPRO_OBS=off``.
    """
    from ..obs import gauge

    with _lock:
        stats = {
            "hits": _hits,
            "misses": _misses,
            "invalidations": _invalidations,
            "evictions": _evictions,
            "pinned": _pinned,
            "size": len(_entries),
        }
        per_class: Dict[str, int] = {}
        for entry in _entries.values():
            per_class[entry.cost_class] = per_class.get(entry.cost_class, 0) + 1
    for name, value in stats.items():
        gauge(f"plan_cache_{name}", f"Plan cache {name}").set(value)
    entries_gauge = gauge("plan_cache_entries", "Plan-cache entries by cost class")
    for cost_class in COST_CLASSES + ("cold",):
        entries_gauge.set(per_class.get(cost_class, 0), cls=cost_class)


def reset_plan_cache() -> None:
    """Empty the plan cache and zero its counters (test/bench hook).

    Epochs and watcher registrations live on the relation objects
    themselves and survive: they describe live catalog state, not cached
    plans, and resetting them could resurrect the very staleness the
    epochs guard against.
    """
    global _hits, _misses, _invalidations, _evictions, _pinned
    with _lock:
        _entries.clear()
        _by_relation.clear()
        _hits = 0
        _misses = 0
        _invalidations = 0
        _evictions = 0
        _pinned = 0


def mark_cached(text: str) -> str:
    """Append the ``(cached)`` marker to an EXPLAIN text's top line."""
    first, _, rest = text.partition("\n")
    return first + "  (cached)" + ("\n" + rest if rest else "")


def build_key(builder: Callable[[], Tuple]) -> Optional[Tuple]:
    """Run a key builder, mapping ``TypeError`` (uncacheable shape) to None.

    The shared front half of the cache protocol: callers build their key
    with :func:`logical_plan_key` /
    :func:`repro.core.translate.query_structure_key` inside ``builder``
    and get ``None`` — "plan uncached" — for unknown node or expression
    shapes instead of handling the exception at every call site.
    """
    try:
        return builder()
    except TypeError:
        return None


# ----------------------------------------------------------------------
# cost classification
# ----------------------------------------------------------------------
def cost_class_of(physical: Any) -> str:
    """Classify a physical plan for admission control.

    * ``point`` — no joins and either an index point/range access or a
      tiny estimated answer: the cached-point-lookup class a server can
      admit by the hundreds,
    * ``scan``  — a join-free pipeline over one relation,
    * ``join``  — up to :data:`_HEAVY_JOIN_COUNT` joins with a moderate
      estimate (the partition-merge shape of translated U-queries),
    * ``heavy`` — deeper join trees or large estimates (the cold six-way
      join a server must not admit unboundedly),
    * ``conf``  — any plan containing a confidence computation: #P-hard in
      the worst case, so admission limits it separately from everything
      else regardless of the shape underneath.

    Derived from the plan alone (operator shapes + the optimizer's
    ``estimate_rows`` results attached to the nodes), so the class is
    stable across executions and safe to cache on the entry.
    """
    from .physical import (
        Confidence,
        HashJoin,
        IndexNestedLoopJoin,
        IndexScan,
        MergeJoin,
        NestedLoopJoin,
        SemiJoinOp,
        _NO_POINT,
    )

    if isinstance(physical, Confidence):
        return "conf"
    joins = 0
    indexed_access = False
    stack = [physical]
    while stack:
        node = stack.pop()
        if isinstance(
            node, (HashJoin, IndexNestedLoopJoin, MergeJoin, NestedLoopJoin, SemiJoinOp)
        ):
            joins += 1
        if isinstance(node, IndexScan) and not node.probe and (
            node.point is not _NO_POINT
            or node.lower is not None
            or node.upper is not None
        ):
            indexed_access = True
        stack.extend(node.children)
    estimate = float(getattr(physical, "estimated_rows", 0.0) or 0.0)
    if joins == 0:
        if indexed_access or estimate <= _POINT_ROWS_LIMIT:
            return "point"
        return "scan"
    if joins <= _HEAVY_JOIN_COUNT and estimate <= _HEAVY_ROWS_LIMIT:
        return "join"
    return "heavy"


# ----------------------------------------------------------------------
# normalized keys and dependency extraction for logical plans
# ----------------------------------------------------------------------
def logical_plan_key(plan: Plan) -> Tuple:
    """A hashable key identifying a logical plan up to structure.

    Base relations are identified by object id (sound because cache
    entries pin them — see the module docstring); predicates use
    :func:`~repro.relational.expressions.structural_key`, so ``$n``
    parameter slots key by their store identity, not their current values.
    Raises ``TypeError`` for unknown node or expression shapes — callers
    treat that as "not cacheable" and plan uncached.
    """
    if isinstance(plan, Scan):
        return ("scan", id(plan.relation), plan.name, plan.alias)
    if isinstance(plan, Select):
        return ("select", logical_plan_key(plan.child), structural_key(plan.predicate))
    if isinstance(plan, Project):
        return ("project", logical_plan_key(plan.child), tuple(plan.columns))
    if isinstance(plan, ProjectAs):
        return ("project-as", logical_plan_key(plan.child), tuple(plan.items))
    if isinstance(plan, Extend):
        return (
            "extend",
            logical_plan_key(plan.child),
            tuple((name, structural_key(expr)) for name, expr in plan.items),
        )
    if isinstance(plan, Join):
        return (
            "join",
            logical_plan_key(plan.left),
            logical_plan_key(plan.right),
            structural_key(plan.predicate),
        )
    if isinstance(plan, SemiJoin):
        return (
            "semijoin",
            logical_plan_key(plan.left),
            logical_plan_key(plan.right),
            structural_key(plan.predicate),
        )
    if isinstance(plan, Product):
        return ("product", logical_plan_key(plan.left), logical_plan_key(plan.right))
    if isinstance(plan, Union):
        return ("union", logical_plan_key(plan.left), logical_plan_key(plan.right))
    if isinstance(plan, Difference):
        return ("difference", logical_plan_key(plan.left), logical_plan_key(plan.right))
    if isinstance(plan, Distinct):
        return ("distinct", logical_plan_key(plan.child))
    if isinstance(plan, Rename):
        return (
            "rename",
            logical_plan_key(plan.child),
            tuple(sorted(plan.mapping.items())),
        )
    if isinstance(plan, ConfCompute):
        return (
            "conf",
            logical_plan_key(plan.child),
            plan.d_width,
            plan.tid_count,
            tuple(plan.value_names),
            id(plan.world_table),
            plan.method,
            plan.epsilon,
            plan.delta,
            plan.seed,
        )
    raise TypeError(f"no plan-cache key for {type(plan).__name__}")


def plan_relations(plan: Plan) -> List[Relation]:
    """Every base relation a logical plan scans (the entry's dependencies)."""
    if isinstance(plan, Scan):
        return [plan.relation]
    out: List[Relation] = []
    for child in plan.children:
        out.extend(plan_relations(child))
    return out
