"""The prepared-plan cache: repeated queries go executor-only.

Translation + optimization + physical planning cost a few milliseconds per
``execute_query`` — real money once the per-execution work is microseconds
(the compile cache already removed codegen from repeated runs; this module
removes *planning*).  The cache maps

    (normalized query structure, owner catalog, planner knobs)
        -> fully planned physical tree

so a repeated ``run``/``Database.run``/``execute_query`` skips the whole
translate -> optimize -> plan pipeline and goes straight to the executor.

Soundness rests on two facts:

* **Relations are immutable values.**  A physical plan embeds the relation
  objects it scans; as long as those objects are the catalog's current
  ones (and their attached indexes and statistics are unchanged), the plan
  is exactly the plan a fresh compilation would produce.
* **Every catalog mutation funnels through a bump hook.**  Replacing a
  table (``create(replace=True)``), dropping one, creating or dropping an
  index (including the deferred auto-index builds that materialize on
  first planner access), refreshing statistics, and world-table growth all
  end up calling :func:`bump_relation` on the affected relation object —
  which evicts *exactly* the entries whose plans depend on it and bumps
  the catalog version of every registered watcher
  (:class:`~repro.relational.database.Database` /
  :class:`~repro.core.udatabase.UDatabase` instances register themselves
  via :func:`watch_relation`).

Entries additionally record the per-relation *epoch* of each dependency at
insert time and re-validate on lookup, so even a hypothetical missed bump
cannot surface a stale plan — the belt to the eviction hooks' braces.

Keys identify base relations by ``id()``.  That is sound precisely because
every entry holds strong references to its dependency relations: an id can
only be recycled after the object dies, and a dependency object cannot die
while its entry is alive.

:func:`plan_cache_stats` / :func:`reset_plan_cache` mirror the expression
compile cache's introspection hooks (tests and benchmarks use them to
prove second-run queries are planning-free).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple
from weakref import WeakSet

from .algebra import (
    Difference,
    Distinct,
    Extend,
    Join,
    Plan,
    Product,
    Project,
    ProjectAs,
    Rename,
    Scan,
    Select,
    SemiJoin,
    Union,
)
from .expressions import structural_key
from .relation import Relation

__all__ = [
    "plan_cache_stats",
    "reset_plan_cache",
    "bump_relation",
    "relation_epoch",
    "watch_relation",
    "cache_lookup",
    "cache_store",
    "cache_contains",
    "build_key",
    "mark_cached",
    "logical_plan_key",
    "plan_relations",
]


#: Entries beyond this are handled by wholesale clearing (planning is cheap
#: enough that an occasional cold restart beats LRU bookkeeping — the same
#: policy as the expression compile cache).
_PLAN_CACHE_LIMIT = 256


class _Entry:
    __slots__ = ("key", "payload", "deps", "pins")

    def __init__(
        self,
        key: Tuple,
        payload: Any,
        deps: Sequence[Tuple[Relation, int]],
        pins: Tuple,
    ):
        self.key = key
        self.payload = payload
        #: (relation, epoch-at-insert) per base relation the plan scans or
        #: probes.  The strong reference is what keeps ``id()``-based keys
        #: sound; the epoch is the lookup-time staleness backstop.
        self.deps = list(deps)
        #: Extra strong references (the owning catalog, the query object —
        #: which keeps parameter stores alive for ``$n`` plans).
        self.pins = pins


_entries: Dict[Tuple, _Entry] = {}
#: Reverse dependency map: id(relation) -> keys of entries scanning it.
#: Sound and leak-free because every mapped id belongs to a relation some
#: live entry pins; the mapping is removed with its last entry.
_by_relation: Dict[int, Set[Tuple]] = {}

_hits = 0
_misses = 0
_invalidations = 0


# ----------------------------------------------------------------------
# versioning hooks
# ----------------------------------------------------------------------
# The per-relation mutation epoch and watcher set live *on the relation
# object* (``_plan_epoch`` / ``_plan_watchers`` slots), so their lifetime
# is exactly the relation's — no global registry to prune, no id-recycling
# corner cases.


def relation_epoch(relation: Relation) -> int:
    """The relation's current mutation epoch (0 until first bump)."""
    return getattr(relation, "_plan_epoch", 0)


def watch_relation(relation: Relation, owner: Any) -> None:
    """Register ``owner`` to have ``_bump_catalog_version()`` called when
    this relation object mutates (index built/dropped, stats refreshed,
    replaced in a catalog).  Held weakly — watching never pins a catalog."""
    watchers = getattr(relation, "_plan_watchers", None)
    if watchers is None:
        watchers = WeakSet()
        relation._plan_watchers = watchers
    watchers.add(owner)


def bump_relation(relation: Relation) -> int:
    """Record a mutation of ``relation``: bump its epoch, notify watching
    catalogs, and evict exactly the cache entries whose plans depend on it.

    Returns the number of entries evicted.  This is *the* invalidation
    hook: every catalog mutation (table replacement/drop, index DDL, lazy
    index materialization, statistics refresh, world-table refresh)
    reaches the cache through here.
    """
    global _invalidations
    relation._plan_epoch = getattr(relation, "_plan_epoch", 0) + 1
    for owner in tuple(getattr(relation, "_plan_watchers", None) or ()):
        bump = getattr(owner, "_bump_catalog_version", None)
        if bump is not None:
            bump()
    evicted = 0
    for entry_key in tuple(_by_relation.get(id(relation), ())):
        entry = _entries.get(entry_key)
        if entry is not None and any(dep is relation for dep, _ in entry.deps):
            _remove(entry)
            evicted += 1
    _invalidations += evicted
    return evicted


# ----------------------------------------------------------------------
# the cache proper
# ----------------------------------------------------------------------
def _remove(entry: _Entry) -> None:
    _entries.pop(entry.key, None)
    for dep, _epoch in entry.deps:
        keys = _by_relation.get(id(dep))
        if keys is not None:
            keys.discard(entry.key)
            if not keys:
                _by_relation.pop(id(dep), None)


def _valid(entry: _Entry) -> bool:
    return all(relation_epoch(dep) == epoch for dep, epoch in entry.deps)


def cache_lookup(key: Optional[Tuple]) -> Optional[Any]:
    """The cached payload for ``key``, or ``None`` (counted as a miss).

    A ``None`` key (an uncacheable query shape) always misses.  Entries
    whose dependency epochs drifted — which the eviction hooks should have
    removed already — are dropped here rather than returned stale.
    """
    global _hits, _misses, _invalidations
    if key is None:
        _misses += 1
        return None
    entry = _entries.get(key)
    if entry is None:
        _misses += 1
        return None
    if not _valid(entry):  # pragma: no cover - backstop; hooks evict first
        _remove(entry)
        _invalidations += 1
        _misses += 1
        return None
    _hits += 1
    return entry.payload


def cache_store(
    key: Optional[Tuple],
    payload: Any,
    deps: Sequence[Relation],
    pins: Tuple = (),
) -> None:
    """Insert a planned payload under ``key`` (``None`` key: not cached).

    ``deps`` are the base relations the plan reads; their *current* epochs
    are recorded, so a store that races a mutation during its own planning
    (a lazy index build, say) self-describes correctly.
    """
    if key is None:
        return
    if len(_entries) >= _PLAN_CACHE_LIMIT:
        _entries.clear()
        _by_relation.clear()
    entry = _Entry(key, payload, [(dep, relation_epoch(dep)) for dep in deps], pins)
    _entries[key] = entry
    for dep in deps:
        _by_relation.setdefault(id(dep), set()).add(key)


def cache_contains(key: Optional[Tuple]) -> bool:
    """Whether a valid entry exists for ``key`` (no stats counted)."""
    if key is None:
        return False
    entry = _entries.get(key)
    return entry is not None and _valid(entry)


def plan_cache_stats() -> dict:
    """Hit/miss/invalidation counters and current size of the plan cache."""
    return {
        "hits": _hits,
        "misses": _misses,
        "invalidations": _invalidations,
        "size": len(_entries),
    }


def reset_plan_cache() -> None:
    """Empty the plan cache and zero its counters (test/bench hook).

    Epochs and watcher registrations live on the relation objects
    themselves and survive: they describe live catalog state, not cached
    plans, and resetting them could resurrect the very staleness the
    epochs guard against.
    """
    global _hits, _misses, _invalidations
    _entries.clear()
    _by_relation.clear()
    _hits = 0
    _misses = 0
    _invalidations = 0


def mark_cached(text: str) -> str:
    """Append the ``(cached)`` marker to an EXPLAIN text's top line."""
    first, _, rest = text.partition("\n")
    return first + "  (cached)" + ("\n" + rest if rest else "")


def build_key(builder: Callable[[], Tuple]) -> Optional[Tuple]:
    """Run a key builder, mapping ``TypeError`` (uncacheable shape) to None.

    The shared front half of the cache protocol: callers build their key
    with :func:`logical_plan_key` /
    :func:`repro.core.translate.query_structure_key` inside ``builder``
    and get ``None`` — "plan uncached" — for unknown node or expression
    shapes instead of handling the exception at every call site.
    """
    try:
        return builder()
    except TypeError:
        return None


# ----------------------------------------------------------------------
# normalized keys and dependency extraction for logical plans
# ----------------------------------------------------------------------
def logical_plan_key(plan: Plan) -> Tuple:
    """A hashable key identifying a logical plan up to structure.

    Base relations are identified by object id (sound because cache
    entries pin them — see the module docstring); predicates use
    :func:`~repro.relational.expressions.structural_key`, so ``$n``
    parameter slots key by their store identity, not their current values.
    Raises ``TypeError`` for unknown node or expression shapes — callers
    treat that as "not cacheable" and plan uncached.
    """
    if isinstance(plan, Scan):
        return ("scan", id(plan.relation), plan.name, plan.alias)
    if isinstance(plan, Select):
        return ("select", logical_plan_key(plan.child), structural_key(plan.predicate))
    if isinstance(plan, Project):
        return ("project", logical_plan_key(plan.child), tuple(plan.columns))
    if isinstance(plan, ProjectAs):
        return ("project-as", logical_plan_key(plan.child), tuple(plan.items))
    if isinstance(plan, Extend):
        return (
            "extend",
            logical_plan_key(plan.child),
            tuple((name, structural_key(expr)) for name, expr in plan.items),
        )
    if isinstance(plan, Join):
        return (
            "join",
            logical_plan_key(plan.left),
            logical_plan_key(plan.right),
            structural_key(plan.predicate),
        )
    if isinstance(plan, SemiJoin):
        return (
            "semijoin",
            logical_plan_key(plan.left),
            logical_plan_key(plan.right),
            structural_key(plan.predicate),
        )
    if isinstance(plan, Product):
        return ("product", logical_plan_key(plan.left), logical_plan_key(plan.right))
    if isinstance(plan, Union):
        return ("union", logical_plan_key(plan.left), logical_plan_key(plan.right))
    if isinstance(plan, Difference):
        return ("difference", logical_plan_key(plan.left), logical_plan_key(plan.right))
    if isinstance(plan, Distinct):
        return ("distinct", logical_plan_key(plan.child))
    if isinstance(plan, Rename):
        return (
            "rename",
            logical_plan_key(plan.child),
            tuple(sorted(plan.mapping.items())),
        )
    raise TypeError(f"no plan-cache key for {type(plan).__name__}")


def plan_relations(plan: Plan) -> List[Relation]:
    """Every base relation a logical plan scans (the entry's dependencies)."""
    if isinstance(plan, Scan):
        return [plan.relation]
    out: List[Relation] = []
    for child in plan.children:
        out.extend(plan_relations(child))
    return out
