"""CSV import/export for relations.

Relations round-trip through CSV with a typed header: each column is
written as ``name:type`` (``int``, ``float``, ``str``, ``bool``, ``date``,
``any``), so :func:`read_csv` restores the exact Python values
:func:`write_csv` saw.  Plain headers (no ``:type``) are also accepted, in
which case types are inferred per column from the data.
"""

from __future__ import annotations

import csv
import pathlib
from typing import List, Optional, Sequence, Union

from .relation import Relation
from .schema import Attribute, Schema
from .types import DataType, format_value, infer_type, parse_value

__all__ = ["write_csv", "read_csv"]

PathLike = Union[str, pathlib.Path]

_NULL = "\\N"  # PostgreSQL-style NULL marker, distinguishable from ""


def write_csv(relation: Relation, path: PathLike) -> None:
    """Write a relation to ``path`` with a typed header row.

    Columns mixing incompatible Python types (e.g. ints and strings) cannot
    round-trip through text and are rejected with :class:`ValueError`.
    """
    types = relation.infer_types()
    for attr, dtype in zip(relation.schema.attributes, types):
        if dtype is DataType.ANY and any(
            row[relation.schema.resolve(attr.name)] is not None
            for row in relation.rows
        ):
            raise ValueError(
                f"column {attr.name!r} mixes incompatible types; "
                "CSV serialization needs homogeneous columns"
            )
    header = [
        f"{attr.name}:{dtype.value}"
        for attr, dtype in zip(relation.schema.attributes, types)
    ]
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for row in relation.rows:
            writer.writerow(
                [_NULL if value is None else format_value(value) for value in row]
            )


def read_csv(path: PathLike, schema: Optional[Schema] = None) -> Relation:
    """Read a relation from CSV (typed header, plain header, or ``schema``)."""
    with open(path, "r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path}: empty CSV file") from None
        raw_rows = [row for row in reader]

    if schema is not None:
        names = schema.names
        types = [a.dtype for a in schema.attributes]
        if len(header) != len(names):
            raise ValueError(
                f"{path}: header has {len(header)} columns, schema {len(names)}"
            )
    else:
        names, types = _parse_header(header)
        schema = Schema(
            [Attribute(n, t) for n, t in zip(names, types)]
        )
        if all(t is DataType.ANY for t in types):
            types = _infer_column_types(raw_rows, len(names))

    rows = []
    for raw in raw_rows:
        if len(raw) != len(names):
            raise ValueError(
                f"{path}: row arity {len(raw)} does not match header {len(names)}"
            )
        rows.append(
            tuple(
                None if field == _NULL else parse_value(field, dtype)
                for field, dtype in zip(raw, types)
            )
        )
    return Relation(schema, rows)


def _parse_header(header: Sequence[str]):
    names: List[str] = []
    types: List[DataType] = []
    for cell in header:
        if ":" in cell:
            name, _, type_text = cell.rpartition(":")
            try:
                types.append(DataType(type_text))
                names.append(name)
                continue
            except ValueError:
                pass  # not a type suffix after all: treat the cell as a name
        names.append(cell)
        types.append(DataType.ANY)
    return names, types


def _infer_column_types(raw_rows: Sequence[Sequence[str]], width: int) -> List[DataType]:
    """Best-effort inference when the header carries no type suffixes."""
    out: List[DataType] = []
    for i in range(width):
        column = [row[i] for row in raw_rows if i < len(row) and row[i] != _NULL]
        out.append(_infer_text_type(column))
    return out


def _infer_text_type(values: Sequence[str]) -> DataType:
    if not values:
        return DataType.STR
    for dtype in (DataType.INT, DataType.FLOAT, DataType.DATE):
        try:
            for value in values:
                parse_value(value, dtype)
            return dtype
        except (ValueError, TypeError):
            continue
    return DataType.STR
