"""Logical relational algebra plans.

Plan nodes are immutable trees.  Each node knows its output
:class:`~repro.relational.schema.Schema` (computed eagerly at construction
so schema errors surface when a query is *built*, not when it runs).

Nodes
-----
``Scan``        a base relation (optionally under an alias)
``Select``      σ — filter by an :class:`Expression`
``Project``     π — column subset/reorder (bag semantics)
``Join``        ⋈ — inner join with an arbitrary predicate
``Product``     × — cartesian product
``Union``       ∪ — bag union of union-compatible inputs
``Difference``  − — set difference
``Distinct``    δ — duplicate elimination
``Rename``      ρ — attribute renaming / requalification
``ConfCompute`` conf — per-value-tuple confidence over a U-relation plan

The U-relations translation of the paper (Figure 4) produces exactly these
operators; the ``possible`` operation maps to ``Distinct(Project(...))``,
and the probabilistic ``conf`` operation (Section 7) maps to
``ConfCompute`` over the translated child.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .expressions import Expression, conjunction
from .relation import Relation
from .schema import Schema, SchemaError

__all__ = [
    "Plan",
    "Scan",
    "Select",
    "Project",
    "ProjectAs",
    "Extend",
    "Join",
    "SemiJoin",
    "Product",
    "Union",
    "Difference",
    "Distinct",
    "Rename",
    "ConfCompute",
]


class Plan:
    """Base class for logical plan nodes."""

    schema: Schema

    @property
    def children(self) -> Tuple["Plan", ...]:
        """Input plans (empty for leaves)."""
        return ()

    def with_children(self, children: Sequence["Plan"]) -> "Plan":
        """Rebuild this node over new children (for rewrite rules)."""
        raise NotImplementedError

    def node_label(self) -> str:
        """One-line description used by EXPLAIN."""
        return type(self).__name__

    def __repr__(self) -> str:
        return f"{self.node_label()}{list(self.schema.names)}"


class Scan(Plan):
    """A leaf: scan of a base (already materialized) relation."""

    def __init__(self, relation: Relation, name: str = "", alias: Optional[str] = None):
        self.relation = relation
        self.name = name or "relation"
        self.alias = alias
        self.schema = relation.schema.qualify(alias) if alias else relation.schema

    def with_children(self, children: Sequence[Plan]) -> "Scan":
        if children:
            raise ValueError("Scan has no children")
        return self

    def node_label(self) -> str:
        if self.alias:
            return f"Seq Scan on {self.name} {self.alias}"
        return f"Seq Scan on {self.name}"


class Select(Plan):
    """σ_predicate(child)."""

    def __init__(self, child: Plan, predicate: Expression):
        self.child = child
        self.predicate = predicate
        self.schema = child.schema
        # bind eagerly to catch unknown columns at build time
        predicate.bind(child.schema)

    @property
    def children(self) -> Tuple[Plan, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[Plan]) -> "Select":
        (child,) = children
        return Select(child, self.predicate)

    def node_label(self) -> str:
        return f"Filter: {self.predicate!r}"


class Project(Plan):
    """π_columns(child) — bag semantics."""

    def __init__(self, child: Plan, columns: Sequence[str]):
        self.child = child
        self.columns = list(columns)
        self.schema = child.schema.project(self.columns)

    @property
    def children(self) -> Tuple[Plan, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[Plan]) -> "Project":
        (child,) = children
        return Project(child, self.columns)

    def node_label(self) -> str:
        return f"Project: {', '.join(self.columns)}"


class ProjectAs(Plan):
    """Generalized projection: ``[(reference, new_name), ...]``.

    Unlike :class:`Project`, the same input column may appear several times
    under different output names, and every output is renamed.  The
    U-relations union translation uses this to "pump" (duplicate) descriptor
    pairs so both union branches reach the same descriptor width.
    """

    def __init__(self, child: Plan, items: Sequence[Tuple[str, str]]):
        self.child = child
        self.items = [(ref, new) for ref, new in items]
        attrs = []
        for ref, new in self.items:
            source = child.schema[child.schema.resolve(ref)]
            attrs.append(source.renamed(new))
        self.schema = Schema(attrs)

    @property
    def children(self) -> Tuple[Plan, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[Plan]) -> "ProjectAs":
        (child,) = children
        return ProjectAs(child, self.items)

    def node_label(self) -> str:
        cols = ", ".join(f"{ref} AS {new}" for ref, new in self.items)
        return f"Project: {cols}"


class Extend(Plan):
    """Extended projection: append computed columns ``[(name, expression)]``.

    The child's columns pass through unchanged; each new column is the value
    of a scalar expression over the child row (commonly ``Lit(None)`` — the
    U-relations union translation adds empty tuple-id columns this way).
    """

    def __init__(self, child: Plan, items: Sequence[Tuple[str, "Expression"]]):
        self.child = child
        self.items = [(name, expr) for name, expr in items]
        attrs = list(child.schema.attributes)
        for name, expr in self.items:
            expr.bind(child.schema)  # eager validation
            attrs.append(child.schema.attributes[0].renamed(name))
        self.schema = Schema(attrs)

    @property
    def children(self) -> Tuple["Plan", ...]:
        return (self.child,)

    def with_children(self, children: Sequence["Plan"]) -> "Extend":
        (child,) = children
        return Extend(child, self.items)

    def node_label(self) -> str:
        cols = ", ".join(f"{expr!r} AS {name}" for name, expr in self.items)
        return f"Extend: {cols}"


class Join(Plan):
    """Inner join with an arbitrary predicate over the concatenated schema."""

    def __init__(self, left: Plan, right: Plan, predicate: Expression):
        self.left = left
        self.right = right
        self.predicate = predicate
        self.schema = left.schema.concat(right.schema)
        predicate.bind(self.schema)

    @property
    def children(self) -> Tuple[Plan, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[Plan]) -> "Join":
        left, right = children
        return Join(left, right, self.predicate)

    def node_label(self) -> str:
        return f"Join Filter: {self.predicate!r}"


class SemiJoin(Plan):
    """Left semijoin: rows of ``left`` with at least one ``right`` partner.

    The output schema is the left schema; the predicate ranges over the
    concatenated schema.  Proposition 3.3's reduction program is a cascade
    of these with the U-relations α ∧ ψ conditions.
    """

    def __init__(self, left: Plan, right: Plan, predicate: Expression):
        self.left = left
        self.right = right
        self.predicate = predicate
        self.schema = left.schema
        predicate.bind(left.schema.concat(right.schema))

    @property
    def children(self) -> Tuple[Plan, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[Plan]) -> "SemiJoin":
        left, right = children
        return SemiJoin(left, right, self.predicate)

    def node_label(self) -> str:
        return f"SemiJoin Filter: {self.predicate!r}"


class Product(Plan):
    """Cartesian product."""

    def __init__(self, left: Plan, right: Plan):
        self.left = left
        self.right = right
        self.schema = left.schema.concat(right.schema)

    @property
    def children(self) -> Tuple[Plan, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[Plan]) -> "Product":
        left, right = children
        return Product(left, right)

    def node_label(self) -> str:
        return "Nested Loop (cross product)"


class Union(Plan):
    """Bag union of two union-compatible plans (names from the left)."""

    def __init__(self, left: Plan, right: Plan):
        if len(left.schema) != len(right.schema):
            raise SchemaError(
                f"union arity mismatch: {left.schema.names} vs {right.schema.names}"
            )
        self.left = left
        self.right = right
        self.schema = left.schema

    @property
    def children(self) -> Tuple[Plan, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[Plan]) -> "Union":
        left, right = children
        return Union(left, right)

    def node_label(self) -> str:
        return "Append (union all)"


class Difference(Plan):
    """Set difference left − right."""

    def __init__(self, left: Plan, right: Plan):
        if len(left.schema) != len(right.schema):
            raise SchemaError(
                f"difference arity mismatch: {left.schema.names} vs {right.schema.names}"
            )
        self.left = left
        self.right = right
        self.schema = left.schema

    @property
    def children(self) -> Tuple[Plan, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[Plan]) -> "Difference":
        left, right = children
        return Difference(left, right)

    def node_label(self) -> str:
        return "SetOp Except"


class Distinct(Plan):
    """Duplicate elimination."""

    def __init__(self, child: Plan):
        self.child = child
        self.schema = child.schema

    @property
    def children(self) -> Tuple[Plan, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[Plan]) -> "Distinct":
        (child,) = children
        return Distinct(child)

    def node_label(self) -> str:
        return "HashAggregate (distinct)"


class Rename(Plan):
    """Attribute renaming ρ; ``mapping`` maps old references to new names."""

    def __init__(self, child: Plan, mapping: Dict[str, str]):
        self.child = child
        self.mapping = dict(mapping)
        self.schema = child.schema.rename(self.mapping)

    @property
    def children(self) -> Tuple[Plan, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[Plan]) -> "Rename":
        (child,) = children
        return Rename(child, self.mapping)

    def node_label(self) -> str:
        pairs = ", ".join(f"{old}->{new}" for old, new in self.mapping.items())
        return f"Rename: {pairs}"


class ConfCompute(Plan):
    """Tuple-confidence computation over a translated U-relation plan.

    The child produces rows in the canonical U-relation column order —
    ``d_width`` ws-descriptor pairs, then ``tid_count`` tuple-id columns,
    then the value columns (positions matter; names may be alias-qualified).
    The operator groups rows by value tuple and emits one row per distinct
    value tuple with a trailing ``conf`` column: the probability of the
    union of the group's descriptor world-sets against ``world_table``.

    Inserted *above* the optimized child plan by the query translator
    (never seen by the rewrite rules — pushing selections or projections
    through a confidence computation would change the probability).
    """

    def __init__(
        self,
        child: Plan,
        d_width: int,
        tid_count: int,
        value_names: Sequence[str],
        world_table,
        method: str = "auto",
        epsilon: float = 0.01,
        delta: float = 0.05,
        seed: int = 0,
    ):
        self.child = child
        self.d_width = int(d_width)
        self.tid_count = int(tid_count)
        self.value_names = list(value_names)
        self.world_table = world_table
        self.method = method
        self.epsilon = float(epsilon)
        self.delta = float(delta)
        self.seed = int(seed)
        expected = 2 * self.d_width + self.tid_count + len(self.value_names)
        if len(child.schema) != expected:
            raise SchemaError(
                f"conf child has {len(child.schema)} columns; expected "
                f"{expected} (d_width={self.d_width}, tids={self.tid_count}, "
                f"values={len(self.value_names)})"
            )
        self.schema = Schema(self.value_names + ["conf"])

    @property
    def children(self) -> Tuple[Plan, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[Plan]) -> "ConfCompute":
        (child,) = children
        return ConfCompute(
            child,
            self.d_width,
            self.tid_count,
            self.value_names,
            self.world_table,
            self.method,
            self.epsilon,
            self.delta,
            self.seed,
        )

    def node_label(self) -> str:
        return f"Confidence: method={self.method}"


def select_all(child: Plan, predicates: Sequence[Expression]) -> Plan:
    """Wrap a plan in a single Select over the conjunction (no-op if empty)."""
    predicates = [p for p in predicates if p is not None]
    if not predicates:
        return child
    return Select(child, conjunction(predicates))
