"""A named-relation catalog with a query entry point.

:class:`Database` is the substrate's "RDBMS instance": a mapping from table
names to :class:`~repro.relational.relation.Relation` values plus
convenience methods for building scans, running logical plans, and printing
EXPLAIN output.  The U-relations layer stores its representation relations
(vertical partitions and the world table) in one of these.

Each database owns an :class:`~repro.relational.index.IndexRegistry` of
named secondary indexes (:meth:`Database.create_index` /
:meth:`Database.drop_index`).  Indexes are maintained automatically: when a
table's relation is replaced (``create(..., replace=True)``), every index
defined on it is rebuilt over the new relation, and dropping a table drops
its indexes.  The planner performs cost-based access-path selection against
them — ``explain`` shows ``Index Scan using <name> on <table>`` and
``Index Nested Loop Join`` nodes where they win.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from .algebra import Plan, Scan
from .explain import explain as _explain
from .explain import explain_analyze as _explain_analyze
from .index import Index, IndexRegistry
from .optimizer import optimize
from .planner import Planner
from .physical import BATCH_SIZE, execute
from .relation import Relation

__all__ = ["Database"]


class Database:
    """An in-memory database: a catalog of named relations (and indexes)."""

    def __init__(
        self,
        relations: Optional[Dict[str, Relation]] = None,
        registry: Optional[IndexRegistry] = None,
    ):
        self._relations: Dict[str, Relation] = dict(relations or {})
        self.indexes: IndexRegistry = registry if registry is not None else IndexRegistry()

    # ------------------------------------------------------------------
    # catalog management
    # ------------------------------------------------------------------
    def create(self, name: str, relation: Relation, replace: bool = False) -> None:
        """Register a relation under a name.

        Replacing an existing relation rebuilds every index defined on it
        over the new relation object.  The rebuild happens *before* the
        catalog mutation: if an index definition cannot be satisfied by
        the replacement (a missing column, say), the error leaves both the
        catalog and the registry untouched.
        """
        existed = name in self._relations
        if existed and not replace:
            raise KeyError(f"relation {name!r} already exists")
        if existed:
            self.indexes.rebuild_table(name, relation)
        self._relations[name] = relation

    def drop(self, name: str) -> None:
        """Remove a relation (and its indexes) from the catalog."""
        del self._relations[name]
        self.indexes.drop_table(name)

    def get(self, name: str) -> Relation:
        """Look up a relation by name."""
        try:
            return self._relations[name]
        except KeyError:
            raise KeyError(
                f"relation {name!r} not found; have {sorted(self._relations)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[str]:
        return iter(self._relations)

    def names(self):
        """All relation names, sorted."""
        return sorted(self._relations)

    def total_rows(self) -> int:
        """Sum of row counts over all catalog relations."""
        return sum(len(r) for r in self._relations.values())

    def size_bytes(self) -> int:
        """Approximate in-memory payload size (for the Figure 9 analogue)."""
        import sys

        total = 0
        for relation in self._relations.values():
            for row in relation.rows:
                total += sys.getsizeof(row)
                for value in row:
                    total += sys.getsizeof(value)
        return total

    # ------------------------------------------------------------------
    # index management
    # ------------------------------------------------------------------
    def create_index(
        self,
        name: str,
        table: str,
        columns: Sequence[str],
        kind: str = "hash",
        replace: bool = False,
    ) -> Index:
        """Create a named secondary index on a catalog relation.

        ``kind`` is ``"hash"`` (equality lookups) or ``"sorted"``
        (binary-search point + range access).
        """
        return self.indexes.create(
            name, table, self.get(table), columns, kind=kind, replace=replace
        )

    def drop_index(self, name: str) -> None:
        """Drop a named index."""
        self.indexes.drop(name)

    def index_names(self, table: Optional[str] = None) -> List[str]:
        """Names of all indexes, optionally restricted to one table."""
        return self.indexes.names(table)

    # ------------------------------------------------------------------
    # query execution
    # ------------------------------------------------------------------
    def scan(self, name: str, alias: Optional[str] = None) -> Scan:
        """A Scan plan node over a catalog relation."""
        return Scan(self.get(name), name=name, alias=alias)

    def run(
        self,
        plan: Plan,
        optimize_first: bool = True,
        prefer_merge_join: bool = False,
        mode: str = "columns",
        batch_size: int = BATCH_SIZE,
        use_indexes: bool = True,
    ) -> Relation:
        """Optimize, compile, and execute a logical plan.

        ``mode="columns"`` (default) runs the columnar executor over a
        fused plan; ``mode="blocks"`` the row-batch vectorized executor
        (unfused, the PR 1/2 baseline); ``mode="rows"`` the legacy
        tuple-at-a-time iterators.  ``use_indexes=False`` disables
        access-path selection (sequential scans and hash joins only).
        """
        if optimize_first:
            plan = optimize(plan)
        physical = Planner(
            prefer_merge_join=prefer_merge_join,
            use_indexes=use_indexes,
            fuse=mode == "columns",
        ).compile(plan)
        return execute(physical, mode=mode, batch_size=batch_size)

    def explain(
        self,
        plan: Plan,
        optimize_first: bool = True,
        prefer_merge_join: bool = False,
        analyze: bool = False,
        batch_size: int = BATCH_SIZE,
        use_indexes: bool = True,
        mode: str = "columns",
    ) -> str:
        """EXPLAIN output for a logical plan (after optimization).

        ``mode`` selects the plan flavor shown: ``"columns"`` (default)
        displays the fused plan — ``Fused Pipeline`` nodes and joins with
        folded ``Output:`` lines — while ``"blocks"``/``"rows"`` show the
        classic operator tree.  With ``analyze=True`` the plan is executed
        in that mode first and each operator line reports the rows and
        batches it actually produced (fused pipelines report per-pipeline
        counts, since their fused-away operators no longer exist).
        """
        if optimize_first:
            plan = optimize(plan)
        physical = Planner(
            prefer_merge_join=prefer_merge_join,
            use_indexes=use_indexes,
            fuse=mode == "columns",
        ).compile(plan)
        if analyze:
            _result, text = _explain_analyze(physical, batch_size=batch_size, mode=mode)
            return text
        return _explain(physical)
