"""A named-relation catalog with a query entry point.

:class:`Database` is the substrate's "RDBMS instance": a mapping from table
names to :class:`~repro.relational.relation.Relation` values plus
convenience methods for building scans, running logical plans, and printing
EXPLAIN output.  The U-relations layer stores its representation relations
(vertical partitions and the world table) in one of these.

Each database owns an :class:`~repro.relational.index.IndexRegistry` of
named secondary indexes (:meth:`Database.create_index` /
:meth:`Database.drop_index`).  Indexes are maintained automatically: when a
table's relation is replaced (``create(..., replace=True)``), every index
defined on it is rebuilt over the new relation, and dropping a table drops
its indexes.  The planner performs cost-based access-path selection against
them — ``explain`` shows ``Index Scan using <name> on <table>`` and
``Index Nested Loop Join`` nodes where they win.

Prepared plans: every :meth:`run`/:meth:`explain` consults the process-wide
prepared-plan cache (:mod:`repro.relational.plancache`) keyed on the
logical plan's structure, this catalog, and the planner knobs, so a
repeated query skips optimization and physical planning entirely.  The
catalog is *versioned* — :attr:`catalog_version` bumps on every mutation
(table create/replace/drop, index DDL, statistics refresh, and the
deferred auto-index builds that materialize during planning) and each
mutation evicts exactly the cached plans that depend on the changed
relation.  ``explain`` marks a plan served from the cache with
``(cached)``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .algebra import Plan, Scan
from .explain import explain as _explain
from .explain import explain_analyze as _explain_analyze
from .index import Index, IndexRegistry
from .optimizer import optimize, refresh_statistics
from .plancache import (
    build_key,
    bump_relation,
    cache_lookup,
    cache_store,
    cost_class_of,
    logical_plan_key,
    mark_cached,
    plan_relations,
    watch_relation,
)
from .planner import Planner
from .physical import BATCH_SIZE, PhysicalPlan, execute
from .relation import Relation

__all__ = ["Database"]


class Database:
    """An in-memory database: a catalog of named relations (and indexes)."""

    def __init__(
        self,
        relations: Optional[Dict[str, Relation]] = None,
        registry: Optional[IndexRegistry] = None,
    ):
        self._relations: Dict[str, Relation] = {}
        self.indexes: IndexRegistry = registry if registry is not None else IndexRegistry()
        #: Monotone catalog version: bumped by every mutation that can
        #: change what a fresh plan over this catalog would look like.
        #: The prepared-plan cache's invalidation is *finer* than this
        #: (per-relation), but the version gives tests and operators one
        #: observable number that provably moves on every DDL.
        self.catalog_version = 0
        for name, relation in (relations or {}).items():
            self._relations[name] = relation
            watch_relation(relation, self)

    def _bump_catalog_version(self) -> None:
        """Plan-cache watcher hook: a relation of this catalog mutated."""
        self.catalog_version += 1

    # ------------------------------------------------------------------
    # catalog management
    # ------------------------------------------------------------------
    def create(self, name: str, relation: Relation, replace: bool = False) -> None:
        """Register a relation under a name.

        Replacing an existing relation rebuilds every index defined on it
        over the new relation object.  The rebuild happens *before* the
        catalog mutation: if an index definition cannot be satisfied by
        the replacement (a missing column, say), the error leaves both the
        catalog and the registry untouched.  A replacement bumps
        :attr:`catalog_version` and evicts every cached plan that scanned
        the old relation object.
        """
        existed = name in self._relations
        if existed and not replace:
            raise KeyError(f"relation {name!r} already exists")
        old = self._relations.get(name)
        if existed:
            self.indexes.rebuild_table(name, relation)
        self._relations[name] = relation
        watch_relation(relation, self)
        self.catalog_version += 1
        if old is not None and old is not relation:
            bump_relation(old)

    def drop(self, name: str) -> None:
        """Remove a relation (and its indexes) from the catalog."""
        relation = self._relations.pop(name)
        self.indexes.drop_table(name)
        self.catalog_version += 1
        bump_relation(relation)

    def get(self, name: str) -> Relation:
        """Look up a relation by name."""
        try:
            return self._relations[name]
        except KeyError:
            raise KeyError(
                f"relation {name!r} not found; have {sorted(self._relations)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[str]:
        return iter(self._relations)

    def names(self):
        """All relation names, sorted."""
        return sorted(self._relations)

    def total_rows(self) -> int:
        """Sum of row counts over all catalog relations."""
        return sum(len(r) for r in self._relations.values())

    def size_bytes(self) -> int:
        """Approximate in-memory payload size (for the Figure 9 analogue)."""
        import sys

        total = 0
        for relation in self._relations.values():
            for row in relation.rows:
                total += sys.getsizeof(row)
                for value in row:
                    total += sys.getsizeof(value)
        return total

    # ------------------------------------------------------------------
    # index management
    # ------------------------------------------------------------------
    def create_index(
        self,
        name: str,
        table: str,
        columns: Sequence[str],
        kind: str = "hash",
        replace: bool = False,
    ) -> Index:
        """Create a named secondary index on a catalog relation.

        ``kind`` is ``"hash"`` (equality lookups) or ``"sorted"``
        (binary-search point + range access).  Bumps the catalog version;
        the attach evicts cached plans over the table so the next
        execution re-plans with the new access path.
        """
        index = self.indexes.create(
            name, table, self.get(table), columns, kind=kind, replace=replace
        )
        self.catalog_version += 1
        return index

    def drop_index(self, name: str) -> None:
        """Drop a named index (bumps the catalog version, evicts plans)."""
        self.indexes.drop(name)
        self.catalog_version += 1

    def index_names(self, table: Optional[str] = None) -> List[str]:
        """Names of all indexes, optionally restricted to one table."""
        return self.indexes.names(table)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def analyze(self, table: Optional[str] = None) -> None:
        """Recompute optimizer statistics (one table, or all).

        The PostgreSQL-``ANALYZE`` analogue: drops the cached
        :class:`~repro.relational.statistics.TableStats` so the next
        planning pass recomputes them, bumps :attr:`catalog_version`, and
        evicts cached plans over the refreshed relations (their access
        paths were chosen against the stale estimates).
        """
        targets = [self.get(table)] if table is not None else list(
            self._relations.values()
        )
        for relation in targets:
            refresh_statistics(relation)

    # ------------------------------------------------------------------
    # query execution
    # ------------------------------------------------------------------
    def scan(self, name: str, alias: Optional[str] = None) -> Scan:
        """A Scan plan node over a catalog relation."""
        return Scan(self.get(name), name=name, alias=alias)

    def _cached_physical(
        self,
        plan: Plan,
        optimize_first: bool,
        prefer_merge_join: bool,
        use_indexes: bool,
        fuse: bool,
        parallel: int = 0,
    ) -> Tuple[PhysicalPlan, bool, Optional[Tuple]]:
        """The physical plan for a logical plan, via the prepared-plan cache.

        Returns ``(physical, was_cached, cache_key)``.  Uncacheable plan
        shapes (an unknown node or expression subclass) compile fresh every
        time under a ``None`` key.  The entry records how long planning
        took (the cache's eviction weight) and the plan's admission cost
        class.
        """
        import time

        from ..obs import span as obs_span

        key = build_key(
            lambda: (
                "db-run",
                id(self),
                logical_plan_key(plan),
                optimize_first,
                prefer_merge_join,
                use_indexes,
                fuse,
                parallel,
            )
        )
        with obs_span("plan") as sp:
            cached = cache_lookup(key)
            if cached is not None:
                sp.set(cached=True)
                return cached, True, key
            sp.set(cached=False)
            started = time.perf_counter()
            logical = optimize(plan) if optimize_first else plan
            physical = Planner(
                prefer_merge_join=prefer_merge_join,
                use_indexes=use_indexes,
                fuse=fuse,
                parallel=parallel,
            ).compile(logical)
            cache_store(
                key,
                physical,
                deps=plan_relations(plan),
                pins=(self, plan),
                cost_class=cost_class_of(physical),
                plan_cost=time.perf_counter() - started,
            )
        return physical, False, key

    def run(
        self,
        plan: Plan,
        optimize_first: bool = True,
        prefer_merge_join: bool = False,
        mode: str = "columns",
        batch_size: int = BATCH_SIZE,
        use_indexes: bool = True,
        parallel: int = 0,
    ) -> Relation:
        """Optimize, compile, and execute a logical plan.

        ``mode="columns"`` (default) runs the columnar executor over a
        fused plan; ``mode="blocks"`` the row-batch vectorized executor
        (unfused, the PR 1/2 baseline); ``mode="rows"`` the legacy
        tuple-at-a-time iterators.  ``use_indexes=False`` disables
        access-path selection (sequential scans and hash joins only).

        Repeated runs of a structurally identical plan skip optimization
        and planning entirely: the physical tree comes from the
        prepared-plan cache (``rows`` and ``blocks`` share one unfused
        plan; ``columns`` caches its fused plan separately).
        """
        from ..obs import current_span
        from .plancache import record_observed_rows

        physical, _, key = self._cached_physical(
            plan,
            optimize_first,
            prefer_merge_join,
            use_indexes,
            fuse=mode == "columns",
            parallel=parallel,
        )
        result = execute(physical, mode=mode, batch_size=batch_size)
        record_observed_rows(key, physical.estimated_rows, physical.actual_rows)
        current_span().set(operators=physical.actuals())
        return result

    def explain(
        self,
        plan: Plan,
        optimize_first: bool = True,
        prefer_merge_join: bool = False,
        analyze: bool = False,
        batch_size: int = BATCH_SIZE,
        use_indexes: bool = True,
        mode: str = "columns",
        parallel: int = 0,
    ) -> str:
        """EXPLAIN output for a logical plan (after optimization).

        ``mode`` selects the plan flavor shown: ``"columns"`` (default)
        displays the fused plan — ``Fused Pipeline`` nodes and joins with
        folded ``Output:`` lines — while ``"blocks"``/``"rows"`` show the
        classic operator tree.  With ``analyze=True`` the plan is executed
        in that mode first and each operator line reports the rows and
        batches it actually produced (fused pipelines report per-pipeline
        counts, since their fused-away operators no longer exist).

        A plan served from the prepared-plan cache is marked ``(cached)``
        on its top line; the explained plan is also *inserted* into the
        cache, so explaining then running a query plans it exactly once.
        """
        physical, was_cached, _key = self._cached_physical(
            plan,
            optimize_first,
            prefer_merge_join,
            use_indexes,
            fuse=mode == "columns",
            parallel=parallel,
        )
        if analyze:
            _result, text = _explain_analyze(physical, batch_size=batch_size, mode=mode)
        else:
            text = _explain(physical)
        return mark_cached(text) if was_cached else text
