"""Logical-to-physical plan compilation with access-path selection.

The planner walks an (ideally optimized) logical plan and selects physical
algorithms:

* ``Select`` directly over a base scan (through any renames) -> an
  :class:`IndexScan` when an attached index covers the predicate's
  equality/range conjuncts *and* the cost model expects few matches;
  otherwise ``Filter`` over ``SeqScan``,
* ``Join`` with equi-pairs -> an :class:`IndexNestedLoopJoin` when one
  side is a bare (possibly renamed) base scan with an index on its join
  columns and the cost gate passes; else :class:`HashJoin` (or
  :class:`MergeJoin` when the planner is configured with
  ``prefer_merge_join=True``, mirroring the PostgreSQL plans of the
  paper's Figure 13 — that profile disables index paths for visual
  parity),
* ``Join`` without equi-pairs and ``Product`` -> :class:`NestedLoopJoin`,
* everything else maps one-to-one.

Access paths are discovered through :func:`repro.relational.index.indexes_on`
— indexes attach to the relation objects themselves, so plans built without
a :class:`~repro.relational.database.Database` (the U-relations translation
does this) still benefit.  Renames never reorder columns, so a column
position in the renamed schema equals its position in the base relation,
which is what lets the planner match predicate columns against index
columns through arbitrary rename chains.

Cardinality estimates from the optimizer are attached to the physical nodes
so EXPLAIN can print them (cosmetically matching the paper's plan figure).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from .algebra import (
    ConfCompute,
    Difference,
    Distinct,
    Extend,
    Join,
    Plan,
    Product,
    Project,
    ProjectAs,
    Rename,
    Scan,
    Select,
    SemiJoin,
    Union,
)
from .expressions import (
    Between,
    Col,
    Comparison,
    Expression,
    Lit,
    Param,
    conjunction,
    equijoin_pairs,
    split_conjuncts,
)
from .index import SortedIndex, indexes_on
from .optimizer import estimate_rows, scan_stats
from .physical import (
    BATCH_SIZE,
    Append,
    Confidence,
    Except,
    ExtendOp,
    Filter,
    FusedPipeline,
    HashDistinct,
    HashJoin,
    IndexNestedLoopJoin,
    IndexScan,
    Materialize,
    MergeJoin,
    NestedLoopJoin,
    ParallelScan,
    PhysicalPlan,
    Projection,
    ProjectionAs,
    SemiJoinOp,
    SeqScan,
)
from .relation import Relation
from .schema import SchemaError
from .statistics import (
    EQUALITY_DEFAULT,
    RANGE_DEFAULT,
    use_index_join,
    use_index_scan,
)

__all__ = ["Planner", "plan_physical", "run", "PARALLEL_SCAN_MIN_ROWS"]

#: A base scan estimated below this many rows is never parallelized —
#: the thread handoffs would cost more than the scan.
PARALLEL_SCAN_MIN_ROWS = 2048.0


def _base_scan(plan: Plan) -> Optional[Scan]:
    """The base Scan under a chain of Renames, or None.

    Renames change names only (positions and rows are untouched), so an
    index over the base relation serves any renamed view of it.
    """
    while isinstance(plan, Rename):
        plan = plan.child
    return plan if isinstance(plan, Scan) else None


def _base_scan_with_filters(
    plan: Plan,
) -> Tuple[Optional[Scan], List[Tuple[Expression, Any]]]:
    """The base Scan under Rename/Select chains, plus the peeled filters.

    Each filter is returned with the schema it binds against; since neither
    renames nor selections move columns, a predicate compiled at any level
    of the chain evaluates correctly against the base relation's rows.
    Used by index-join selection: a filtered partition scan becomes index
    probes with the filter applied to the few matched rows.
    """
    filters: List[Tuple[Expression, Any]] = []
    while True:
        if isinstance(plan, Rename):
            plan = plan.child
        elif isinstance(plan, Select):
            filters.append((plan.predicate, plan.child.schema))
            plan = plan.child
        else:
            break
    if not isinstance(plan, Scan):
        return None, []
    return plan, filters


def _resolve(schema, reference: str) -> Optional[int]:
    try:
        return schema.resolve(reference)
    except SchemaError:
        return None


class Planner:
    """Compiles logical plans to physical plans.

    With ``fuse=True`` a post-pass collapses each maximal
    scan→filter→project chain (through renames) into a single
    :class:`~repro.relational.physical.FusedPipeline` and folds projections
    that sit directly above joins into the joins' emit
    (:meth:`~repro.relational.physical.HashJoin.set_output`) — the
    standalone ``Project`` reorders that bracket the partition merges of
    translated U-relation plans disappear into the join loops.  The
    columnar execution mode enables fusion by default; the unfused tree is
    kept for the blocks/rows baselines.
    """

    def __init__(
        self,
        prefer_merge_join: bool = False,
        use_indexes: bool = True,
        fuse: bool = False,
        parallel: int = 0,
    ):
        self.prefer_merge_join = prefer_merge_join
        # the merge-join profile reproduces the paper's PostgreSQL plans
        # verbatim, so it keeps the classic scan/join operators only
        self.use_indexes = use_indexes and not prefer_merge_join
        self.fuse = fuse
        #: Partition-parallel scans: with ``parallel >= 2``, base scans
        #: whose estimated cost clears :data:`PARALLEL_SCAN_MIN_ROWS` are
        #: wrapped in a :class:`~repro.relational.physical.ParallelScan`
        #: gather over that many range partitions.  0 (the default) keeps
        #: plans serial.
        self.parallel = int(parallel)

    def compile(self, plan: Plan) -> PhysicalPlan:
        """Compile a logical plan tree into a physical operator tree."""
        physical = self._compile(plan)
        if self.fuse:
            physical = _fuse_tree(physical)
        if self.parallel >= 2:
            physical = _parallelize_tree(physical, self.parallel)
        return physical

    # ------------------------------------------------------------------
    def _compile(self, plan: Plan) -> PhysicalPlan:
        if isinstance(plan, Scan):
            node: PhysicalPlan = SeqScan(plan.relation, plan.name, plan.alias)
        elif isinstance(plan, Select):
            node = self._compile_select(plan)
        elif isinstance(plan, Project):
            node = Projection(self._compile(plan.child), plan.columns)
        elif isinstance(plan, ProjectAs):
            node = ProjectionAs(self._compile(plan.child), plan.items)
        elif isinstance(plan, Extend):
            node = ExtendOp(self._compile(plan.child), plan.items)
        elif isinstance(plan, Join):
            node = self._compile_join(plan)
        elif isinstance(plan, SemiJoin):
            node = SemiJoinOp(
                self._compile(plan.left), self._compile(plan.right), plan.predicate
            )
        elif isinstance(plan, Product):
            node = NestedLoopJoin(self._compile(plan.left), self._compile(plan.right), None)
        elif isinstance(plan, Union):
            node = Append(self._compile(plan.left), self._compile(plan.right))
        elif isinstance(plan, Difference):
            node = Except(self._compile(plan.left), self._compile(plan.right))
        elif isinstance(plan, Distinct):
            node = HashDistinct(self._compile(plan.child))
        elif isinstance(plan, Rename):
            node = _RenameOp(self._compile(plan.child), plan)
        elif isinstance(plan, ConfCompute):
            node = Confidence(
                self._compile(plan.child),
                plan.d_width,
                plan.tid_count,
                plan.value_names,
                plan.world_table,
                plan.method,
                plan.epsilon,
                plan.delta,
                plan.seed,
            )
        else:
            raise TypeError(f"cannot compile logical node {type(plan).__name__}")
        node.estimated_rows = estimate_rows(plan)
        return node

    # ------------------------------------------------------------------
    # selections: IndexScan vs Filter(SeqScan)
    # ------------------------------------------------------------------
    def _compile_select(self, plan: Select) -> PhysicalPlan:
        if self.use_indexes:
            node = self._try_index_scan(plan)
            if node is not None:
                return node
        return Filter(self._compile(plan.child), plan.predicate)

    def _try_index_scan(self, plan: Select) -> Optional[IndexScan]:
        scan = _base_scan(plan.child)
        if scan is None:
            return None
        available = indexes_on(scan.relation)
        if not available:
            return None
        schema = plan.child.schema
        conjuncts = split_conjuncts(plan.predicate)
        eq, ranges = _classify_conjuncts(conjuncts, schema)
        if not eq and not ranges:
            return None
        stats = scan_stats(scan)
        table_rows = float(len(scan.relation))
        base_names = scan.relation.schema.names

        best: Optional[Tuple[float, IndexScan]] = None
        for index in available:
            candidate: Optional[Tuple[float, IndexScan]] = None
            if all(p in eq for p in index.positions):
                candidate = self._point_candidate(
                    index, eq, conjuncts, schema, scan, stats, base_names, table_rows
                )
            elif (
                isinstance(index, SortedIndex)
                and len(index.positions) == 1
                and index.positions[0] in ranges
            ):
                candidate = self._range_candidate(
                    index, ranges, conjuncts, schema, scan, stats, base_names, table_rows
                )
            if candidate is not None and (best is None or candidate[0] < best[0]):
                best = candidate
        if best is None:
            return None
        estimated_matches, node = best
        if not use_index_scan(estimated_matches, table_rows):
            return None
        return node

    def _point_candidate(
        self, index, eq, conjuncts, schema, scan, stats, base_names, table_rows
    ) -> Tuple[float, IndexScan]:
        values = [eq[p][0] for p in index.positions]
        consumed = {id(eq[p][1]) for p in index.positions}
        selectivity = 1.0
        for p in index.positions:
            column = stats.column(base_names[p])
            selectivity *= column.eq_selectivity() if column else EQUALITY_DEFAULT
        if any(v is None for v in values):
            # equality with a NULL literal matches nothing.  A Param slot
            # is never None here (it is the Param object itself; its value
            # resolves per execution), so parameterized point lookups keep
            # the column's equality selectivity.
            selectivity = 0.0
        point = values[0] if len(values) == 1 else tuple(values)
        cond = conjunction([eq[p][1] for p in index.positions])
        node = self._index_scan_node(
            index, scan, schema, conjuncts, consumed, point=point, cond=cond
        )
        return table_rows * selectivity, node

    def _range_candidate(
        self, index, ranges, conjuncts, schema, scan, stats, base_names, table_rows
    ) -> Optional[Tuple[float, IndexScan]]:
        """Build a range IndexScan from the column's bound conjuncts.

        Literal bounds tighten at plan time as before.  A ``$n`` Param
        bound cannot be compared now, so it is *deferred*: it becomes the
        side's bound only when no literal already bounds that side and it
        is the side's sole parameterized bound (a second one could not be
        intersected without plan-time values) — the IndexScan then
        resolves the Param at execution, so one cached plan serves
        ``BETWEEN $1 AND $2`` across all bindings.  Unused Param bounds
        stay in the residual.
        """
        position = index.positions[0]
        column = stats.column(base_names[position])
        lower: Optional[Tuple[Any, bool]] = None
        upper: Optional[Tuple[Any, bool]] = None
        applied: Dict[int, List[bool]] = {}
        deferred: Dict[bool, List[Tuple[Param, bool, Expression]]] = {
            True: [],
            False: [],
        }
        for op, value, conjunct in ranges[position]:
            is_lower = op in (">", ">=")
            if isinstance(value, Param):
                deferred[is_lower].append((value, op in (">=", "<="), conjunct))
                continue
            outcome = False
            if value is not None:
                try:
                    if is_lower:
                        lower = _tighten(lower, (value, op == ">="), is_lower=True)
                    else:
                        upper = _tighten(upper, (value, op == "<="), is_lower=False)
                    outcome = True
                except TypeError:
                    outcome = False  # incomparable bound: leave it to the residual
            applied.setdefault(id(conjunct), []).append(outcome)
        parameterized = False
        for is_lower, entries in deferred.items():
            side = lower if is_lower else upper
            usable = side is None and len(entries) == 1
            for param, inclusive, conjunct in entries:
                applied.setdefault(id(conjunct), []).append(usable)
            if usable:
                param, inclusive, _ = entries[0]
                parameterized = True
                if is_lower:
                    lower = (param, inclusive)
                else:
                    upper = (param, inclusive)
        if lower is None and upper is None:
            return None
        if parameterized:
            # bound values are unknown until execution: default estimates
            selectivity = (
                RANGE_DEFAULT if (lower is None or upper is None) else RANGE_DEFAULT / 2
            )
        elif column is not None:
            selectivity = column.interval_selectivity(
                lower[0] if lower else None, upper[0] if upper else None
            )
        else:
            selectivity = RANGE_DEFAULT if (lower is None or upper is None) else RANGE_DEFAULT / 2
        # a conjunct is consumed only if *all* its bounds were applied
        # (a half-applied BETWEEN still narrows the range soundly, but its
        # other half must be re-checked by the residual)
        consumed = {cid for cid, outcomes in applied.items() if all(outcomes)}
        cond_parts = [c for c in conjuncts if id(c) in consumed]
        node = self._index_scan_node(
            index,
            scan,
            schema,
            conjuncts,
            consumed,
            lower=lower,
            upper=upper,
            cond=conjunction(cond_parts) if cond_parts else None,
        )
        return table_rows * selectivity, node

    def _index_scan_node(
        self,
        index,
        scan: Scan,
        schema,
        conjuncts: Sequence[Expression],
        consumed: set,
        point: Any = None,
        lower: Optional[Tuple[Any, bool]] = None,
        upper: Optional[Tuple[Any, bool]] = None,
        cond: Optional[Expression] = None,
    ) -> IndexScan:
        residual_parts = [c for c in conjuncts if id(c) not in consumed]
        residual = conjunction(residual_parts) if residual_parts else None
        kwargs: Dict[str, Any] = {}
        if lower is not None or upper is not None:
            if lower is not None:
                kwargs["lower"], kwargs["lower_inclusive"] = lower
            if upper is not None:
                kwargs["upper"], kwargs["upper_inclusive"] = upper
        else:
            kwargs["point"] = point
        return IndexScan(
            index,
            scan.name,
            schema,
            alias=scan.alias,
            index_cond=repr(cond) if cond is not None else None,
            residual=residual,
            **kwargs,
        )

    # ------------------------------------------------------------------
    # joins: IndexNestedLoopJoin vs HashJoin/MergeJoin
    # ------------------------------------------------------------------
    def _compile_join(self, plan: Join) -> PhysicalPlan:
        left = self._compile(plan.left)
        right = self._compile(plan.right)
        pairs, residual_list = equijoin_pairs(plan.predicate, plan.left.schema, plan.right.schema)
        residual = conjunction(residual_list) if residual_list else None
        if pairs:
            if self.prefer_merge_join:
                return MergeJoin(left, right, pairs, residual)
            if self.use_indexes:
                node = self._try_index_join(plan, left, right, pairs, residual_list)
                if node is not None:
                    return node
            # hash the smaller input; ties keep the classic build-right
            build = "left" if left.estimated_rows < right.estimated_rows else "right"
            return HashJoin(left, right, pairs, residual, build=build)
        return NestedLoopJoin(left, right, plan.predicate)

    def _try_index_join(
        self,
        plan: Join,
        left: PhysicalPlan,
        right: PhysicalPlan,
        pairs: Sequence[Tuple[str, str]],
        residual_list: Sequence[Expression],
    ) -> Optional[IndexNestedLoopJoin]:
        candidates = [
            node
            for flipped in (False, True)
            if (node := self._index_join_candidate(plan, left, right, pairs, residual_list, flipped))
            is not None
        ]
        if not candidates:
            return None
        # probing costs one lookup per outer row: take the smaller outer
        return min(candidates, key=lambda n: n.outer.estimated_rows)

    def _index_join_candidate(
        self,
        plan: Join,
        left: PhysicalPlan,
        right: PhysicalPlan,
        pairs: Sequence[Tuple[str, str]],
        residual_list: Sequence[Expression],
        flipped: bool,
    ) -> Optional[IndexNestedLoopJoin]:
        inner_logical = plan.left if flipped else plan.right
        outer_phys, inner_phys = (right, left) if flipped else (left, right)
        scan, inner_filters = _base_scan_with_filters(inner_logical)
        if scan is None:
            return None
        available = indexes_on(scan.relation)
        if not available:
            return None
        # map inner column positions to their equi-pairs; renames keep
        # positions stable, so these match the index's base positions
        by_position: Dict[int, Tuple[str, str]] = {}
        for l, r in pairs:
            outer_col, inner_col = (r, l) if flipped else (l, r)
            position = _resolve(inner_phys.schema, inner_col)
            if position is not None:
                by_position.setdefault(position, (outer_col, inner_col))
        chosen = None
        for index in available:
            if index.positions and all(p in by_position for p in index.positions):
                chosen = index
                break
        if chosen is None:
            return None
        # the hash alternative must scan (and filter, and hash) the
        # whole base relation; probing costs one lookup per outer row
        if not use_index_join(
            outer_phys.estimated_rows,
            float(len(scan.relation)),
            inner_filtered=bool(inner_filters),
        ):
            return None
        covered = [by_position[p] for p in chosen.positions]
        outer_positions = [outer_phys.schema.resolve(o) for o, _ in covered]
        # equi-pairs the index does not cover degrade to residual checks
        leftover: List[Expression] = []
        remaining = list(covered)
        for l, r in pairs:
            key = (r, l) if flipped else (l, r)
            if key in remaining:
                remaining.remove(key)
                continue
            leftover.append(Comparison("=", Col(l), Col(r)))
        residual_parts = leftover + list(residual_list)
        residual = conjunction(residual_parts) if residual_parts else None
        probe = IndexScan(
            chosen,
            scan.name,
            inner_phys.schema,
            alias=scan.alias,
            probe=True,
            index_cond=" AND ".join(f"({i} = {o})" for o, i in covered),
        )
        probe.estimated_rows = inner_phys.estimated_rows
        return IndexNestedLoopJoin(
            outer_phys,
            probe,
            chosen,
            outer_positions,
            covered,
            residual=residual,
            flipped=flipped,
            inner_filters=[p.compile(s) for p, s in inner_filters],
            inner_filter_exprs=[p for p, _ in inner_filters],
            inner_filter_schemas=[s for _, s in inner_filters],
        )


def _classify_conjuncts(
    conjuncts: Sequence[Expression], schema
) -> Tuple[Dict[int, Tuple[Any, Expression]], Dict[int, List[Tuple[str, Any, Expression]]]]:
    """Split conjuncts into per-column equality and range conditions.

    Returns ``(eq, ranges)`` keyed by column *position* in the schema (and
    therefore in the base relation — renames preserve positions).  Only
    column-vs-literal shapes are classified; everything else stays
    unclassified and lands in the residual.  A ``$n`` parameter slot
    counts as a literal for equality *and* range bounds: the classified
    value is the Param object itself, and the index lookup resolves it
    per execution, so one cached plan serves every binding (see
    :meth:`_range_candidate` for how deferred bounds combine with
    plan-time tightening).
    """
    eq: Dict[int, Tuple[Any, Expression]] = {}
    ranges: Dict[int, List[Tuple[str, Any, Expression]]] = {}

    def bound(value):
        return value if isinstance(value, Param) else value.value

    for conjunct in conjuncts:
        if isinstance(conjunct, Comparison):
            cmp = conjunct
            if isinstance(cmp.left, (Lit, Param)) and isinstance(cmp.right, Col):
                cmp = cmp.flipped()
            if not (isinstance(cmp.left, Col) and isinstance(cmp.right, (Lit, Param))):
                continue
            position = _resolve(schema, cmp.left.name)
            if position is None:
                continue
            if cmp.op == "=":
                eq.setdefault(position, (bound(cmp.right), conjunct))
            elif cmp.op in ("<", "<=", ">", ">="):
                ranges.setdefault(position, []).append(
                    (cmp.op, bound(cmp.right), conjunct)
                )
        elif (
            isinstance(conjunct, Between)
            and isinstance(conjunct.operand, Col)
            and isinstance(conjunct.low, (Lit, Param))
            and isinstance(conjunct.high, (Lit, Param))
        ):
            position = _resolve(schema, conjunct.operand.name)
            if position is None:
                continue
            ranges.setdefault(position, []).append((">=", bound(conjunct.low), conjunct))
            ranges.setdefault(position, []).append(("<=", bound(conjunct.high), conjunct))
    return eq, ranges


def _tighten(
    current: Optional[Tuple[Any, bool]], new: Tuple[Any, bool], is_lower: bool
) -> Tuple[Any, bool]:
    """Intersect two (value, inclusive) bounds, keeping the tighter one."""
    if current is None:
        return new
    current_value, current_inclusive = current
    new_value, new_inclusive = new
    if (new_value > current_value) if is_lower else (new_value < current_value):
        return new
    if new_value == current_value:
        return (current_value, current_inclusive and new_inclusive)
    return current


class _RenameOp(PhysicalPlan):
    """Physical rename: rows pass through, only the schema changes."""

    row_passthrough = True

    def __init__(self, child: PhysicalPlan, logical: Rename):
        self.child = child
        self.schema = child.schema.rename(logical.mapping)
        self.mapping = logical.mapping
        self.estimated_rows = child.estimated_rows

    @property
    def children(self):
        return (self.child,)

    def rows(self):
        return self.child.rows()

    def _batches(self, size):
        return self.child.batches(size)

    def _column_batches(self, size):
        return self.child.column_batches(size)

    def explain_label(self) -> str:
        return "Rename"


# ======================================================================
# pipeline fusion (post-pass over the physical tree)
# ======================================================================
def _through_renames(node: PhysicalPlan) -> PhysicalPlan:
    """Look through pass-through (rename) wrappers.

    Renames change names, never positions, so predicates and projections
    compiled above them apply unchanged to the rows underneath.
    """
    while node.row_passthrough:
        node = node.children[0]
    return node


def _reanchor(
    expression: Expression,
    from_schema,
    to_schema,
    position_map: Optional[Sequence[int]] = None,
) -> Expression:
    """Rewrite column refs from one schema to another by *position*.

    ``position_map`` (a fused pipeline's output positions) translates a
    position in ``from_schema`` to the matching position in ``to_schema``;
    without it positions carry over unchanged (the rename case).
    """

    def rewrite(expr: Expression) -> Expression:
        if isinstance(expr, Col):
            position = from_schema.resolve(expr.name)
            if position_map is not None:
                position = position_map[position]
            return Col(to_schema.names[position])
        clone = expr.__class__.__new__(expr.__class__)
        for klass in type(expr).__mro__:
            for slot in getattr(klass, "__slots__", ()):
                value = getattr(expr, slot)
                if isinstance(value, Expression):
                    value = rewrite(value)
                elif isinstance(value, tuple) and value and isinstance(value[0], Expression):
                    value = tuple(rewrite(v) for v in value)
                object.__setattr__(clone, slot, value)
        return clone

    return rewrite(expression)


_FOLDABLE_JOINS = (HashJoin, IndexNestedLoopJoin, MergeJoin)


def _fuse_children(node: PhysicalPlan) -> None:
    """Recursively fuse every child subtree (replacing child references)."""
    if isinstance(
        node,
        (Filter, Projection, ProjectionAs, ExtendOp, HashDistinct, _RenameOp, Confidence),
    ):
        node.child = _fuse_tree(node.child)
    elif isinstance(node, MergeJoin):
        # fuse beneath the Sort wrappers the join inserted
        node.left.child = _fuse_tree(node.left.child)
        node.right.child = _fuse_tree(node.right.child)
    elif isinstance(node, (HashJoin, Append, Except)):
        node.left = _fuse_tree(node.left)
        node.right = _fuse_tree(node.right)
    elif isinstance(node, IndexNestedLoopJoin):
        node.outer = _fuse_tree(node.outer)
    elif isinstance(node, (NestedLoopJoin, SemiJoinOp)):
        node.left = _fuse_tree(node.left)
        node.right.child = _fuse_tree(node.right.child)  # Materialize wrapper


def _fuse_tree(node: PhysicalPlan) -> PhysicalPlan:
    """Fuse scan→filter→project chains and fold projections into joins.

    Children are fused bottom-up first; schemas of replaced subtrees are
    preserved exactly, so parent operators' resolved positions stay valid.
    """
    _fuse_children(node)

    if isinstance(node, (Projection, ProjectionAs)):
        inner = _through_renames(node.child)
        if isinstance(inner, FusedPipeline):
            positions = (
                [inner.positions[p] for p in node.positions]
                if inner.positions is not None
                else list(node.positions)
            )
            fused = FusedPipeline(inner.source, inner.predicate, positions, node.schema)
            fused.estimated_rows = node.estimated_rows
            return fused
        if isinstance(inner, _FOLDABLE_JOINS):
            if inner.output_positions is not None:
                composed = [inner.output_positions[p] for p in node.positions]
            else:
                composed = list(node.positions)
            inner.set_output(composed, node.schema)
            return inner
        if isinstance(inner, (SeqScan, IndexScan)):
            fused = FusedPipeline(inner, None, list(node.positions), node.schema)
            fused.estimated_rows = node.estimated_rows
            return fused
        return node

    if isinstance(node, Filter):
        inner = _through_renames(node.child)
        if isinstance(inner, FusedPipeline):
            anchored = _reanchor(
                node.predicate, node.child.schema, inner.source.schema, inner.positions
            )
            predicate = (
                conjunction([inner.predicate, anchored])
                if inner.predicate is not None
                else anchored
            )
            fused = FusedPipeline(inner.source, predicate, inner.positions, node.schema)
            fused.estimated_rows = node.estimated_rows
            return fused
        if isinstance(inner, (SeqScan, IndexScan)):
            anchored = _reanchor(node.predicate, node.child.schema, inner.schema)
            fused = FusedPipeline(inner, anchored, None, node.schema)
            fused.estimated_rows = node.estimated_rows
            return fused
        return node

    return node


# ======================================================================
# partition-parallel scans (post-pass over the physical tree)
# ======================================================================
def _parallel_candidate(node: PhysicalPlan, workers: int) -> Optional[ParallelScan]:
    """Wrap a fused pipeline / bare scan in a gather when it is worth it.

    The decision is by estimated *scan* cost — the rows the base scan
    reads, not the rows the pipeline emits: a highly selective filter over
    a big relation still pays the full scan and parallelizes well.
    """
    if isinstance(node, FusedPipeline):
        source = node.source
        if isinstance(source, SeqScan) and source.estimated_rows >= PARALLEL_SCAN_MIN_ROWS:
            return ParallelScan(node, workers)
        return None
    if isinstance(node, SeqScan) and node.estimated_rows >= PARALLEL_SCAN_MIN_ROWS:
        return ParallelScan(node, workers)
    return None


def _parallelize_tree(node: PhysicalPlan, workers: int) -> PhysicalPlan:
    """Insert :class:`ParallelScan` gathers over the large base pipelines.

    Mirrors the fusion pass's traversal: children are rewritten in place
    (schemas are preserved exactly), and each fused scan→filter→project
    pipeline (or bare sequential scan) over a large relation becomes a
    gather over ``workers`` range partitions.  Index scans and the
    display-only inner sides of index joins are never touched.
    """
    wrapped = _parallel_candidate(node, workers)
    if wrapped is not None:
        return wrapped
    if isinstance(
        node,
        (
            Filter,
            Projection,
            ProjectionAs,
            ExtendOp,
            HashDistinct,
            _RenameOp,
            Materialize,
            Confidence,
        ),
    ):
        node.child = _parallelize_tree(node.child, workers)
    elif isinstance(node, MergeJoin):
        # merge-join inputs stay serial: wrapping the Sort children would
        # hide the base scans from the presorted-index merge path, a worse
        # trade than parallelizing a scan the Sort drains anyway
        pass
    elif isinstance(node, (HashJoin, Append, Except)):
        node.left = _parallelize_tree(node.left, workers)
        node.right = _parallelize_tree(node.right, workers)
    elif isinstance(node, IndexNestedLoopJoin):
        node.outer = _parallelize_tree(node.outer, workers)
    elif isinstance(node, (NestedLoopJoin, SemiJoinOp)):
        node.left = _parallelize_tree(node.left, workers)
        node.right.child = _parallelize_tree(node.right.child, workers)
    return node


def plan_physical(
    plan: Plan,
    prefer_merge_join: bool = False,
    use_indexes: bool = True,
    fuse: bool = False,
    parallel: int = 0,
) -> PhysicalPlan:
    """Compile a logical plan with a default-configured planner."""
    return Planner(
        prefer_merge_join=prefer_merge_join,
        use_indexes=use_indexes,
        fuse=fuse,
        parallel=parallel,
    ).compile(plan)


def run(
    plan: Plan,
    optimize_first: bool = True,
    prefer_merge_join: bool = False,
    mode: str = "columns",
    batch_size: int = BATCH_SIZE,
    use_indexes: bool = True,
    parallel: int = 0,
) -> Relation:
    """Optimize, compile, and execute a logical plan.

    ``mode`` selects the executor: ``"columns"`` (columnar + fused
    pipelines, the default), ``"blocks"`` (row-batch vectorized, the PR 1/2
    baseline — plans are compiled *without* fusion so the baseline stays
    byte-for-byte comparable), or ``"rows"`` (legacy tuple-at-a-time).
    ``use_indexes=False`` additionally disables access-path selection
    (every scan sequential, every equi-join hashed).
    """
    from .optimizer import optimize
    from .physical import execute

    if optimize_first:
        plan = optimize(plan)
    physical = plan_physical(
        plan,
        prefer_merge_join=prefer_merge_join,
        use_indexes=use_indexes,
        fuse=mode == "columns",
        parallel=parallel,
    )
    return execute(physical, mode=mode, batch_size=batch_size)
