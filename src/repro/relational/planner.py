"""Logical-to-physical plan compilation.

The planner walks an (ideally optimized) logical plan and selects physical
algorithms:

* ``Join`` with equi-pairs -> :class:`HashJoin` (or :class:`MergeJoin` when
  the planner is configured with ``prefer_merge_join=True``, to mirror the
  PostgreSQL plans of the paper's Figure 13),
* ``Join`` without equi-pairs and ``Product`` -> :class:`NestedLoopJoin`,
* everything else maps one-to-one.

Cardinality estimates from the optimizer are attached to the physical nodes
so EXPLAIN can print them (cosmetically matching the paper's plan figure).
"""

from __future__ import annotations

from typing import Optional

from .algebra import (
    Difference,
    Distinct,
    Extend,
    Join,
    Plan,
    Product,
    Project,
    ProjectAs,
    Rename,
    Scan,
    Select,
    SemiJoin,
    Union,
)
from .expressions import conjunction, equijoin_pairs
from .optimizer import estimate_rows
from .physical import (
    BATCH_SIZE,
    Append,
    Except,
    ExtendOp,
    Filter,
    HashDistinct,
    HashJoin,
    MergeJoin,
    NestedLoopJoin,
    PhysicalPlan,
    Projection,
    ProjectionAs,
    SemiJoinOp,
    SeqScan,
)
from .relation import Relation

__all__ = ["Planner", "plan_physical", "run"]


class Planner:
    """Compiles logical plans to physical plans."""

    def __init__(self, prefer_merge_join: bool = False):
        self.prefer_merge_join = prefer_merge_join

    def compile(self, plan: Plan) -> PhysicalPlan:
        """Compile a logical plan tree into a physical operator tree."""
        physical = self._compile(plan)
        return physical

    # ------------------------------------------------------------------
    def _compile(self, plan: Plan) -> PhysicalPlan:
        if isinstance(plan, Scan):
            node: PhysicalPlan = SeqScan(plan.relation, plan.name, plan.alias)
        elif isinstance(plan, Select):
            node = Filter(self._compile(plan.child), plan.predicate)
        elif isinstance(plan, Project):
            node = Projection(self._compile(plan.child), plan.columns)
        elif isinstance(plan, ProjectAs):
            node = ProjectionAs(self._compile(plan.child), plan.items)
        elif isinstance(plan, Extend):
            node = ExtendOp(self._compile(plan.child), plan.items)
        elif isinstance(plan, Join):
            node = self._compile_join(plan)
        elif isinstance(plan, SemiJoin):
            node = SemiJoinOp(
                self._compile(plan.left), self._compile(plan.right), plan.predicate
            )
        elif isinstance(plan, Product):
            node = NestedLoopJoin(self._compile(plan.left), self._compile(plan.right), None)
        elif isinstance(plan, Union):
            node = Append(self._compile(plan.left), self._compile(plan.right))
        elif isinstance(plan, Difference):
            node = Except(self._compile(plan.left), self._compile(plan.right))
        elif isinstance(plan, Distinct):
            node = HashDistinct(self._compile(plan.child))
        elif isinstance(plan, Rename):
            node = _RenameOp(self._compile(plan.child), plan)
        else:
            raise TypeError(f"cannot compile logical node {type(plan).__name__}")
        node.estimated_rows = estimate_rows(plan)
        return node

    def _compile_join(self, plan: Join) -> PhysicalPlan:
        left = self._compile(plan.left)
        right = self._compile(plan.right)
        pairs, residual_list = equijoin_pairs(plan.predicate, plan.left.schema, plan.right.schema)
        residual = conjunction(residual_list) if residual_list else None
        if pairs:
            if self.prefer_merge_join:
                return MergeJoin(left, right, pairs, residual)
            return HashJoin(left, right, pairs, residual)
        return NestedLoopJoin(left, right, plan.predicate)


class _RenameOp(PhysicalPlan):
    """Physical rename: rows pass through, only the schema changes."""

    def __init__(self, child: PhysicalPlan, logical: Rename):
        self.child = child
        self.schema = child.schema.rename(logical.mapping)
        self.mapping = logical.mapping
        self.estimated_rows = child.estimated_rows

    @property
    def children(self):
        return (self.child,)

    def rows(self):
        return self.child.rows()

    def _batches(self, size):
        return self.child.batches(size)

    def explain_label(self) -> str:
        return "Rename"


def plan_physical(plan: Plan, prefer_merge_join: bool = False) -> PhysicalPlan:
    """Compile a logical plan with a default-configured planner."""
    return Planner(prefer_merge_join=prefer_merge_join).compile(plan)


def run(
    plan: Plan,
    optimize_first: bool = True,
    prefer_merge_join: bool = False,
    mode: str = "blocks",
    batch_size: int = BATCH_SIZE,
) -> Relation:
    """Optimize, compile, and execute a logical plan.

    ``mode`` selects the executor: ``"blocks"`` (vectorized, default) or
    ``"rows"`` (legacy tuple-at-a-time).
    """
    from .optimizer import optimize
    from .physical import execute

    if optimize_first:
        plan = optimize(plan)
    physical = plan_physical(plan, prefer_merge_join=prefer_merge_join)
    return execute(physical, mode=mode, batch_size=batch_size)
