"""Scalar expression AST for selection and join predicates.

Expressions are built with a small combinator API::

    from repro.relational.expressions import col, lit
    pred = (col("o.orderdate") > lit(Date("1995-03-15"))) & col("c.custkey").eq(col("o.custkey"))

An expression is *bound* against a :class:`~repro.relational.schema.Schema`
once, producing a fast closure over row tuples.  Binding resolves column
references to positions, so evaluation does no name lookups.

For the block-at-a-time executor there is a faster path:
:meth:`Expression.compile` (or :func:`compile_expression`) generates Python
source for the whole expression tree and ``eval``-compiles it into a
*single* callable, so evaluating a predicate costs one function call per
row instead of one per AST node.  Short-circuiting of AND/OR is preserved
(the generated code uses Python's own ``and``/``or``), and NULL semantics
are identical to the bound closures.  Unknown :class:`Expression`
subclasses degrade gracefully to their ``bind()`` closure.

The code generator is parameterized over how a column reference is
rendered (``row[i]`` by default), which is what lets the columnar executor
(:mod:`repro.relational.columnar`) reuse the exact same emission rules for
vector kernels that read ``col[i]`` inside a generated loop, and the join
operators for two-row callables reading ``l[i]`` / ``r[j]``.

Compilation results are memoized in a process-wide cache keyed by the
expression's *structural key* plus the schema's column names (plus a
flavor tag for the kernel shape), so repeated plan compilations — e.g.
``execute_query`` called in a loop — stop paying codegen after the first
run.  :func:`compile_cache_stats` exposes hit/miss counters and
:func:`reset_compile_cache` clears them (the benchmarks use both to prove
second-run queries are codegen-free).

NULL handling: any comparison involving ``None`` is ``False`` (the engine
approximates SQL's three-valued logic by "unknown is false", which is the
behaviour observable through WHERE clauses).

The optimizer relies on the analysis helpers at the bottom of this module:
:func:`split_conjuncts`, :func:`columns_of`, :func:`equijoin_pairs`.
"""

from __future__ import annotations

import ast
import math
import operator
from typing import Any, Callable, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from .schema import Schema
from .types import format_value

__all__ = [
    "Expression",
    "Col",
    "Lit",
    "Param",
    "Comparison",
    "And",
    "Or",
    "Not",
    "Arithmetic",
    "IsNull",
    "InList",
    "Between",
    "col",
    "lit",
    "conjunction",
    "disjunction",
    "TRUE",
    "FALSE",
    "split_conjuncts",
    "columns_of",
    "equijoin_pairs",
    "compile_expression",
    "compile_pair_expression",
    "structural_key",
    "cached_kernel",
    "compile_cache_stats",
    "reset_compile_cache",
]

RowPredicate = Callable[[Tuple[Any, ...]], Any]


class Expression:
    """Base class for scalar expressions over rows."""

    def bind(self, schema: Schema) -> RowPredicate:
        """Compile into a function of a row tuple.  Overridden by subclasses."""
        raise NotImplementedError

    def compile(self, schema: Schema) -> RowPredicate:
        """Code-generate a single callable evaluating this expression.

        Semantically identical to :meth:`bind`, but the whole tree collapses
        into one generated Python function (see :func:`compile_expression`),
        which the block executor applies per batch.
        """
        return compile_expression(self, schema)

    def columns(self) -> FrozenSet[str]:
        """Column references (as written) occurring in this expression."""
        raise NotImplementedError

    # -- combinators ----------------------------------------------------
    def __and__(self, other: "Expression") -> "Expression":
        return And(self, other)

    def __or__(self, other: "Expression") -> "Expression":
        return Or(self, other)

    def __invert__(self) -> "Expression":
        return Not(self)

    def eq(self, other: "Expression") -> "Comparison":
        return Comparison("=", self, other)

    def ne(self, other: "Expression") -> "Comparison":
        return Comparison("<>", self, other)

    def __lt__(self, other: "Expression") -> "Comparison":
        return Comparison("<", self, other)

    def __le__(self, other: "Expression") -> "Comparison":
        return Comparison("<=", self, other)

    def __gt__(self, other: "Expression") -> "Comparison":
        return Comparison(">", self, other)

    def __ge__(self, other: "Expression") -> "Comparison":
        return Comparison(">=", self, other)

    def __add__(self, other: "Expression") -> "Arithmetic":
        return Arithmetic("+", self, other)

    def __sub__(self, other: "Expression") -> "Arithmetic":
        return Arithmetic("-", self, other)

    def __mul__(self, other: "Expression") -> "Arithmetic":
        return Arithmetic("*", self, other)

    def is_null(self) -> "IsNull":
        return IsNull(self)

    def in_list(self, values: Iterable[Any]) -> "InList":
        return InList(self, values)

    def between(self, low: Any, high: Any) -> "Between":
        return Between(self, low, high)


class Col(Expression):
    """A column reference by (possibly qualified) name."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def bind(self, schema: Schema) -> RowPredicate:
        i = schema.resolve(self.name)
        return lambda row: row[i]

    def columns(self) -> FrozenSet[str]:
        return frozenset([self.name])

    def __repr__(self) -> str:
        return self.name


class Lit(Expression):
    """A literal constant."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def bind(self, schema: Schema) -> RowPredicate:
        value = self.value
        return lambda row: value

    def columns(self) -> FrozenSet[str]:
        return frozenset()

    def __repr__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return format_value(self.value)


class Param(Expression):
    """A ``$n``-style runtime parameter slot.

    ``store`` is a mutable list shared by every parameter of one prepared
    query; ``index`` is the zero-based slot (``$1`` is index 0).  The value
    is read from the store *at evaluation time* — never inlined into
    generated code — so a physical plan compiled once serves every
    parameter binding: the prepared-plan cache keys parameters by store
    identity (see :func:`structural_key`), not by value.

    Rewrite passes that clone expression trees slot-by-slot (predicate
    qualification, pushdown, re-anchoring) copy the ``store`` reference,
    so clones inside a planned tree always see the current binding.
    Because a parameter may be bound to NULL at any execution,
    :func:`has_null_literal` reports ``True`` for it and codegen keeps the
    NULL guards around every use.
    """

    __slots__ = ("index", "store")

    def __init__(self, index: int, store: List[Any]):
        if index < 0:
            raise ValueError(f"parameter index must be >= 0, got {index}")
        self.index = index
        self.store = store
        while len(store) <= index:
            store.append(None)

    @property
    def value(self) -> Any:
        """The currently bound value of this slot."""
        return self.store[self.index]

    def bind(self, schema: Schema) -> RowPredicate:
        store, index = self.store, self.index
        return lambda row: store[index]

    def columns(self) -> FrozenSet[str]:
        return frozenset()

    def __repr__(self) -> str:
        return f"${self.index + 1}"


_COMPARATORS = {
    "=": operator.eq,
    "<>": operator.ne,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class Comparison(Expression):
    """A binary comparison; NULL on either side yields ``False``."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expression, right: Expression):
        if op not in _COMPARATORS:
            raise ValueError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def bind(self, schema: Schema) -> RowPredicate:
        fn = _COMPARATORS[self.op]
        left = self.left.bind(schema)
        right = self.right.bind(schema)

        def evaluate(row: Tuple[Any, ...]) -> bool:
            lv = left(row)
            rv = right(row)
            if lv is None or rv is None:
                return False
            return fn(lv, rv)

        return evaluate

    def columns(self) -> FrozenSet[str]:
        return self.left.columns() | self.right.columns()

    def flipped(self) -> "Comparison":
        """The same comparison with operands swapped (``a < b`` -> ``b > a``)."""
        flip = {"=": "=", "<>": "<>", "!=": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}
        return Comparison(flip[self.op], self.right, self.left)

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class And(Expression):
    """Logical conjunction (n-ary, flattened)."""

    __slots__ = ("operands",)

    def __init__(self, *operands: Expression):
        flat: List[Expression] = []
        for op in operands:
            if isinstance(op, And):
                flat.extend(op.operands)
            else:
                flat.append(op)
        self.operands = tuple(flat)

    def bind(self, schema: Schema) -> RowPredicate:
        bound = [op.bind(schema) for op in self.operands]

        def evaluate(row: Tuple[Any, ...]) -> bool:
            return all(b(row) for b in bound)

        return evaluate

    def columns(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for op in self.operands:
            out |= op.columns()
        return out

    def __repr__(self) -> str:
        return "(" + " AND ".join(repr(op) for op in self.operands) + ")"


class Or(Expression):
    """Logical disjunction (n-ary, flattened)."""

    __slots__ = ("operands",)

    def __init__(self, *operands: Expression):
        flat: List[Expression] = []
        for op in operands:
            if isinstance(op, Or):
                flat.extend(op.operands)
            else:
                flat.append(op)
        self.operands = tuple(flat)

    def bind(self, schema: Schema) -> RowPredicate:
        bound = [op.bind(schema) for op in self.operands]

        def evaluate(row: Tuple[Any, ...]) -> bool:
            return any(b(row) for b in bound)

        return evaluate

    def columns(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for op in self.operands:
            out |= op.columns()
        return out

    def __repr__(self) -> str:
        return "(" + " OR ".join(repr(op) for op in self.operands) + ")"


class Not(Expression):
    """Logical negation."""

    __slots__ = ("operand",)

    def __init__(self, operand: Expression):
        self.operand = operand

    def bind(self, schema: Schema) -> RowPredicate:
        bound = self.operand.bind(schema)
        return lambda row: not bound(row)

    def columns(self) -> FrozenSet[str]:
        return self.operand.columns()

    def __repr__(self) -> str:
        return f"(NOT {self.operand!r})"


_ARITHMETIC = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
}


class Arithmetic(Expression):
    """A binary arithmetic expression; NULL-propagating."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expression, right: Expression):
        if op not in _ARITHMETIC:
            raise ValueError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def bind(self, schema: Schema) -> RowPredicate:
        fn = _ARITHMETIC[self.op]
        left = self.left.bind(schema)
        right = self.right.bind(schema)

        def evaluate(row: Tuple[Any, ...]) -> Any:
            lv = left(row)
            rv = right(row)
            if lv is None or rv is None:
                return None
            return fn(lv, rv)

        return evaluate

    def columns(self) -> FrozenSet[str]:
        return self.left.columns() | self.right.columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class IsNull(Expression):
    """SQL ``IS NULL`` test."""

    __slots__ = ("operand",)

    def __init__(self, operand: Expression):
        self.operand = operand

    def bind(self, schema: Schema) -> RowPredicate:
        bound = self.operand.bind(schema)
        return lambda row: bound(row) is None

    def columns(self) -> FrozenSet[str]:
        return self.operand.columns()

    def __repr__(self) -> str:
        return f"({self.operand!r} IS NULL)"


class InList(Expression):
    """SQL ``IN (v1, v2, ...)`` against a literal list."""

    __slots__ = ("operand", "values")

    def __init__(self, operand: Expression, values: Iterable[Any]):
        self.operand = operand
        self.values = frozenset(values)

    def bind(self, schema: Schema) -> RowPredicate:
        bound = self.operand.bind(schema)
        values = self.values
        return lambda row: bound(row) in values

    def columns(self) -> FrozenSet[str]:
        return self.operand.columns()

    def __repr__(self) -> str:
        vals = ", ".join(sorted(format_value(v) for v in self.values))
        return f"({self.operand!r} IN ({vals}))"


class Between(Expression):
    """SQL ``BETWEEN low AND high`` (inclusive), NULL-rejecting."""

    __slots__ = ("operand", "low", "high")

    def __init__(self, operand: Expression, low: Any, high: Any):
        self.operand = operand
        self.low = low if isinstance(low, Expression) else Lit(low)
        self.high = high if isinstance(high, Expression) else Lit(high)

    def bind(self, schema: Schema) -> RowPredicate:
        bound = self.operand.bind(schema)
        low = self.low.bind(schema)
        high = self.high.bind(schema)

        def evaluate(row: Tuple[Any, ...]) -> bool:
            v = bound(row)
            if v is None:
                return False
            return low(row) <= v <= high(row)

        return evaluate

    def columns(self) -> FrozenSet[str]:
        return self.operand.columns() | self.low.columns() | self.high.columns()

    def __repr__(self) -> str:
        return f"({self.operand!r} BETWEEN {self.low!r} AND {self.high!r})"


# ----------------------------------------------------------------------
# convenience constructors
# ----------------------------------------------------------------------
def col(name: str) -> Col:
    """Shorthand for :class:`Col`."""
    return Col(name)


def lit(value: Any) -> Lit:
    """Shorthand for :class:`Lit`."""
    return Lit(value)


TRUE: Expression = Comparison("=", Lit(1), Lit(1))
FALSE: Expression = Comparison("=", Lit(1), Lit(0))


def conjunction(parts: Sequence[Expression]) -> Expression:
    """AND together a sequence of expressions (empty -> TRUE)."""
    parts = [p for p in parts if p is not None]
    if not parts:
        return TRUE
    if len(parts) == 1:
        return parts[0]
    return And(*parts)


def disjunction(parts: Sequence[Expression]) -> Expression:
    """OR together a sequence of expressions (empty -> FALSE)."""
    parts = [p for p in parts if p is not None]
    if not parts:
        return FALSE
    if len(parts) == 1:
        return parts[0]
    return Or(*parts)


# ----------------------------------------------------------------------
# analysis helpers used by the optimizer
# ----------------------------------------------------------------------
def split_conjuncts(expression: Expression) -> List[Expression]:
    """Flatten nested ANDs into a list of conjuncts."""
    if isinstance(expression, And):
        out: List[Expression] = []
        for op in expression.operands:
            out.extend(split_conjuncts(op))
        return out
    return [expression]


def columns_of(expression: Expression) -> FrozenSet[str]:
    """All column references in an expression."""
    return expression.columns()


def equijoin_pairs(
    expression: Expression, left: Schema, right: Schema
) -> Tuple[List[Tuple[str, str]], List[Expression]]:
    """Split a join predicate into hashable equi-pairs and a residual.

    Returns ``(pairs, residual)`` where each pair ``(l, r)`` is an equality
    between a column of ``left`` and a column of ``right``, and ``residual``
    holds every other conjunct.  Used by the planner to pick hash joins.
    """
    pairs: List[Tuple[str, str]] = []
    residual: List[Expression] = []
    for conjunct in split_conjuncts(expression):
        pair = _as_equi_pair(conjunct, left, right)
        if pair is not None:
            pairs.append(pair)
        else:
            residual.append(conjunct)
    return pairs, residual


# ----------------------------------------------------------------------
# expression compilation (code generation for the block executor)
# ----------------------------------------------------------------------
_INLINE_LITERALS = (int, float, str, bool, type(None))

_PY_COMPARATORS = {
    "=": "==",
    "<>": "!=",
    "!=": "!=",
    "<": "<",
    "<=": "<=",
    ">": ">",
    ">=": ">=",
}


class _CodeGen:
    """Emits a single Python expression string for an expression tree.

    Column references become ``row[i]`` subscripts (indexes resolved once,
    at compile time), literals are inlined or captured as constants, and
    non-trivial subexpressions that must be consulted twice (NULL checks)
    are bound to walrus temporaries so they are still evaluated only once.
    AND/OR compile to Python's own short-circuiting ``and``/``or``.

    ``ref`` overrides how a resolved column position is rendered — the
    columnar executor passes e.g. ``lambda i: f"_c{i}[_i]"`` to emit vector
    kernels, and the join operators two-row renderings.  Whatever ``ref``
    returns is treated as an atom (cheap and side-effect free to evaluate
    twice), which every subscript-chain rendering is.
    """

    def __init__(
        self,
        schema: Schema,
        ref: Optional[Callable[[int], str]] = None,
        symbols: str = "",
        assume_non_null: bool = False,
    ):
        self.schema = schema
        self.context: dict = {"__builtins__": {}, "bool": bool}
        self._counter = 0
        self._ref = ref
        self._symbols = symbols
        self._atoms: set = set()
        #: Emit comparisons/arithmetic without NULL guards.  Only sound
        #: when every referenced column is provably NULL-free and the
        #: expression holds no NULL literal (see :func:`has_null_literal`)
        #: — the columnar executor proves both before selecting such a
        #: kernel body.
        self._assume_non_null = assume_non_null

    def _emit_col(self, position: int) -> str:
        if self._ref is None:
            return f"row[{position}]"
        source = self._ref(position)
        self._atoms.add(source)
        return source

    def _gensym(self, prefix: str) -> str:
        self._counter += 1
        return f"_{self._symbols}{prefix}{self._counter}"

    def _constant(self, value: Any) -> str:
        name = self._gensym("k")
        self.context[name] = value
        return name

    def _once(self, source: str) -> Tuple[str, str]:
        """-> (first-use source, reuse source) evaluating ``source`` once."""
        if source in self._atoms or _is_atom(source):
            return source, source
        temp = self._gensym("t")
        return f"({temp} := {source})", temp

    def _operand(self, expr: Expression) -> Tuple[str, str, bool]:
        """-> (first-use, reuse, nullable) for a NULL-checked operand."""
        source = self.emit(expr)
        if isinstance(expr, Lit) and expr.value is not None:
            return source, source, False  # provably non-null constant
        first, again = self._once(source)
        return first, again, True

    def emit(self, expr: Expression) -> str:
        if isinstance(expr, Col):
            return self._emit_col(self.schema.resolve(expr.name))
        if isinstance(expr, Param):
            # read the shared store at evaluation time — the value must
            # never be baked into cached code (plans outlive bindings)
            name = self._constant(expr.store)
            return f"{name}[{expr.index}]"
        if isinstance(expr, Lit):
            value = expr.value
            if type(value) in _INLINE_LITERALS:
                # non-finite floats repr as `inf`/`nan`, which are plain
                # identifiers and undefined in the eval context
                if not isinstance(value, float) or math.isfinite(value):
                    return repr(value)
            return self._constant(value)
        if isinstance(expr, Comparison):
            op = _PY_COMPARATORS[expr.op]
            return self._null_checked(expr.left, expr.right, op, on_null="False")
        if isinstance(expr, Arithmetic):
            return self._null_checked(expr.left, expr.right, expr.op, on_null="None")
        if isinstance(expr, And):
            if not expr.operands:
                return "True"
            return "bool(" + " and ".join(self.emit(op) for op in expr.operands) + ")"
        if isinstance(expr, Or):
            if not expr.operands:
                return "False"
            return "bool(" + " or ".join(self.emit(op) for op in expr.operands) + ")"
        if isinstance(expr, Not):
            return f"(not {self.emit(expr.operand)})"
        if isinstance(expr, IsNull):
            return f"({self.emit(expr.operand)} is None)"
        if isinstance(expr, InList):
            values = self._constant(expr.values)
            return f"({self.emit(expr.operand)} in {values})"
        if isinstance(expr, Between):
            if self._assume_non_null:
                low = self.emit(expr.low)
                high = self.emit(expr.high)
                # a chained comparison evaluates the middle operand once
                return f"({low} <= {self.emit(expr.operand)} <= {high})"
            operand, operand_again, nullable = self._operand(expr.operand)
            low = self.emit(expr.low)
            high = self.emit(expr.high)
            body = f"({low} <= {operand_again} <= {high})"
            if not nullable:
                return body
            return f"(False if {operand} is None else {body})"
        # unknown Expression subclass: fall back to its bound closure
        fallback = self._constant(expr.bind(self.schema))
        return f"{fallback}(row)"

    def _null_checked(
        self, left: Expression, right: Expression, op: str, on_null: str
    ) -> str:
        """A binary operation guarded by NULL checks on nullable operands."""
        if self._assume_non_null:
            return f"({self.emit(left)} {op} {self.emit(right)})"
        left_first, left_again, left_nullable = self._operand(left)
        right_first, right_again, right_nullable = self._operand(right)
        checks = []
        if left_nullable:
            checks.append(f"{left_first} is None")
        if right_nullable:
            checks.append(f"{right_first} is None")
        body = f"({left_again} {op} {right_again})"
        if not checks:
            return body
        return f"({on_null} if {' or '.join(checks)} else {body})"


def _is_atom(source: str) -> bool:
    """Whether a generated fragment is safe/cheap to evaluate twice."""
    if source.startswith("row[") and source.endswith("]") and source.count("[") == 1:
        return True
    if source.isidentifier():  # gensym temps and captured constants
        return True
    try:  # inlined literal tokens (5, 3.14, 'abc', ...)
        ast.literal_eval(source)
        return True
    except (ValueError, SyntaxError):
        return False


# ----------------------------------------------------------------------
# structural keys and the compile cache
# ----------------------------------------------------------------------
def structural_key(expression: Expression) -> Tuple:
    """A hashable key identifying an expression tree up to structure.

    Two expressions with equal keys compile to identical code against the
    same schema, which is what makes the compile cache sound.  Raises
    ``TypeError`` for unknown :class:`Expression` subclasses or unhashable
    literal values — callers treat that as "not cacheable" and fall back
    to direct compilation.
    """
    if isinstance(expression, Col):
        return ("col", expression.name)
    if isinstance(expression, Param):
        # keyed by store identity, not value: every binding of a prepared
        # query shares one compiled kernel / cached plan.  The id is sound
        # because cached artifacts capture the store (kernels close over
        # it, plan-cache entries pin the query tree that holds it), so it
        # cannot be recycled while a keyed entry is alive.
        return ("param", expression.index, id(expression.store))
    if isinstance(expression, Lit):
        value = expression.value
        hash(value)  # may raise TypeError: unhashable literal
        return ("lit", type(value).__name__, value)
    if isinstance(expression, Comparison):
        return (
            "cmp",
            expression.op,
            structural_key(expression.left),
            structural_key(expression.right),
        )
    if isinstance(expression, Arithmetic):
        return (
            "arith",
            expression.op,
            structural_key(expression.left),
            structural_key(expression.right),
        )
    if isinstance(expression, And):
        return ("and",) + tuple(structural_key(op) for op in expression.operands)
    if isinstance(expression, Or):
        return ("or",) + tuple(structural_key(op) for op in expression.operands)
    if isinstance(expression, Not):
        return ("not", structural_key(expression.operand))
    if isinstance(expression, IsNull):
        return ("isnull", structural_key(expression.operand))
    if isinstance(expression, InList):
        hash(expression.values)  # may raise TypeError
        return ("in", structural_key(expression.operand), expression.values)
    if isinstance(expression, Between):
        return (
            "between",
            structural_key(expression.operand),
            structural_key(expression.low),
            structural_key(expression.high),
        )
    raise TypeError(f"no structural key for {type(expression).__name__}")


#: Compiled-kernel cache: (flavor, schema names, structural key, extras) ->
#: generated callable.  Bounded by the plan cache's LRU + hot-pin policy
#: (:class:`~repro.relational.plancache.LruHotCache`): reaching capacity
#: evicts the least-recently-used cold kernel instead of clearing
#: wholesale, and frequently hit kernels pin into a hot set — a burst of
#: ad-hoc shapes no longer recompiles a serving workload's entire hot
#: path.  Built lazily (plancache imports this module at load time).
_KERNEL_CACHE: Optional[Any] = None
_KERNEL_CACHE_LIMIT = 4096
_cache_hits = 0
_cache_misses = 0


def _kernel_cache():
    global _KERNEL_CACHE
    if _KERNEL_CACHE is None:
        from .plancache import LruHotCache

        _KERNEL_CACHE = LruHotCache(_KERNEL_CACHE_LIMIT)
    return _KERNEL_CACHE


def cached_kernel(key: Optional[Tuple], builder: Callable[[], Any]) -> Any:
    """Memoize ``builder()`` under ``key`` (``None`` key skips the cache).

    Thread-safe for the serving layer: lookups and inserts go through the
    cache's own lock, while ``builder()`` runs outside it — two threads
    missing on the same key may both compile, which is merely duplicated
    work; the kernels are interchangeable and last-write wins.
    """
    global _cache_hits, _cache_misses
    if key is None:
        _cache_misses += 1
        return builder()
    cache = _kernel_cache()
    try:
        cached = cache.get(key)
    except TypeError:  # unhashable component sneaked in
        _cache_misses += 1
        return builder()
    if cached is not None:
        _cache_hits += 1
        return cached
    _cache_misses += 1
    built = builder()
    cache.put(key, built)
    return built


def expression_cache_key(
    flavor: str, expression: Expression, schema: Schema, *extras: Any
) -> Optional[Tuple]:
    """The cache key for compiling ``expression`` against ``schema``.

    ``None`` when the expression is not structurally hashable (unknown
    subclass, unhashable literal) — the caller then compiles uncached.
    """
    try:
        return (flavor, tuple(schema.names), structural_key(expression)) + extras
    except TypeError:
        return None


def iter_subexpressions(expression: Expression):
    """Yield the direct :class:`Expression` children of a node.

    Walks the node's ``__slots__`` (including inherited ones), looking
    into tuple-valued slots — the one traversal every generic analysis
    (:func:`has_null_literal`, prepared-statement parameter collection)
    shares, so a future expression type with a new child container shape
    needs exactly one fix.
    """
    for klass in type(expression).__mro__:
        for slot in getattr(klass, "__slots__", ()):
            value = getattr(expression, slot, None)
            if isinstance(value, Expression):
                yield value
            elif isinstance(value, tuple):
                for item in value:
                    if isinstance(item, Expression):
                        yield item


def has_null_literal(expression: Expression) -> bool:
    """Whether a NULL literal occurs anywhere in an expression tree.

    NULL-literal comparisons must keep their guards (they are ``False``
    regardless of the other operand), so the columnar executor's
    no-NULL-guard kernel bodies are gated on this.
    """
    if isinstance(expression, Lit):
        return expression.value is None
    if isinstance(expression, Param):
        return True  # a parameter may be bound to NULL at any execution
    return any(has_null_literal(child) for child in iter_subexpressions(expression))


def compile_cache_stats() -> dict:
    """Hit/miss/size counters of the expression/kernel compile cache."""
    cache = _KERNEL_CACHE
    return {
        "hits": _cache_hits,
        "misses": _cache_misses,
        "size": 0 if cache is None else len(cache),
        "pinned": 0 if cache is None else cache.pinned,
        "evictions": 0 if cache is None else cache.evictions,
    }


def reset_compile_cache() -> None:
    """Empty the compile cache and zero its counters (test/bench hook)."""
    global _cache_hits, _cache_misses, _KERNEL_CACHE
    _KERNEL_CACHE = None  # rebuilt lazily, with fresh pin/eviction counters
    _cache_hits = 0
    _cache_misses = 0


def compile_expression(expression: Expression, schema: Schema) -> RowPredicate:
    """Generate and compile a single-callable evaluator for an expression.

    The returned function is semantically equivalent to
    ``expression.bind(schema)`` but runs as one code object, which makes it
    markedly faster inside the block executor's per-batch comprehensions.
    Results are memoized in the compile cache.
    """
    return cached_kernel(
        expression_cache_key("row", expression, schema),
        lambda: _compile_expression_uncached(expression, schema),
    )


def _compile_expression_uncached(expression: Expression, schema: Schema) -> RowPredicate:
    generator = _CodeGen(schema)
    body = generator.emit(expression)
    source = f"lambda row: {body}"
    try:
        return eval(compile(source, "<compiled-expression>", "eval"), generator.context)
    except SyntaxError:  # pragma: no cover - safety net for odd reprs
        return expression.bind(schema)


def compile_pair_expression(
    expression: Expression, left: Schema, right: Schema
) -> Callable[[Tuple[Any, ...], Tuple[Any, ...]], Any]:
    """Compile an expression over a concatenated schema into ``f(lrow, rrow)``.

    Join operators with fused output projections use this to evaluate
    residual predicates without materializing the concatenated row tuple.
    """
    combined = left.concat(right)
    key = expression_cache_key("pair", expression, combined, len(left))
    return cached_kernel(
        key, lambda: _compile_pair_uncached(expression, combined, len(left))
    )


def _compile_pair_uncached(
    expression: Expression, combined: Schema, split: int
) -> Callable[[Tuple[Any, ...], Tuple[Any, ...]], Any]:
    def ref(position: int) -> str:
        if position < split:
            return f"_l[{position}]"
        return f"_r[{position - split}]"

    generator = _CodeGen(combined, ref=ref)
    body = generator.emit(expression)
    source = f"lambda _l, _r: {body}"
    try:
        return eval(compile(source, "<compiled-pair-expression>", "eval"), generator.context)
    except SyntaxError:  # pragma: no cover - safety net for odd reprs
        bound = expression.bind(combined)
        return lambda _l, _r: bound(_l + _r)


def _as_equi_pair(
    conjunct: Expression, left: Schema, right: Schema
) -> Optional[Tuple[str, str]]:
    if not isinstance(conjunct, Comparison) or conjunct.op != "=":
        return None
    if not isinstance(conjunct.left, Col) or not isinstance(conjunct.right, Col):
        return None
    a, b = conjunct.left.name, conjunct.right.name
    left_has_a = left.has(a)
    right_has_a = right.has(a)
    left_has_b = left.has(b)
    right_has_b = right.has(b)
    if left_has_a and right_has_b and not right_has_a and not left_has_b:
        return (a, b)
    if left_has_b and right_has_a and not right_has_b and not left_has_a:
        return (b, a)
    return None
