"""Relations: a schema plus a list of row tuples.

Rows are plain Python tuples; a :class:`Relation` is cheap to construct and
behaves like a value (equality is set-of-rows equality under the same
schema).  Physical operators produce row iterators; :func:`Relation.from_rows`
materializes them.

The engine implements *bag* semantics internally (duplicates are kept unless
a ``Distinct`` is applied), matching what the paper's translation produces on
a SQL engine; convenience set-style helpers are provided for tests.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .schema import Attribute, Schema, SchemaError
from .types import DataType, format_value, infer_type

__all__ = ["Relation", "Segment"]


class Segment:
    """One immutable run of appended rows inside a segmented relation.

    Segments are shared *by identity* between relation versions: appending
    to a relation produces a new :class:`Relation` whose segment tuple is
    the old tuple plus one new segment.  The per-segment columnar
    transposition is cached on the segment itself, so every relation
    version built from the same segment reuses the same vectors.
    """

    __slots__ = ("segment_id", "rows", "_columns")

    def __init__(self, segment_id: int, rows: Iterable[Tuple[Any, ...]]):
        self.segment_id = int(segment_id)
        self.rows: Tuple[Tuple[Any, ...], ...] = tuple(rows)
        self._columns: Optional[List[tuple]] = None

    def column_store(self, width: int) -> List[tuple]:
        cols = self._columns
        if cols is None:
            if self.rows:
                cols = list(zip(*self.rows))
            else:
                cols = [() for _ in range(width)]
            self._columns = cols
        return cols

    def __repr__(self) -> str:
        return f"Segment({self.segment_id}, {len(self.rows)} rows)"


class Relation:
    """An in-memory relation: immutable schema + list of row tuples."""

    # ``_indexes`` holds secondary indexes attached by
    # :mod:`repro.relational.index` and ``_pending_indexes`` their deferred
    # (not yet built) definitions; ``_columns`` caches the columnar form
    # used by the column executor; ``_plan_epoch``/``_plan_watchers`` are
    # the prepared-plan cache's per-relation mutation counter and weakly
    # held watcher catalogs (:mod:`repro.relational.plancache`) — kept on
    # the relation object so their lifetime is automatic.  All are
    # planner-visible state, not part of the relation's value (equality
    # and repr ignore them).
    # ``_segments``/``_deleted`` carry the write path's log-structured
    # form (immutable appended segments plus a delete vector of global
    # ordinals); when unset the relation is its own single base segment.
    __slots__ = (
        "schema",
        "rows",
        "_indexes",
        "_pending_indexes",
        "_columns",
        "_has_null",
        "_plan_epoch",
        "_plan_watchers",
        "_segments",
        "_deleted",
    )

    def __init__(self, schema, rows: Optional[Iterable[Sequence[Any]]] = None):
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        self.schema: Schema = schema
        self.rows: List[Tuple[Any, ...]] = []
        if rows is not None:
            width = len(schema)
            for row in rows:
                row_t = tuple(row)
                if len(row_t) != width:
                    raise SchemaError(
                        f"row arity {len(row_t)} does not match schema arity {width}: {row_t!r}"
                    )
                self.rows.append(row_t)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(cls, schema, rows: Iterable[Sequence[Any]]) -> "Relation":
        """Materialize an iterator of rows under a schema."""
        return cls(schema, rows)

    @classmethod
    def from_trusted(cls, schema: Schema, rows: List[Tuple[Any, ...]]) -> "Relation":
        """Adopt an already-validated list of row tuples without copying.

        Fast path for the block executor, whose operators only ever emit
        tuples of the correct arity; the caller must not mutate ``rows``
        afterwards.
        """
        relation = cls.__new__(cls)
        relation.schema = schema if isinstance(schema, Schema) else Schema(schema)
        relation.rows = rows
        return relation

    @classmethod
    def from_dicts(cls, schema, dicts: Iterable[Dict[str, Any]]) -> "Relation":
        """Build a relation from dictionaries keyed by attribute name."""
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        names = schema.names
        return cls(schema, (tuple(d.get(n) for n in names) for d in dicts))

    @classmethod
    def empty(cls, schema) -> "Relation":
        """An empty relation over the given schema."""
        return cls(schema, [])

    @classmethod
    def from_segments(
        cls,
        schema,
        segments: Sequence[Segment],
        deleted: Iterable[int] = (),
    ) -> "Relation":
        """Build a relation as immutable segments plus a delete vector.

        ``deleted`` holds *global ordinals* over the concatenation of all
        segment rows (in segment order, before deletion).  ``rows`` is the
        materialized live view, so every existing executor — row, block,
        columnar, parallel scans — works on segmented relations unchanged.
        """
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        deleted = frozenset(deleted)
        live: List[Tuple[Any, ...]] = []
        ordinal = 0
        for segment in segments:
            if deleted:
                for row in segment.rows:
                    if ordinal not in deleted:
                        live.append(row)
                    ordinal += 1
            else:
                live.extend(segment.rows)
        relation = cls.from_trusted(schema, live)
        relation._segments = tuple(segments)
        relation._deleted = deleted
        return relation

    # ------------------------------------------------------------------
    # segmented (write-path) view
    # ------------------------------------------------------------------
    def segments(self) -> Tuple[Segment, ...]:
        """The relation's segments; a plain relation is one base segment."""
        segments = getattr(self, "_segments", None)
        if segments is None:
            segments = (Segment(0, tuple(self.rows)),)
            self._segments = segments
            self._deleted = frozenset()
        return segments

    def deleted_ordinals(self) -> frozenset:
        """Global ordinals (over concatenated segment rows) marked deleted."""
        return getattr(self, "_deleted", None) or frozenset()

    def live_ordinals(self) -> List[int]:
        """Global ordinal of each live row, in ``rows`` order."""
        deleted = self.deleted_ordinals()
        total = sum(len(s.rows) for s in self.segments())
        return [o for o in range(total) if o not in deleted]

    def segment_boundaries(self) -> List[int]:
        """Offsets into ``rows`` where each segment's live run begins.

        Parallel scans snap partition cut points to these so one worker
        never straddles a segment (its slice stays within one cached
        per-segment column run).
        """
        deleted = self.deleted_ordinals()
        boundaries: List[int] = []
        live = 0
        ordinal = 0
        for segment in self.segments():
            boundaries.append(live)
            for _ in segment.rows:
                if ordinal not in deleted:
                    live += 1
                ordinal += 1
        return boundaries

    def with_appended(self, rows: Iterable[Sequence[Any]]) -> "Relation":
        """A new relation value with one fresh segment appended.

        The receiver is untouched (in-flight plans and pinned snapshots
        keep reading the old value); existing segments are shared by
        identity, so their cached column vectors carry over.
        """
        width = len(self.schema)
        appended: List[Tuple[Any, ...]] = []
        for row in rows:
            row_t = tuple(row)
            if len(row_t) != width:
                raise SchemaError(
                    f"row arity {len(row_t)} does not match schema arity {width}: {row_t!r}"
                )
            appended.append(row_t)
        segments = self.segments()
        next_id = max(s.segment_id for s in segments) + 1 if segments else 0
        return Relation.from_segments(
            self.schema,
            segments + (Segment(next_id, appended),),
            self.deleted_ordinals(),
        )

    def compacted(self) -> "Relation":
        """A new relation value with every live row in one fresh base segment.

        The write path's merge step: the segment stack and delete vector
        collapse into a single segment holding exactly ``rows``.  Returns
        ``self`` when already compact (one segment, nothing deleted), so
        callers can detect no-ops by identity.

        The base segment takes a *fresh* id (one past the highest existing
        id) rather than restarting at 0: persistence names segment files by
        id, so the compacted base never collides with an old segment file
        on disk — the save writes it alongside the old files and commits by
        swapping the manifest atomically (see :mod:`repro.core.persist`).
        """
        segments = self.segments()
        if len(segments) == 1 and not self.deleted_ordinals():
            return self
        base = Segment(max(s.segment_id for s in segments) + 1, tuple(self.rows))
        cached = getattr(self, "_columns", None)
        if cached is not None:
            # the live-row column vectors ARE the new base's columns
            base._columns = cached
        return Relation.from_segments(self.schema, (base,), ())

    def with_deleted(self, live_positions: Iterable[int]) -> "Relation":
        """A new relation value with the given live rows marked deleted.

        ``live_positions`` index into ``rows``; they are translated to
        global ordinals and merged into the delete vector.  Segments are
        shared untouched.
        """
        mapping = self.live_ordinals()
        extra = {mapping[i] for i in live_positions}
        if not extra:
            return self
        return Relation.from_segments(
            self.schema, self.segments(), self.deleted_ordinals() | extra
        )

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def __eq__(self, other: object) -> bool:
        """Bag equality under identical schemas (order-insensitive)."""
        if not isinstance(other, Relation):
            return NotImplemented
        if self.schema.names != other.schema.names:
            return False
        return sorted(self.rows, key=_sort_key) == sorted(other.rows, key=_sort_key)

    def __repr__(self) -> str:
        return f"Relation({self.schema.names}, {len(self.rows)} rows)"

    # ------------------------------------------------------------------
    # basic derived relations (convenience layer used by tests/examples;
    # query processing goes through algebra + physical operators)
    # ------------------------------------------------------------------
    def column(self, reference: str) -> List[Any]:
        """All values of one column, in row order."""
        i = self.schema.resolve(reference)
        return [row[i] for row in self.rows]

    def column_store(self) -> List[tuple]:
        """The rows transposed to per-column vectors, cached.

        The column executor's sequential scans slice these vectors instead
        of chunking row tuples.  Rows are immutable once a relation is
        built, so the transposition is computed once per relation object.
        Segmented relations concatenate the *live* run of each segment's
        cached per-segment vectors, so appending a segment transposes only
        the new rows.
        """
        store = getattr(self, "_columns", None)
        if store is None:
            segments = getattr(self, "_segments", None)
            if segments is None:
                if self.rows:
                    store = list(zip(*self.rows))
                else:
                    store = [() for _ in range(len(self.schema))]
            else:
                width = len(self.schema)
                deleted = self.deleted_ordinals()
                runs: List[List[tuple]] = [[] for _ in range(width)]
                base = 0
                for segment in segments:
                    cols = segment.column_store(width)
                    count = len(segment.rows)
                    if deleted:
                        keep = [
                            i for i in range(count) if base + i not in deleted
                        ]
                        if len(keep) != count:
                            cols = [tuple(c[i] for i in keep) for c in cols]
                    for run, col in zip(runs, cols):
                        run.append(col)
                    base += count
                store = [
                    run[0] if len(run) == 1 else tuple(v for part in run for v in part)
                    for run in runs
                ]
            self._columns = store
        return store

    def column_has_null(self, position: int) -> bool:
        """Whether a column contains any NULL, cached per column.

        Computed with a C-speed ``in`` scan over the column vector; the
        columnar executor uses this to prove columns NULL-free and select
        generated kernels without per-value NULL guards.
        """
        cache = getattr(self, "_has_null", None)
        if cache is None:
            cache = {}
            self._has_null = cache
        known = cache.get(position)
        if known is None:
            known = None in self.column_store()[position]
            cache[position] = known
        return known

    def project(self, references: Sequence[str]) -> "Relation":
        """Projection (bag semantics, preserves duplicates)."""
        positions = self.schema.positions(references)
        new_schema = self.schema.project(references)
        return Relation(new_schema, (tuple(row[i] for i in positions) for row in self.rows))

    def select(self, predicate: Callable[[Tuple[Any, ...]], bool]) -> "Relation":
        """Selection by an arbitrary row predicate."""
        return Relation(self.schema, (row for row in self.rows if predicate(row)))

    def distinct(self) -> "Relation":
        """Duplicate elimination, preserving first-occurrence order."""
        seen = set()
        out = []
        for row in self.rows:
            if row not in seen:
                seen.add(row)
                out.append(row)
        return Relation(self.schema, out)

    def union(self, other: "Relation") -> "Relation":
        """Bag union; arities must match (names taken from ``self``)."""
        if len(self.schema) != len(other.schema):
            raise SchemaError(
                f"union arity mismatch: {len(self.schema)} vs {len(other.schema)}"
            )
        return Relation(self.schema, self.rows + other.rows)

    def difference(self, other: "Relation") -> "Relation":
        """Set difference (duplicates in ``self`` collapse to membership test)."""
        if len(self.schema) != len(other.schema):
            raise SchemaError(
                f"difference arity mismatch: {len(self.schema)} vs {len(other.schema)}"
            )
        gone = set(other.rows)
        return Relation(self.schema, (row for row in self.rows if row not in gone))

    def product(self, other: "Relation") -> "Relation":
        """Cartesian product (schemas concatenated)."""
        new_schema = self.schema.concat(other.schema)
        return Relation(
            new_schema, (left + right for left in self.rows for right in other.rows)
        )

    def rename(self, mapping: Dict[str, str]) -> "Relation":
        """Rename attributes (rows unchanged)."""
        return Relation(self.schema.rename(mapping), self.rows)

    def qualify(self, alias: str) -> "Relation":
        """Re-qualify all attributes under an alias (for self-joins)."""
        return Relation(self.schema.qualify(alias), self.rows)

    def sorted(self, references: Optional[Sequence[str]] = None) -> "Relation":
        """Rows sorted by the given columns (or all columns)."""
        if references is None:
            key = _sort_key
        else:
            positions = self.schema.positions(references)

            def key(row: Tuple[Any, ...]):
                return _sort_key(tuple(row[i] for i in positions))

        return Relation(self.schema, sorted(self.rows, key=key))

    def as_set(self) -> frozenset:
        """The rows as a frozenset (for set-semantics assertions in tests)."""
        return frozenset(self.rows)

    # ------------------------------------------------------------------
    # inspection / output
    # ------------------------------------------------------------------
    def infer_types(self) -> List[DataType]:
        """Per-column types inferred from *all* non-null values.

        INT and FLOAT mix promotes to FLOAT; any other mix yields
        :data:`DataType.ANY` (which serializers treat as unsupported rather
        than silently corrupting values).
        """
        out: List[DataType] = []
        for i in range(len(self.schema)):
            seen = {infer_type(row[i]) for row in self.rows if row[i] is not None}
            if not seen:
                out.append(DataType.ANY)
            elif len(seen) == 1:
                out.append(seen.pop())
            elif seen == {DataType.INT, DataType.FLOAT}:
                out.append(DataType.FLOAT)
            else:
                out.append(DataType.ANY)
        return out

    def pretty(self, limit: int = 20) -> str:
        """Render an ASCII table of up to ``limit`` rows."""
        names = self.schema.names
        shown = self.rows[:limit]
        cells = [[format_value(v) for v in row] for row in shown]
        widths = [
            max(len(names[i]), *(len(c[i]) for c in cells)) if cells else len(names[i])
            for i in range(len(names))
        ]
        sep = "-+-".join("-" * w for w in widths)
        header = " | ".join(n.ljust(w) for n, w in zip(names, widths))
        lines = [header, sep]
        for row_cells in cells:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row_cells, widths)))
        if len(self.rows) > limit:
            lines.append(f"... ({len(self.rows)} rows total)")
        return "\n".join(lines)


def _sort_key(row: Tuple[Any, ...]) -> Tuple:
    """Total order over heterogeneous rows (None first, then by type name)."""
    return tuple((value is not None, type(value).__name__, value) for value in row)
