"""Physical operators and plan execution (block-at-a-time, vectorized).

Physical plans mirror the logical nodes but carry concrete algorithms:

* ``SeqScan``        — iterate a base relation
* ``IndexScan``      — point/range access through a secondary index
* ``Filter``         — predicate filter
* ``Projection``     — positional projection
* ``HashJoin``       — build/probe equi-join with residual filter
* ``IndexNestedLoopJoin`` — probe a prebuilt inner-side index per outer row
* ``MergeJoin``      — sort-merge equi-join with residual filter
* ``NestedLoopJoin`` — general-predicate join (also cross product)
* ``HashDistinct``   — duplicate elimination
* ``Append``         — bag union
* ``Except``         — set difference
* ``Sort``           — explicit sort (used under MergeJoin)
* ``Materialize``    — caches child output (inner of nested loops)
* ``Confidence``     — per-value-tuple confidence over a U-relation input

Execution model
---------------
Three execution modes share one operator tree:

* ``mode="columns"`` (the default) exchanges
  :class:`~repro.relational.columnar.ColumnBatch` values — per-column
  ``list``/``tuple`` vectors.  Scans slice a cached column store of the
  base relation, filters run one generated loop per batch (the predicate
  inlined into a single comprehension), projections re-select column
  vectors without touching rows, and joins emit output columns directly by
  gathering from their inputs — a downstream-folded projection means
  dropped columns are never materialized at all.  Operators without a
  native columnar implementation transpose their row batches at the
  boundary (``zip`` is C-speed), so the mode is total.
* ``mode="blocks"`` exchanges *batches* — plain lists of row tuples, at
  most :data:`BATCH_SIZE` (1024) rows each.  Work inside a batch is tight
  list comprehensions over *compiled* expressions
  (:meth:`Expression.compile` collapses a predicate tree into a single
  generated Python callable) and ``operator.itemgetter`` projections.
* ``mode="rows"`` is the legacy tuple-at-a-time iterator path
  (``rows()``), kept as the PR 1 measurement baseline.

Every operator implements ``_batches(size)`` (and optionally
``_column_batches(size)``); the inherited wrappers
:meth:`PhysicalPlan.batches` / :meth:`PhysicalPlan.column_batches` track
the ``actual_rows`` / ``actual_batches`` counters that ``EXPLAIN ANALYZE``
reports — for a fused pipeline the counters are per-pipeline, not
per-fused-away-operator.  All modes produce identical relations (property
tests assert this on randomized plans) and the benchmarks report their
head-to-head speedups.

The planner can additionally *fuse* maximal scan→filter→project chains
into single :class:`FusedPipeline` operators and fold projections into
join emits (``set_output``); see :mod:`repro.relational.planner`.

Operators also expose ``explain_label`` and estimated cardinality for
EXPLAIN output.
"""

from __future__ import annotations

import bisect
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from operator import itemgetter
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from .columnar import (
    ColumnBatch,
    pipeline_kernel,
    probe_kernel,
    selection_kernel,
    side_kernel,
)
from .expressions import Expression, Param, cached_kernel, compile_pair_expression
from .index import HashIndex, Index, SortedIndex, built_indexes_on
from .relation import Relation, _sort_key
from .schema import Schema

__all__ = [
    "BATCH_SIZE",
    "Batch",
    "ColumnBatch",
    "PhysicalPlan",
    "SeqScan",
    "IndexScan",
    "FusedPipeline",
    "ParallelScan",
    "Filter",
    "Projection",
    "ProjectionAs",
    "ExtendOp",
    "HashJoin",
    "IndexNestedLoopJoin",
    "MergeJoin",
    "NestedLoopJoin",
    "SemiJoinOp",
    "HashDistinct",
    "Append",
    "Except",
    "Sort",
    "Materialize",
    "Confidence",
    "execute",
]

Row = Tuple[Any, ...]
Batch = List[Row]

#: Default number of rows per exchanged batch.
BATCH_SIZE = 1024


def _projector(positions: Sequence[int]) -> Callable[[Row], Row]:
    """A row -> tuple projection onto ``positions`` (always returns tuples)."""
    if len(positions) == 1:
        i = positions[0]
        return lambda row: (row[i],)
    if not positions:
        return lambda row: ()
    return itemgetter(*positions)


def _keyer(positions: Sequence[int]) -> Callable[[Row], Any]:
    """A hash-key extractor; single-column keys stay scalar (cheaper)."""
    if len(positions) == 1:
        i = positions[0]
        return lambda row: row[i]
    return itemgetter(*positions)


def _key_is_null(key: Any, single: bool) -> bool:
    if single:
        return key is None
    return None in key


def _pair_emitter(
    positions: Sequence[int], split: int
) -> Callable[[Row, Row], Row]:
    """A generated ``f(lrow, rrow) -> output tuple`` for folded projections.

    ``positions`` index the concatenated (left ++ right) schema; ``split``
    is the left width.  Joins with a folded downstream projection use this
    to emit output rows without materializing the concatenated tuple.
    """
    parts = ", ".join(
        f"_l[{p}]" if p < split else f"_r[{p - split}]" for p in positions
    )
    source = f"lambda _l, _r: ({parts},)" if positions else "lambda _l, _r: ()"
    return cached_kernel(
        ("pair-emit", split, tuple(positions)),
        lambda: eval(compile(source, "<pair-emitter>", "eval"), {"__builtins__": {}}),
    )


class PhysicalPlan:
    """Base class for physical operators."""

    schema: Schema
    estimated_rows: float = 0.0
    #: Runtime statistics, populated when a ``batches()`` scan completes.
    actual_rows: Optional[int] = None
    actual_batches: Optional[int] = None
    #: True for operators that pass rows through unchanged (schema-only
    #: wrappers, e.g. renames) — fusion and access-path matching look
    #: through them.
    row_passthrough: bool = False

    @property
    def children(self) -> Tuple["PhysicalPlan", ...]:
        return ()

    def rows(self) -> Iterator[Row]:
        """Legacy tuple-at-a-time iterator (``mode="rows"``)."""
        raise NotImplementedError

    def batches(self, size: int = BATCH_SIZE) -> Iterator[Batch]:
        """Block-at-a-time iterator with runtime row/batch accounting.

        Non-positive ``size`` degrades to 1 (tuple-at-a-time batches)
        rather than erroring, so callers can sweep batch sizes freely.
        """
        if size <= 0:
            size = 1
        produced_rows = 0
        produced_batches = 0
        for batch in self._batches(size):
            produced_rows += len(batch)
            produced_batches += 1
            yield batch
        self.actual_rows = produced_rows
        self.actual_batches = produced_batches

    def _batches(self, size: int) -> Iterator[Batch]:
        """Operator-specific batch production; default chunks ``rows()``."""
        batch: Batch = []
        append = batch.append
        for row in self.rows():
            append(row)
            if len(batch) >= size:
                yield batch
                batch = []
                append = batch.append
        if batch:
            yield batch

    def column_batches(self, size: int = BATCH_SIZE) -> Iterator[ColumnBatch]:
        """Columnar iterator with the same runtime accounting as ``batches``."""
        if size <= 0:
            size = 1
        produced_rows = 0
        produced_batches = 0
        for batch in self._column_batches(size):
            produced_rows += batch.length
            produced_batches += 1
            yield batch
        self.actual_rows = produced_rows
        self.actual_batches = produced_batches

    def _column_batches(self, size: int) -> Iterator[ColumnBatch]:
        """Operator-specific columnar production.

        The default transposes the row-batch path at the boundary, so every
        operator participates in ``mode="columns"``; hot operators override
        this with native columnar implementations.
        """
        width = len(self.schema)
        for batch in self._batches(size):
            yield ColumnBatch.from_rows(batch, width)

    def explain_label(self) -> str:
        return type(self).__name__

    def explain_details(self) -> List[str]:
        """Extra indented lines under the node header in EXPLAIN output."""
        return []

    def actuals(self) -> dict:
        """The operator tree's runtime accounting as a nested dict.

        Reads the ``actual_rows``/``actual_batches`` counters the batch
        iterators already maintain — free to call after an execution, no
        re-run.  Nodes that never produced (e.g. the unexecuted branches
        of an early-exited plan) report ``None``.  This is what query
        traces attach under the ``operators`` attribute and what
        ``explain_analyze(trace=True)`` returns structurally.
        """
        return {
            "operator": self.explain_label(),
            "estimated_rows": self.estimated_rows,
            "actual_rows": self.actual_rows,
            "actual_batches": self.actual_batches,
            "children": [child.actuals() for child in self.children],
        }

    def column_nullable(self, position: int) -> bool:
        """Whether an output column can contain NULL (conservative).

        Derived statically from the plan: base scans consult the cached
        per-column nullability of their relation, and row-preserving
        operators delegate by position.  The columnar executor selects
        NULL-guard-free kernel bodies when every referenced column is
        provably clean; ``True`` (the safe default) keeps the guards.
        """
        if self.row_passthrough:
            return self.children[0].column_nullable(position)
        return True


def _chunks(rows: List[Row], size: int) -> Iterator[Batch]:
    """Slice a materialized row list into batches."""
    for start in range(0, len(rows), size):
        yield rows[start : start + size]


def _drain(plan: PhysicalPlan, size: int) -> List[Row]:
    """All rows of a plan via its batch interface (keeps stats accurate)."""
    out: List[Row] = []
    for batch in plan.batches(size):
        out.extend(batch)
    return out


class SeqScan(PhysicalPlan):
    """Sequential scan over a materialized base relation.

    ``start``/``stop`` bound the scan to a contiguous row range — the
    partition a :class:`ParallelScan` worker covers.  The default covers
    the whole relation; bounded scans slice the same cached column store,
    so the partitions of a parallel scan share one store.
    """

    def __init__(
        self,
        relation: Relation,
        name: str = "relation",
        alias: Optional[str] = None,
        start: int = 0,
        stop: Optional[int] = None,
    ):
        self.relation = relation
        self.name = name
        self.alias = alias
        total = len(relation.rows)
        self.start = max(0, start)
        self.stop = total if stop is None else min(stop, total)
        self.schema = relation.schema.qualify(alias) if alias else relation.schema
        self.estimated_rows = float(max(self.stop - self.start, 0))

    def rows(self) -> Iterator[Row]:
        if self.start == 0 and self.stop == len(self.relation.rows):
            return iter(self.relation.rows)
        return iter(self.relation.rows[self.start : self.stop])

    def _batches(self, size: int) -> Iterator[Batch]:
        rows = self.relation.rows
        for s in range(self.start, self.stop, size):
            yield rows[s : min(s + size, self.stop)]

    def _column_batches(self, size: int) -> Iterator[ColumnBatch]:
        store = self.relation.column_store()
        for s in range(self.start, self.stop, size):
            e = min(s + size, self.stop)
            yield ColumnBatch([c[s:e] for c in store], e - s)

    def column_nullable(self, position: int) -> bool:
        return self.relation.column_has_null(position)

    def bounded(self, start: int, stop: int) -> "SeqScan":
        """A copy of this scan restricted to ``[start, stop)``."""
        return SeqScan(self.relation, self.name, self.alias, start=start, stop=stop)

    def explain_label(self) -> str:
        if self.alias:
            return f"Seq Scan on {self.name} {self.alias}"
        return f"Seq Scan on {self.name}"


#: Sentinel distinguishing "no point lookup" from a point lookup on NULL.
_NO_POINT = object()


def _resolve_key(point: Any) -> Any:
    """Resolve ``$n`` parameter slots in a point-lookup key at run time.

    The planner stores :class:`~repro.relational.expressions.Param`
    objects (not their values) in cached plans; each execution reads the
    currently bound value here, so one plan serves every binding.
    """
    if isinstance(point, Param):
        return point.value
    if isinstance(point, tuple) and any(isinstance(v, Param) for v in point):
        return tuple(v.value if isinstance(v, Param) else v for v in point)
    return point


class IndexScan(PhysicalPlan):
    """Base-relation access through a secondary index.

    Three access modes:

    * *point* — ``point`` is the lookup key (scalar for single-column
      indexes, tuple otherwise); works on hash and sorted indexes,
    * *range* — ``lower``/``upper`` bounds on the first index column
      (sorted indexes only),
    * *full*  — no condition: an ordered scan of a sorted index.

    ``residual`` is the leftover predicate the index condition does not
    cover; it is evaluated against every fetched row.  The ``schema`` is
    the scan's *output* schema, which may be a renamed/qualified view of
    the indexed relation's schema — positions are identical, so index rows
    flow through unchanged.

    A ``probe=True`` instance is the display-only inner side of an
    :class:`IndexNestedLoopJoin`; it is never executed (the join probes the
    index directly) and produces nothing if drained.
    """

    def __init__(
        self,
        index: Index,
        name: str,
        schema: Schema,
        alias: Optional[str] = None,
        point: Any = _NO_POINT,
        lower: Any = None,
        upper: Any = None,
        lower_inclusive: bool = True,
        upper_inclusive: bool = True,
        index_cond: Optional[str] = None,
        residual: Optional[Expression] = None,
        probe: bool = False,
    ):
        if len(schema) != len(index.relation.schema):
            raise ValueError("IndexScan schema must mirror the indexed relation")
        ranged = lower is not None or upper is not None
        if point is not _NO_POINT and ranged:
            raise ValueError("IndexScan takes a point key or range bounds, not both")
        if ranged and not isinstance(index, SortedIndex):
            raise ValueError("range access requires a SortedIndex")
        if point is _NO_POINT and not ranged and not probe and not isinstance(index, SortedIndex):
            raise ValueError("full scan access requires a SortedIndex")
        self.index = index
        self.name = name
        self.alias = alias
        self.schema = schema
        self.point = point
        self.lower = lower
        self.upper = upper
        self.lower_inclusive = lower_inclusive
        self.upper_inclusive = upper_inclusive
        self.index_cond = index_cond
        self.probe = probe
        self.residual = residual
        self._bound_residual = residual.bind(schema) if residual is not None else None
        self._compiled_residual = residual.compile(schema) if residual is not None else None
        self.estimated_rows = float(len(index))

    def _matched(self) -> Sequence[Row]:
        if self.probe:
            return ()
        if self.point is not _NO_POINT:
            return self.index.lookup(_resolve_key(self.point))
        if self.lower is None and self.upper is None:
            return self.index.ordered()  # type: ignore[union-attr]  # SortedIndex per __init__
        # ``$n`` bounds resolve per execution, so one cached plan serves
        # ``BETWEEN $1 AND $2`` under every binding; a bound resolving to
        # NULL matches nothing (SQL comparison semantics)
        lower, upper = self.lower, self.upper
        if isinstance(lower, Param):
            lower = lower.value
            if lower is None:
                return ()
        if isinstance(upper, Param):
            upper = upper.value
            if upper is None:
                return ()
        return self.index.range(  # type: ignore[union-attr]  # SortedIndex checked in __init__
            lower, upper, self.lower_inclusive, self.upper_inclusive
        )

    def rows(self) -> Iterator[Row]:
        residual = self._bound_residual
        if residual is None:
            return iter(self._matched())
        return (row for row in self._matched() if residual(row))

    def _batches(self, size: int) -> Iterator[Batch]:
        matched = self._matched()
        residual = self._compiled_residual
        if residual is not None:
            matched = [row for row in matched if residual(row)]
        elif not isinstance(matched, list):
            matched = list(matched)
        return _chunks(matched, size)

    def explain_label(self) -> str:
        target = f"{self.name} {self.alias}" if self.alias else self.name
        return f"Index Scan using {self.index.name} on {target}"

    def explain_details(self) -> List[str]:
        details = []
        if self.index_cond:
            details.append(f"Index Cond: {self.index_cond}")
        if self.residual is not None:
            details.append(f"Filter: {self.residual!r}")
        return details

    def column_nullable(self, position: int) -> bool:
        # positions mirror the indexed base relation's schema
        return self.index.relation.column_has_null(position)


class FusedPipeline(PhysicalPlan):
    """A fused scan→filter→project pipeline in one generated loop.

    The planner's fusion pass collapses each maximal chain of
    ``Projection``/``ProjectionAs`` over ``Filter`` (through pass-through
    renames) over a base access (``SeqScan`` or ``IndexScan``) into one of
    these.  ``predicate`` is re-anchored to the source's schema (renames
    never move columns, so positions are stable) and ``positions`` are the
    output columns as source positions; either may be ``None``.

    Row mode runs one generated list comprehension per batch — predicate
    inlined, output tuple built in place, no per-row callable invocations.
    Column mode evaluates the predicate as a vector kernel over the scan's
    column store and gathers only the output columns, so dropped columns
    are never materialized.
    """

    def __init__(
        self,
        source: PhysicalPlan,
        predicate: Optional[Expression],
        positions: Optional[Sequence[int]],
        schema: Schema,
    ):
        if predicate is None and positions is None:
            raise ValueError("a fused pipeline needs a predicate or a projection")
        self.source = source
        self.predicate = predicate
        self.positions = list(positions) if positions is not None else None
        self.schema = schema
        self.estimated_rows = source.estimated_rows

    @property
    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.source,)

    def rows(self) -> Iterator[Row]:
        kernel = pipeline_kernel(self.predicate, self.positions, self.source.schema)
        for batch in self.source.batches(BATCH_SIZE):
            yield from kernel(batch)

    def _batches(self, size: int) -> Iterator[Batch]:
        kernel = pipeline_kernel(self.predicate, self.positions, self.source.schema)
        for batch in self.source.batches(size):
            out = kernel(batch)
            if out:
                yield out

    def _column_batches(self, size: int) -> Iterator[ColumnBatch]:
        if not isinstance(self.source, SeqScan):
            # index scans materialize row tuples anyway; run the row kernel
            # and transpose once at the boundary
            width = len(self.schema)
            for batch in self._batches(size):
                yield ColumnBatch.from_rows(batch, width)
            return
        if self.predicate is not None:
            # the scan's base relation has cached per-column nullability:
            # provably NULL-free predicates run without NULL guards
            from .expressions import has_null_literal

            relation = self.source.relation
            assume = not has_null_literal(self.predicate) and not any(
                relation.column_has_null(self.source.schema.resolve(name))
                for name in self.predicate.columns()
            )
            select = selection_kernel(
                self.predicate, self.source.schema, assume_non_null=assume
            )
        else:
            select = None
        positions = self.positions
        for cb in self.source.column_batches(size):
            columns = cb.columns
            if select is None:
                keep = None
                kept = cb.length
            else:
                keep = select(columns, cb.length)
                kept = len(keep)
                if not kept:
                    continue
                if kept == cb.length:
                    keep = None  # everything passed: reuse the vectors
            wanted = (
                [columns[p] for p in positions]
                if positions is not None
                else columns
            )
            if keep is None:
                yield ColumnBatch(wanted, kept)
            else:
                yield ColumnBatch([[c[i] for i in keep] for c in wanted], kept)

    def explain_label(self) -> str:
        return "Fused Pipeline"

    def explain_details(self) -> List[str]:
        details = []
        if self.predicate is not None:
            details.append(f"Filter: {self.predicate!r}")
        if self.positions is not None:
            details.append(f"Output: {', '.join(self.schema.names)}")
        return details

    def column_nullable(self, position: int) -> bool:
        if self.positions is not None:
            position = self.positions[position]
        return self.source.column_nullable(position)


#: Shared worker pool for partition-parallel scans, created on first use.
#: One process-wide pool (not per-plan): cached plans are executed by many
#: sessions concurrently and must not each spin up threads.  Scan tasks
#: are leaves — they never submit to the pool themselves — so the pool
#: cannot deadlock on itself.
_SCAN_POOL: Optional[ThreadPoolExecutor] = None
_SCAN_POOL_LOCK = threading.Lock()

#: A partition below this many rows is not worth a thread handoff.
PARALLEL_MIN_PARTITION_ROWS = 256


def _scan_pool() -> ThreadPoolExecutor:
    global _SCAN_POOL
    if _SCAN_POOL is None:
        with _SCAN_POOL_LOCK:
            if _SCAN_POOL is None:
                workers = max(2, min(8, os.cpu_count() or 1))
                _SCAN_POOL = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="repro-scan"
                )
    return _SCAN_POOL


class ParallelScan(PhysicalPlan):
    """Partition-parallel scan: a gather over K range partitions.

    The planner wraps a :class:`FusedPipeline` over a :class:`SeqScan` (or
    a bare ``SeqScan``) when the scanned relation is large enough
    (``Planner(parallel=K)``).  Execution splits the relation's row range
    into K contiguous partitions, runs the *same* fused
    scan→filter→project pipeline per partition on the shared worker pool
    (each worker slices the one cached column store — no data is copied),
    and concatenates the partitions' batch streams in partition order, so
    output order is byte-identical to the serial scan.

    The operator is re-entrant like every other: partition clones and
    futures are per-execution state, so one cached plan serves N
    concurrent sessions.  On a GIL build the win is overlap (a long scan
    no longer monopolizes a serving thread between batches) rather than
    CPU parallelism; on free-threaded builds the partitions genuinely run
    in parallel.  Falls back to the serial pipeline when the relation is
    too small to be worth the thread handoff.
    """

    def __init__(self, pipeline: PhysicalPlan, workers: int):
        if isinstance(pipeline, FusedPipeline):
            source = pipeline.source
        else:
            source = pipeline
        if not isinstance(source, SeqScan):
            raise ValueError("ParallelScan requires a (fused) sequential base scan")
        self.pipeline = pipeline
        self.source = source
        self.workers = max(2, int(workers))
        self.schema = pipeline.schema
        self.estimated_rows = pipeline.estimated_rows

    @property
    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.pipeline,)

    def _partitions(self) -> Optional[List[Tuple[int, int]]]:
        """Contiguous ``[start, stop)`` ranges, or None for serial.

        Cut points snap to the scanned relation's *segment boundaries*
        (when one lies within half a partition step): a worker whose
        slice starts at a segment start reads whole cached per-segment
        column runs instead of straddling two appended segments.  The
        snap is best-effort — a relation that is one giant base segment
        still splits evenly rather than collapsing to a serial scan.
        """
        start, stop = self.source.start, self.source.stop
        total = stop - start
        k = min(self.workers, total // PARALLEL_MIN_PARTITION_ROWS)
        if k <= 1:
            return None
        step = (total + k - 1) // k
        cuts = list(range(start + step, stop, step))
        boundaries = [
            b for b in self.source.relation.segment_boundaries() if start < b < stop
        ]
        if boundaries:
            snapped = []
            for cut in cuts:
                i = bisect.bisect_left(boundaries, cut)
                near = boundaries[max(0, i - 1) : i + 1]
                best = min(near, key=lambda b: abs(b - cut))
                snapped.append(best if abs(best - cut) * 2 <= step else cut)
            cuts = snapped
        edges = [start] + sorted(set(cuts)) + [stop]
        ranges = [(a, b) for a, b in zip(edges, edges[1:]) if b > a]
        return ranges if len(ranges) > 1 else None

    def _clone(self, start: int, stop: int) -> PhysicalPlan:
        bounded = self.source.bounded(start, stop)
        if isinstance(self.pipeline, FusedPipeline):
            return FusedPipeline(
                bounded,
                self.pipeline.predicate,
                self.pipeline.positions,
                self.pipeline.schema,
            )
        return bounded

    def _gather(self, size: int, method: str) -> Iterator[Any]:
        """Run the per-partition pipelines on the pool, merge in order."""
        ranges = self._partitions()
        if ranges is None:
            yield from getattr(self.pipeline, method)(size)
            return
        pool = _scan_pool()

        def work(bounds: Tuple[int, int]) -> List[Any]:
            clone = self._clone(*bounds)
            return list(getattr(clone, method)(size))

        futures = [pool.submit(work, bounds) for bounds in ranges]
        for future in futures:  # partition order == relation order
            yield from future.result()

    def rows(self) -> Iterator[Row]:
        return self.pipeline.rows()

    def _batches(self, size: int) -> Iterator[Batch]:
        return self._gather(size, "batches")

    def _column_batches(self, size: int) -> Iterator[ColumnBatch]:
        return self._gather(size, "column_batches")

    def column_nullable(self, position: int) -> bool:
        return self.pipeline.column_nullable(position)

    def explain_label(self) -> str:
        return "Gather"

    def explain_details(self) -> List[str]:
        return [f"Workers Planned: {self.workers}"]


class Filter(PhysicalPlan):
    """Row filter by a bound predicate."""

    def __init__(self, child: PhysicalPlan, predicate: Expression):
        self.child = child
        self.predicate = predicate
        self._bound = predicate.bind(child.schema)
        self._compiled = predicate.compile(child.schema)
        self.schema = child.schema
        self.estimated_rows = child.estimated_rows

    @property
    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.child,)

    def rows(self) -> Iterator[Row]:
        bound = self._bound
        for row in self.child.rows():
            if bound(row):
                yield row

    def _batches(self, size: int) -> Iterator[Batch]:
        predicate = self._compiled
        for batch in self.child.batches(size):
            kept = [row for row in batch if predicate(row)]
            if kept:
                yield kept

    def _column_batches(self, size: int) -> Iterator[ColumnBatch]:
        kernel = selection_kernel(self.predicate, self.child.schema)
        for batch in self.child.column_batches(size):
            keep = kernel(batch.columns, batch.length)
            if not keep:
                continue
            if len(keep) == batch.length:
                yield batch
            else:
                yield ColumnBatch(
                    [[c[i] for i in keep] for c in batch.columns], len(keep)
                )

    def explain_label(self) -> str:
        return "Filter"

    def explain_details(self) -> List[str]:
        return [f"Filter: {self.predicate!r}"]

    def column_nullable(self, position: int) -> bool:
        return self.child.column_nullable(position)


class Projection(PhysicalPlan):
    """Positional projection (bag semantics)."""

    def __init__(self, child: PhysicalPlan, columns: Sequence[str]):
        self.child = child
        self.columns = list(columns)
        self.positions = child.schema.positions(self.columns)
        self.schema = child.schema.project(self.columns)
        self.estimated_rows = child.estimated_rows

    @property
    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.child,)

    def rows(self) -> Iterator[Row]:
        positions = self.positions
        for row in self.child.rows():
            yield tuple(row[i] for i in positions)

    def _batches(self, size: int) -> Iterator[Batch]:
        project = _projector(self.positions)
        for batch in self.child.batches(size):
            yield [project(row) for row in batch]

    def _column_batches(self, size: int) -> Iterator[ColumnBatch]:
        # columnar projection is column re-selection: no per-row work at all
        positions = self.positions
        for batch in self.child.column_batches(size):
            yield ColumnBatch([batch.columns[i] for i in positions], batch.length)

    def explain_label(self) -> str:
        return "Project"

    def explain_details(self) -> List[str]:
        return [f"Output: {', '.join(self.columns)}"]

    def column_nullable(self, position: int) -> bool:
        return self.child.column_nullable(self.positions[position])


class ProjectionAs(PhysicalPlan):
    """Generalized projection with duplication and renaming."""

    def __init__(self, child: PhysicalPlan, items: Sequence[Tuple[str, str]]):
        self.child = child
        self.items = list(items)
        self.positions = [child.schema.resolve(ref) for ref, _ in self.items]
        attrs = []
        for (ref, new), pos in zip(self.items, self.positions):
            attrs.append(child.schema[pos].renamed(new))
        self.schema = Schema(attrs)
        self.estimated_rows = child.estimated_rows

    @property
    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.child,)

    def rows(self) -> Iterator[Row]:
        positions = self.positions
        for row in self.child.rows():
            yield tuple(row[i] for i in positions)

    def _batches(self, size: int) -> Iterator[Batch]:
        project = _projector(self.positions)
        for batch in self.child.batches(size):
            yield [project(row) for row in batch]

    def _column_batches(self, size: int) -> Iterator[ColumnBatch]:
        positions = self.positions
        for batch in self.child.column_batches(size):
            yield ColumnBatch([batch.columns[i] for i in positions], batch.length)

    def explain_label(self) -> str:
        return "Project"

    def explain_details(self) -> List[str]:
        return ["Output: " + ", ".join(f"{ref} AS {new}" for ref, new in self.items)]

    def column_nullable(self, position: int) -> bool:
        return self.child.column_nullable(self.positions[position])


class ExtendOp(PhysicalPlan):
    """Extended projection: pass-through plus computed columns."""

    def __init__(self, child: PhysicalPlan, items: Sequence[Tuple[str, Expression]]):
        self.child = child
        self.items = list(items)
        self._bound = [expr.bind(child.schema) for _, expr in self.items]
        self._compiled = [expr.compile(child.schema) for _, expr in self.items]
        attrs = list(child.schema.attributes)
        for name, _expr in self.items:
            attrs.append(child.schema.attributes[0].renamed(name))
        self.schema = Schema(attrs)
        self.estimated_rows = child.estimated_rows

    @property
    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.child,)

    def rows(self) -> Iterator[Row]:
        bound = self._bound
        for row in self.child.rows():
            yield row + tuple(fn(row) for fn in bound)

    def _batches(self, size: int) -> Iterator[Batch]:
        fns = self._compiled
        if len(fns) == 1:
            f0 = fns[0]
            for batch in self.child.batches(size):
                yield [row + (f0(row),) for row in batch]
        elif len(fns) == 2:
            f0, f1 = fns
            for batch in self.child.batches(size):
                yield [row + (f0(row), f1(row)) for row in batch]
        else:
            for batch in self.child.batches(size):
                yield [row + tuple(fn(row) for fn in fns) for row in batch]

    def _column_batches(self, size: int) -> Iterator[ColumnBatch]:
        from .columnar import map_kernel

        kernels = [map_kernel(expr, self.child.schema) for _, expr in self.items]
        for batch in self.child.column_batches(size):
            extended = list(batch.columns)
            for kernel in kernels:
                extended.append(kernel(batch.columns, batch.length))
            yield ColumnBatch(extended, batch.length)

    def explain_label(self) -> str:
        return "Extend"

    def explain_details(self) -> List[str]:
        return ["Output: *, " + ", ".join(f"{expr!r} AS {name}" for name, expr in self.items)]


class HashJoin(PhysicalPlan):
    """Equi-join: hash-build on one input, probe with the other.

    ``pairs`` is a list of ``(left_col, right_col)`` equalities; an optional
    ``residual`` predicate (over the concatenated schema) filters join
    candidates — this is where the U-relations ψ-condition typically lands.

    By default the *right* input is hashed (the PostgreSQL convention the
    paper's plans show); ``build="left"`` hashes the left input instead and
    streams the right through as the probe side.  The planner picks the
    side with the smaller estimated cardinality.  Output rows are always
    ``left ++ right`` regardless of build side.
    """

    def __init__(
        self,
        left: PhysicalPlan,
        right: PhysicalPlan,
        pairs: Sequence[Tuple[str, str]],
        residual: Optional[Expression] = None,
        build: str = "right",
    ):
        if not pairs:
            raise ValueError("HashJoin requires at least one equi-pair")
        if build not in ("left", "right"):
            raise ValueError(f"build side must be 'left' or 'right', got {build!r}")
        self.left = left
        self.right = right
        self.pairs = list(pairs)
        self.residual = residual
        self.build = build
        self._combined = left.schema.concat(right.schema)
        self.schema = self._combined
        #: Folded downstream projection (positions into the concatenated
        #: schema), set by the planner's fusion pass via :meth:`set_output`.
        self.output_positions: Optional[List[int]] = None
        self.left_positions = [left.schema.resolve(l) for l, _ in self.pairs]
        self.right_positions = [right.schema.resolve(r) for _, r in self.pairs]
        self._bound_residual = residual.bind(self._combined) if residual is not None else None
        self._compiled_residual = (
            residual.compile(self._combined) if residual is not None else None
        )
        self.estimated_rows = max(left.estimated_rows, right.estimated_rows)

    def set_output(self, positions: Sequence[int], schema: Schema) -> None:
        """Fold a downstream projection into the join's emit (fusion)."""
        self.output_positions = list(positions)
        self.schema = schema

    @property
    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.left, self.right)

    def rows(self) -> Iterator[Row]:
        build_left = self.build == "left"
        build_plan, build_positions = (
            (self.left, self.left_positions)
            if build_left
            else (self.right, self.right_positions)
        )
        probe_plan, probe_positions = (
            (self.right, self.right_positions)
            if build_left
            else (self.left, self.left_positions)
        )
        table: Dict[Tuple[Any, ...], List[Row]] = {}
        for row in build_plan.rows():
            key = tuple(row[i] for i in build_positions)
            if any(v is None for v in key):
                continue  # NULLs never join
            table.setdefault(key, []).append(row)
        residual = self._bound_residual
        project = (
            _projector(self.output_positions)
            if self.output_positions is not None
            else None
        )
        for prow in probe_plan.rows():
            key = tuple(prow[i] for i in probe_positions)
            if any(v is None for v in key):
                continue
            for brow in table.get(key, ()):
                out = brow + prow if build_left else prow + brow
                if residual is None or residual(out):
                    yield out if project is None else project(out)

    def _build_table(
        self, size: int, columnar: bool = False
    ) -> Dict[Any, List[Row]]:
        """Hash the build side (NULL keys excluded, as NULLs never join).

        ``columnar=True`` drains the build child through the column
        protocol (keeping its pipeline columnar) and transposes each batch
        at the boundary; buckets always hold row tuples.
        """
        single = len(self.pairs) == 1
        build_left = self.build == "left"
        build_plan, build_positions = (
            (self.left, self.left_positions)
            if build_left
            else (self.right, self.right_positions)
        )
        table: Dict[Any, List[Row]] = {}
        setdefault = table.setdefault
        if columnar:
            # keys come straight off the build side's column vectors and
            # rows from one C-speed transpose per batch
            for cb in build_plan.column_batches(size):
                rows = cb.to_rows()
                if single:
                    keys: Any = cb.columns[build_positions[0]]
                else:
                    keys = zip(*(cb.columns[p] for p in build_positions))
                for key, row in zip(keys, rows):
                    if _key_is_null(key, single):
                        continue
                    setdefault(key, []).append(row)
            return table
        bkey = _keyer(build_positions)
        for batch in build_plan.batches(size):
            for row in batch:
                key = bkey(row)
                if _key_is_null(key, single):
                    continue
                setdefault(key, []).append(row)
        return table

    def _batches(self, size: int) -> Iterator[Batch]:
        if self.output_positions is not None:
            yield from self._batches_projected(size)
            return
        single = len(self.pairs) == 1
        build_left = self.build == "left"
        probe_plan, probe_positions = (
            (self.right, self.right_positions)
            if build_left
            else (self.left, self.left_positions)
        )
        table = self._build_table(size)
        pkey = _keyer(probe_positions)
        residual = self._compiled_residual
        get = table.get
        out: Batch = []
        for batch in probe_plan.batches(size):
            for prow in batch:
                key = pkey(prow)
                if _key_is_null(key, single):
                    continue
                bucket = get(key)
                if not bucket:
                    continue
                if residual is None:
                    if build_left:
                        out.extend(brow + prow for brow in bucket)
                    else:
                        out.extend(prow + brow for brow in bucket)
                elif build_left:
                    for brow in bucket:
                        joined = brow + prow
                        if residual(joined):
                            out.append(joined)
                else:
                    for brow in bucket:
                        joined = prow + brow
                        if residual(joined):
                            out.append(joined)
                if len(out) >= size:
                    yield out
                    out = []
        if out:
            yield out

    def _batches_projected(self, size: int) -> Iterator[Batch]:
        """Probe loop with a folded projection: emits output tuples directly
        from the two input rows — the concatenated row never exists."""
        single = len(self.pairs) == 1
        build_left = self.build == "left"
        probe_plan, probe_positions = (
            (self.right, self.right_positions)
            if build_left
            else (self.left, self.left_positions)
        )
        table = self._build_table(size)
        pkey = _keyer(probe_positions)
        split = len(self.left.schema)
        emit = _pair_emitter(self.output_positions, split)
        residual = (
            compile_pair_expression(self.residual, self.left.schema, self.right.schema)
            if self.residual is not None
            else None
        )
        get = table.get
        out: Batch = []
        append = out.append
        for batch in probe_plan.batches(size):
            for prow in batch:
                key = pkey(prow)
                if _key_is_null(key, single):
                    continue
                bucket = get(key)
                if not bucket:
                    continue
                if build_left:
                    for brow in bucket:
                        if residual is None or residual(brow, prow):
                            append(emit(brow, prow))
                else:
                    for brow in bucket:
                        if residual is None or residual(prow, brow):
                            append(emit(prow, brow))
                if len(out) >= size:
                    yield out
                    out = []
                    append = out.append
        if out:
            yield out

    def _column_batches(self, size: int) -> Iterator[ColumnBatch]:
        """Columnar probe: the probe input arrives as column vectors, and
        output columns are gathered directly from the probe vectors and the
        matched build rows — only the (possibly folded) output columns are
        ever materialized."""
        single = len(self.pairs) == 1
        build_left = self.build == "left"
        probe_positions = (
            self.right_positions if build_left else self.left_positions
        )
        probe_plan = self.right if build_left else self.left
        build_plan = self.left if build_left else self.right
        split = len(self.left.schema)
        probe_is_left = not build_left
        table = self._build_table(size, columnar=True)
        get = table.get
        positions = (
            self.output_positions
            if self.output_positions is not None
            else range(len(self._combined))
        )
        specs = []  # (from_probe_vectors, side-local position)
        for p in positions:
            on_left = p < split
            local = p if on_left else p - split
            specs.append((on_left == probe_is_left, local))
        if single:
            # fully fused generated probe: C-speed hash resolution, the
            # residual inlined, and direct column emit in one loop
            kernel = probe_kernel(
                self._combined,
                split,
                probe_is_left,
                probe_positions[0],
                self.residual,
                (),
                specs,
            )
            if kernel is not None:
                # columns the residual consults must be provably NULL-free
                # (from the plan tree) for the kernel's guard-free body
                fast = True
                if self.residual is not None:
                    for name in self.residual.columns():
                        p = self._combined.resolve(name)
                        on_left = p < split
                        local = p if on_left else p - split
                        side = (
                            probe_plan if on_left == probe_is_left else build_plan
                        )
                        if side.column_nullable(local):
                            fast = False
                            break
                for cb in probe_plan.column_batches(size):
                    out_cols, count = kernel(get, cb.columns, fast)
                    if count:
                        yield ColumnBatch(list(out_cols), count)
                return
        residual_kernel = (
            side_kernel(
                self.residual,
                self._combined,
                split,
                "left" if probe_is_left else "right",
            )
            if self.residual is not None
            else None
        )
        for cb in probe_plan.column_batches(size):
            pcols = cb.columns
            n = cb.length
            pidx: List[int] = []
            brows: List[Row] = []
            add_i = pidx.append
            add_b = brows.append
            if single:
                # C-speed probing: ``map(dict.get, kcol)`` resolves every
                # key in one pass; NULL keys are never in the table
                kcol = pcols[probe_positions[0]]
                for i, bucket in enumerate(map(get, kcol)):
                    if not bucket:
                        continue
                    for brow in bucket:
                        add_i(i)
                        add_b(brow)
            else:
                kcols = [pcols[p] for p in probe_positions]
                for i in range(n):
                    k = tuple(c[i] for c in kcols)
                    if None in k:
                        continue
                    bucket = get(k)
                    if not bucket:
                        continue
                    for brow in bucket:
                        add_i(i)
                        add_b(brow)
            if not pidx:
                continue
            if residual_kernel is not None:
                keep = residual_kernel(pcols, pidx, brows, len(pidx))
                if not keep:
                    continue
                pidx = [pidx[j] for j in keep]
                brows = [brows[j] for j in keep]
            out_cols: List[List[Any]] = []
            for from_probe, local in specs:
                if from_probe:
                    column = pcols[local]
                    out_cols.append([column[i] for i in pidx])
                else:
                    out_cols.append([r[local] for r in brows])
            yield ColumnBatch(out_cols, len(pidx))

    def column_nullable(self, position: int) -> bool:
        if self.output_positions is not None:
            position = self.output_positions[position]
        split = len(self.left.schema)
        if position < split:
            return self.left.column_nullable(position)
        return self.right.column_nullable(position - split)

    def explain_label(self) -> str:
        return "Hash Join"

    def explain_details(self) -> List[str]:
        cond = " AND ".join(f"({l} = {r})" for l, r in self.pairs)
        details = [f"Hash Cond: {cond}"]
        if self.residual is not None:
            details.append(f"Join Filter: {self.residual!r}")
        if self.output_positions is not None:
            details.append(f"Output: {', '.join(self.schema.names)}")
        return details


class IndexNestedLoopJoin(PhysicalPlan):
    """Equi-join that probes a prebuilt index on the inner relation.

    For every outer row the join key is extracted (ordered to match the
    index's column order) and looked up in the index — no scan or hash
    build of the inner side happens at all, which is the access-path win
    the paper gets from indexed U-relation partitions: the tid-equijoins
    that reassemble vertical partitions probe the partition's tid index.

    ``inner`` is a display-only plan (normally a probe-mode
    :class:`IndexScan`) supplying the inner schema for EXPLAIN; rows come
    straight out of ``index``.  ``flipped=False`` means the outer is the
    join's logical *left* (output rows are ``outer + inner``);
    ``flipped=True`` swaps the roles but preserves the left-to-right output
    schema (``inner + outer``).  ``pairs`` is ``(outer_col, inner_col)``
    per index column; ``residual`` filters the concatenated row.

    ``inner_filters`` are compiled row predicates applied to every probed
    inner row before concatenation — the planner moves the inner side's
    pushed-down selections here, so a *filtered* partition scan can still
    be replaced by index probes (the filter runs on the few matched rows
    instead of the whole table).  ``inner_filter_exprs`` are the matching
    expressions, kept for EXPLAIN only.
    """

    def __init__(
        self,
        outer: PhysicalPlan,
        inner: PhysicalPlan,
        index: Index,
        outer_positions: Sequence[int],
        pairs: Sequence[Tuple[str, str]],
        residual: Optional[Expression] = None,
        flipped: bool = False,
        inner_filters: Sequence[Callable[[Row], Any]] = (),
        inner_filter_exprs: Sequence[Expression] = (),
        inner_filter_schemas: Sequence[Schema] = (),
    ):
        if len(outer_positions) != len(index.positions):
            raise ValueError("outer key width must match the index column count")
        self.outer = outer
        self.inner = inner
        self.index = index
        self.outer_positions = list(outer_positions)
        self.pairs = list(pairs)
        self.residual = residual
        self.flipped = flipped
        self.inner_filters = list(inner_filters)
        self.inner_filter_exprs = list(inner_filter_exprs)
        #: Schemas the filter expressions were written against (parallel to
        #: ``inner_filter_exprs``); lets the columnar executor inline the
        #: filters into its generated probe kernel.
        self.inner_filter_schemas = list(inner_filter_schemas)
        self._combined = (
            inner.schema.concat(outer.schema)
            if flipped
            else outer.schema.concat(inner.schema)
        )
        self.schema = self._combined
        #: Folded downstream projection (positions into the concatenated
        #: schema), set by the planner's fusion pass via :meth:`set_output`.
        self.output_positions: Optional[List[int]] = None
        self._bound_residual = residual.bind(self._combined) if residual is not None else None
        self._compiled_residual = (
            residual.compile(self._combined) if residual is not None else None
        )
        self.estimated_rows = max(outer.estimated_rows, inner.estimated_rows)

    def set_output(self, positions: Sequence[int], schema: Schema) -> None:
        """Fold a downstream projection into the join's emit (fusion)."""
        self.output_positions = list(positions)
        self.schema = schema

    @property
    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.outer, self.inner)

    def _probe(self, key: Any) -> Sequence[Row]:
        """Matched inner rows for a key, after the inner-side filters."""
        bucket = self.index.lookup(key)
        if not bucket or not self.inner_filters:
            return bucket
        filters = self.inner_filters
        if len(filters) == 1:
            predicate = filters[0]
            return [row for row in bucket if predicate(row)]
        return [row for row in bucket if all(f(row) for f in filters)]

    def rows(self) -> Iterator[Row]:
        single = len(self.outer_positions) == 1
        key = _keyer(self.outer_positions)
        probe = self._probe
        residual = self._bound_residual
        flipped = self.flipped
        project = (
            _projector(self.output_positions)
            if self.output_positions is not None
            else None
        )
        for orow in self.outer.rows():
            k = key(orow)
            if _key_is_null(k, single):
                continue
            for irow in probe(k):
                out = irow + orow if flipped else orow + irow
                if residual is None or residual(out):
                    yield out if project is None else project(out)

    def _batches(self, size: int) -> Iterator[Batch]:
        if self.output_positions is not None:
            yield from self._batches_projected(size)
            return
        # hot path: everything hoisted out of the per-row loop (index
        # lookup as a bare dict.get for hash indexes, single-column keys
        # read by position, single compiled filter unwrapped, one-row
        # buckets — the typical tid-index case — handled without a list
        # comprehension allocation)
        single = len(self.outer_positions) == 1
        position = self.outer_positions[0] if single else -1
        key = None if single else _keyer(self.outer_positions)
        lookup = self.index.lookup_fn()
        filters = self.inner_filters
        only_filter = filters[0] if len(filters) == 1 else None
        residual = self._compiled_residual
        flipped = self.flipped
        out: Batch = []
        append = out.append
        for batch in self.outer.batches(size):
            for orow in batch:
                if single:
                    k = orow[position]
                    if k is None:
                        continue
                else:
                    k = key(orow)
                    if None in k:
                        continue
                bucket = lookup(k)
                if not bucket:
                    continue
                if only_filter is not None:
                    if len(bucket) == 1:
                        irow = bucket[0]
                        if not only_filter(irow):
                            continue
                        joined = irow + orow if flipped else orow + irow
                        if residual is None or residual(joined):
                            append(joined)
                            if len(out) >= size:
                                yield out
                                out = []
                                append = out.append
                        continue
                    bucket = [irow for irow in bucket if only_filter(irow)]
                    if not bucket:
                        continue
                elif filters:
                    bucket = [
                        irow for irow in bucket if all(f(irow) for f in filters)
                    ]
                    if not bucket:
                        continue
                if residual is None:
                    if flipped:
                        out.extend(irow + orow for irow in bucket)
                    else:
                        out.extend(orow + irow for irow in bucket)
                elif flipped:
                    for irow in bucket:
                        joined = irow + orow
                        if residual(joined):
                            append(joined)
                else:
                    for irow in bucket:
                        joined = orow + irow
                        if residual(joined):
                            append(joined)
                if len(out) >= size:
                    yield out
                    out = []
                    append = out.append
        if out:
            yield out

    def _batches_projected(self, size: int) -> Iterator[Batch]:
        """Probe loop with a folded projection: output tuples are emitted
        straight from (outer row, probed inner row) pairs."""
        single = len(self.outer_positions) == 1
        position = self.outer_positions[0] if single else -1
        key = None if single else _keyer(self.outer_positions)
        lookup = self.index.lookup_fn()
        filters = self.inner_filters
        only_filter = filters[0] if len(filters) == 1 else None
        flipped = self.flipped
        left_schema = self.inner.schema if flipped else self.outer.schema
        right_schema = self.outer.schema if flipped else self.inner.schema
        emit = _pair_emitter(self.output_positions, len(left_schema))
        residual = (
            compile_pair_expression(self.residual, left_schema, right_schema)
            if self.residual is not None
            else None
        )
        out: Batch = []
        append = out.append
        for batch in self.outer.batches(size):
            for orow in batch:
                if single:
                    k = orow[position]
                    if k is None:
                        continue
                else:
                    k = key(orow)
                    if None in k:
                        continue
                bucket = lookup(k)
                if not bucket:
                    continue
                if only_filter is not None:
                    if len(bucket) == 1:  # the typical tid-index case
                        if not only_filter(bucket[0]):
                            continue
                    else:
                        bucket = [irow for irow in bucket if only_filter(irow)]
                        if not bucket:
                            continue
                elif filters:
                    bucket = [
                        irow
                        for irow in bucket
                        if all(f(irow) for f in filters)
                    ]
                    if not bucket:
                        continue
                if flipped:
                    for irow in bucket:
                        if residual is None or residual(irow, orow):
                            append(emit(irow, orow))
                else:
                    for irow in bucket:
                        if residual is None or residual(orow, irow):
                            append(emit(orow, irow))
                if len(out) >= size:
                    yield out
                    out = []
                    append = out.append
        if out:
            yield out

    def _fused_probe(self):
        """-> (generated fused probe kernel, inner side NULL-free) or None."""
        if len(self.outer_positions) != 1:
            return None
        if self.inner_filter_exprs and len(self.inner_filter_schemas) != len(
            self.inner_filter_exprs
        ):
            return None  # filters came pre-compiled, schemas unknown
        outer_is_left = not self.flipped
        split = len(self.inner.schema) if self.flipped else len(self.outer.schema)
        positions = (
            self.output_positions
            if self.output_positions is not None
            else range(len(self._combined))
        )
        specs = []
        for p in positions:
            on_left = p < split
            local = p if on_left else p - split
            specs.append((on_left == outer_is_left, local))
        filter_specs = list(zip(self.inner_filter_exprs, self.inner_filter_schemas))
        mixed = isinstance(self.index, HashIndex)
        kernel = probe_kernel(
            self._combined,
            split,
            outer_is_left,
            self.outer_positions[0],
            self.residual,
            filter_specs,
            specs,
            mixed=mixed,
        )
        if kernel is None:
            return None
        # every column the conditions reference must be provably NULL-free
        # for the kernel's guard-free body: inner refs consult the indexed
        # base relation's cached nullability, outer refs the plan tree
        inner_refs: set = set()
        outer_refs: set = set()
        for expr, schema in filter_specs:
            for name in expr.columns():
                inner_refs.add(schema.resolve(name))
        if self.residual is not None:
            for name in self.residual.columns():
                p = self._combined.resolve(name)
                on_left = p < split
                local = p if on_left else p - split
                if on_left == outer_is_left:
                    outer_refs.add(local)
                else:
                    inner_refs.add(local)
        relation = self.index.relation
        fast = not any(
            relation.column_has_null(q) for q in inner_refs
        ) and not any(self.outer.column_nullable(q) for q in outer_refs)
        lookup = (
            self.index.mixed_table().get if mixed else self.index.lookup_fn()
        )
        return kernel, lookup, fast

    def _column_batches(self, size: int) -> Iterator[ColumnBatch]:
        """Columnar probe loop: the outer input arrives as column vectors
        (only its key columns are read per row), and output columns are
        gathered from the outer vectors and the probed index rows.

        Single-column keys run the fully fused generated kernel — lookup,
        inlined filters and residual, and direct column emit in one loop."""
        fused = self._fused_probe()
        if fused is not None:
            kernel, lookup, fast = fused
            for cb in self.outer.column_batches(size):
                out_cols, count = kernel(lookup, cb.columns, fast)
                if count:
                    yield ColumnBatch(list(out_cols), count)
            return
        single = len(self.outer_positions) == 1
        lookup = self.index.lookup_fn()
        filters = self.inner_filters
        only_filter = filters[0] if len(filters) == 1 else None
        flipped = self.flipped
        outer_width = len(self.outer.schema)
        split = len(self.inner.schema) if flipped else outer_width
        outer_is_left = not flipped
        positions = (
            self.output_positions
            if self.output_positions is not None
            else range(len(self._combined))
        )
        specs = []  # (from_outer_vectors, side-local position)
        for p in positions:
            on_left = p < split
            local = p if on_left else p - split
            specs.append((on_left == outer_is_left, local))
        residual_kernel = (
            side_kernel(
                self.residual,
                self._combined,
                split,
                "left" if outer_is_left else "right",
            )
            if self.residual is not None
            else None
        )
        for cb in self.outer.column_batches(size):
            ocols = cb.columns
            n = cb.length
            oidx: List[int] = []
            irows: List[Row] = []
            add_i = oidx.append
            add_r = irows.append
            if single:
                # the index lookup runs at C speed over the key vector:
                # ``map(lookup, kcol)`` — NULL keys and misses both come
                # back falsy, so the Python-level loop only touches hits
                kcol = ocols[self.outer_positions[0]]
                for i, bucket in enumerate(map(lookup, kcol)):
                    if not bucket:
                        continue
                    if only_filter is not None:
                        if len(bucket) == 1:
                            irow = bucket[0]
                            if only_filter(irow):
                                add_i(i)
                                add_r(irow)
                            continue
                        bucket = [r for r in bucket if only_filter(r)]
                    elif filters:
                        bucket = [r for r in bucket if all(f(r) for f in filters)]
                    for irow in bucket:
                        add_i(i)
                        add_r(irow)
            else:
                kcols = [ocols[p] for p in self.outer_positions]
                for i in range(n):
                    k = tuple(c[i] for c in kcols)
                    if None in k:
                        continue
                    bucket = lookup(k)
                    if not bucket:
                        continue
                    if filters:
                        bucket = [r for r in bucket if all(f(r) for f in filters)]
                    for irow in bucket:
                        add_i(i)
                        add_r(irow)
            if not oidx:
                continue
            if residual_kernel is not None:
                keep = residual_kernel(ocols, oidx, irows, len(oidx))
                if not keep:
                    continue
                oidx = [oidx[j] for j in keep]
                irows = [irows[j] for j in keep]
            out_cols: List[List[Any]] = []
            for from_outer, local in specs:
                if from_outer:
                    column = ocols[local]
                    out_cols.append([column[i] for i in oidx])
                else:
                    out_cols.append([r[local] for r in irows])
            yield ColumnBatch(out_cols, len(oidx))

    def column_nullable(self, position: int) -> bool:
        if self.output_positions is not None:
            position = self.output_positions[position]
        split = len(self.inner.schema) if self.flipped else len(self.outer.schema)
        on_left = position < split
        local = position if on_left else position - split
        if on_left == (not self.flipped):
            return self.outer.column_nullable(local)
        return self.index.relation.column_has_null(local)

    def explain_label(self) -> str:
        return "Index Nested Loop Join"

    def explain_details(self) -> List[str]:
        cond = " AND ".join(f"({i} = {o})" for o, i in self.pairs)
        details = [f"Index Cond: {cond}"]
        if self.inner_filter_exprs:
            shown = " AND ".join(repr(e) for e in self.inner_filter_exprs)
            details.append(f"Probe Filter: {shown}")
        if self.residual is not None:
            details.append(f"Join Filter: {self.residual!r}")
        if self.output_positions is not None:
            details.append(f"Output: {', '.join(self.schema.names)}")
        return details


class SemiJoinOp(PhysicalPlan):
    """Left semijoin: keeps left rows with at least one right partner.

    When the predicate contains equi-pairs (the α tuple-id condition of the
    reduction program always does), the right side is hashed on them and
    only the matching bucket is scanned for the residual (ψ) check;
    otherwise the operator degrades to a nested loop.
    """

    def __init__(self, left: PhysicalPlan, right: PhysicalPlan, predicate: Expression):
        from .expressions import conjunction, equijoin_pairs

        self.left = left
        self.right = Materialize(right)
        self.predicate = predicate
        self.schema = left.schema
        self.pairs, residual_list = equijoin_pairs(
            predicate, left.schema, right.schema
        )
        self.residual = conjunction(residual_list) if residual_list else None
        combined = left.schema.concat(right.schema)
        self._bound_residual = (
            self.residual.bind(combined) if self.residual is not None else None
        )
        self._compiled_residual = (
            self.residual.compile(combined) if self.residual is not None else None
        )
        self._bound_full = predicate.bind(combined)
        self._compiled_full = predicate.compile(combined)
        self.left_positions = [left.schema.resolve(l) for l, _ in self.pairs]
        self.right_positions = [right.schema.resolve(r) for _, r in self.pairs]
        self.estimated_rows = left.estimated_rows

    @property
    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.left, self.right)

    def rows(self) -> Iterator[Row]:
        if self.pairs:
            yield from self._hash_rows()
        else:
            yield from self._loop_rows()

    def _hash_rows(self) -> Iterator[Row]:
        table: Dict[Tuple[Any, ...], List[Row]] = {}
        right_positions = self.right_positions
        for rrow in self.right.rows():
            key = tuple(rrow[i] for i in right_positions)
            if any(v is None for v in key):
                continue
            table.setdefault(key, []).append(rrow)
        left_positions = self.left_positions
        residual = self._bound_residual
        for lrow in self.left.rows():
            key = tuple(lrow[i] for i in left_positions)
            if any(v is None for v in key):
                continue
            bucket = table.get(key)
            if not bucket:
                continue
            if residual is None:
                yield lrow
                continue
            for rrow in bucket:
                if residual(lrow + rrow):
                    yield lrow
                    break

    def _loop_rows(self) -> Iterator[Row]:
        bound = self._bound_full
        for lrow in self.left.rows():
            for rrow in self.right.rows():
                if bound(lrow + rrow):
                    yield lrow
                    break

    def _batches(self, size: int) -> Iterator[Batch]:
        if self.pairs:
            yield from self._hash_batches(size)
        else:
            yield from self._loop_batches(size)

    def _hash_batches(self, size: int) -> Iterator[Batch]:
        single = len(self.pairs) == 1
        rkey = _keyer(self.right_positions)
        table: Dict[Any, List[Row]] = {}
        setdefault = table.setdefault
        for batch in self.right.batches(size):
            for rrow in batch:
                key = rkey(rrow)
                if _key_is_null(key, single):
                    continue
                setdefault(key, []).append(rrow)
        lkey = _keyer(self.left_positions)
        residual = self._compiled_residual
        get = table.get
        for batch in self.left.batches(size):
            out: Batch = []
            for lrow in batch:
                key = lkey(lrow)
                if _key_is_null(key, single):
                    continue
                bucket = get(key)
                if not bucket:
                    continue
                if residual is None:
                    out.append(lrow)
                    continue
                for rrow in bucket:
                    if residual(lrow + rrow):
                        out.append(lrow)
                        break
            if out:
                yield out

    def _loop_batches(self, size: int) -> Iterator[Batch]:
        bound = self._compiled_full
        right_rows = _drain(self.right, size)
        for batch in self.left.batches(size):
            out: Batch = []
            for lrow in batch:
                for rrow in right_rows:
                    if bound(lrow + rrow):
                        out.append(lrow)
                        break
            if out:
                yield out

    def explain_label(self) -> str:
        return "Hash Semi Join" if self.pairs else "Semi Join"

    def explain_details(self) -> List[str]:
        details = []
        if self.pairs:
            cond = " AND ".join(f"({l} = {r})" for l, r in self.pairs)
            details.append(f"Hash Cond: {cond}")
        if self.residual is not None or not self.pairs:
            details.append(f"Join Filter: {(self.residual or self.predicate)!r}")
        return details


class Sort(PhysicalPlan):
    """Full sort of the child output by the given key columns."""

    def __init__(self, child: PhysicalPlan, keys: Sequence[str]):
        self.child = child
        self.keys = list(keys)
        self.positions = child.schema.positions(self.keys)
        self.schema = child.schema
        self.estimated_rows = child.estimated_rows

    @property
    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.child,)

    def _key(self) -> Callable[[Row], Any]:
        positions = self.positions

        def key(row: Row):
            return _sort_key(tuple(row[i] for i in positions))

        return key

    def rows(self) -> Iterator[Row]:
        return iter(sorted(self.child.rows(), key=self._key()))

    def _batches(self, size: int) -> Iterator[Batch]:
        gathered = _drain(self.child, size)
        gathered.sort(key=self._key())
        return _chunks(gathered, size)

    def _column_batches(self, size: int) -> Iterator[ColumnBatch]:
        gathered: List[Row] = []
        for batch in self.child.column_batches(size):
            gathered.extend(batch.to_rows())
        gathered.sort(key=self._key())
        width = len(self.schema)
        for chunk in _chunks(gathered, size):
            yield ColumnBatch.from_rows(chunk, width)

    def column_nullable(self, position: int) -> bool:
        return self.child.column_nullable(position)

    def explain_label(self) -> str:
        return "Sort"

    def explain_details(self) -> List[str]:
        return [f"Sort Key: {', '.join(self.keys)}"]


class MergeJoin(PhysicalPlan):
    """Sort-merge equi-join (inputs are sorted internally).

    Kept primarily for plan-shape parity with the PostgreSQL plans shown in
    the paper (Figure 13 uses merge joins on tuple-id columns).

    When *both* inputs are bare base scans (through renames) whose
    relations carry an already-built
    :class:`~repro.relational.index.SortedIndex` on exactly the join
    columns, the join consumes ``SortedIndex.ordered()`` directly — no
    per-execution drain-and-sort, and the per-row ``_sort_key`` wrappers
    are computed once per index lifetime (cached) instead of per
    execution.  NULL-keyed rows are absent from sorted indexes, which is
    exactly the rows a merge join skips anyway; mixed-type key columns
    (whose raw order differs from ``_sort_key`` order) fall back to the
    sorting path, so answers never depend on whether an index exists.
    """

    def __init__(
        self,
        left: PhysicalPlan,
        right: PhysicalPlan,
        pairs: Sequence[Tuple[str, str]],
        residual: Optional[Expression] = None,
    ):
        if not pairs:
            raise ValueError("MergeJoin requires at least one equi-pair")
        self.left = Sort(left, [l for l, _ in pairs])
        self.right = Sort(right, [r for _, r in pairs])
        self.pairs = list(pairs)
        self.residual = residual
        self._combined = left.schema.concat(right.schema)
        self.schema = self._combined
        #: Folded downstream projection, set via :meth:`set_output`.
        self.output_positions: Optional[List[int]] = None
        self.left_positions = [left.schema.resolve(l) for l, _ in pairs]
        self.right_positions = [right.schema.resolve(r) for _, r in pairs]
        self._bound_residual = residual.bind(self._combined) if residual is not None else None
        self._compiled_residual = (
            residual.compile(self._combined) if residual is not None else None
        )
        self.estimated_rows = max(left.estimated_rows, right.estimated_rows)

    def set_output(self, positions: Sequence[int], schema: Schema) -> None:
        """Fold a downstream projection into the join's emit (fusion)."""
        self.output_positions = list(positions)
        self.schema = schema

    @property
    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.left, self.right)

    def rows(self) -> Iterator[Row]:
        left_rows = list(self.left.rows())
        right_rows = list(self.right.rows())
        lpos, rpos = self.left_positions, self.right_positions
        residual = self._bound_residual
        project = (
            _projector(self.output_positions)
            if self.output_positions is not None
            else None
        )

        def lkey(row: Row):
            return _sort_key(tuple(row[i] for i in lpos))

        def rkey(row: Row):
            return _sort_key(tuple(row[i] for i in rpos))

        i = j = 0
        n, m = len(left_rows), len(right_rows)
        while i < n and j < m:
            lk, rk = lkey(left_rows[i]), rkey(right_rows[j])
            if lk < rk:
                i += 1
            elif lk > rk:
                j += 1
            else:
                # gather the equal-key groups on both sides
                i2 = i
                while i2 < n and lkey(left_rows[i2]) == lk:
                    i2 += 1
                j2 = j
                while j2 < m and rkey(right_rows[j2]) == rk:
                    j2 += 1
                if not any(
                    v is None for v in (left_rows[i][p] for p in lpos)
                ):  # NULL keys never join
                    for lrow in left_rows[i:i2]:
                        for rrow in right_rows[j:j2]:
                            out = lrow + rrow
                            if residual is None or residual(out):
                                yield out if project is None else project(out)
                i, j = i2, j2

    def _presorted_input(self, sort_op: "Sort") -> Optional[SortedIndex]:
        """A SortedIndex serving one input's order, or None.

        The input must be a base scan (through pass-through renames only)
        whose relation has an already-*built* sorted index on exactly the
        sort columns — this execution-time peek never triggers deferred
        index builds (lazy auto-indexing would otherwise pay for every
        pending index just because a merge join looked).
        """
        node = sort_op.child
        while node.row_passthrough:
            node = node.children[0]
        if not isinstance(node, SeqScan):
            return None
        wanted = tuple(sort_op.positions)
        for index in built_indexes_on(node.relation):
            if isinstance(index, SortedIndex) and index.positions == wanted:
                return index
        return None

    @staticmethod
    def _monotone_sortkeys(index: SortedIndex) -> Optional[List[Tuple]]:
        """The index keys wrapped as ``_sort_key`` tuples, or None.

        Merge comparisons must use the same type-tagged total order as the
        sorting path (raw keys would let ``1`` meet ``1.0``, which
        ``_sort_key`` keeps apart — answers must not depend on whether an
        index exists).  The wrapping is only usable when the index's raw
        order is also monotone under ``_sort_key`` (false for mixed-type
        columns); the result — or the rejection — is cached on the index,
        so repeated executions pay nothing.
        """
        cached = getattr(index, "_sortkey_keys", None)
        if cached is None:
            if index._single:
                wrapped = [_sort_key((k,)) for k in index._keys]
            else:
                wrapped = [_sort_key(tuple(k)) for k in index._keys]
            monotone = all(
                wrapped[i] <= wrapped[i + 1] for i in range(len(wrapped) - 1)
            )
            cached = wrapped if monotone else False
            index._sortkey_keys = cached
        return cached if cached is not False else None

    def _merge_presorted(
        self,
        left_index: SortedIndex,
        lkeys: List[Tuple],
        right_index: SortedIndex,
        rkeys: List[Tuple],
        size: int,
    ) -> Iterator[Batch]:
        """Merge directly over both indexes' ordered rows, streaming."""
        left_rows = left_index.ordered()
        right_rows = right_index.ordered()
        residual = self._compiled_residual
        project = (
            _projector(self.output_positions)
            if self.output_positions is not None
            else None
        )
        out: Batch = []
        i = j = 0
        n, m = len(left_rows), len(right_rows)
        while i < n and j < m:
            lk, rk = lkeys[i], rkeys[j]
            if lk < rk:
                i += 1
            elif lk > rk:
                j += 1
            else:
                i2 = i
                while i2 < n and lkeys[i2] == lk:
                    i2 += 1
                j2 = j
                while j2 < m and rkeys[j2] == rk:
                    j2 += 1
                right_group = right_rows[j:j2]
                for lrow in left_rows[i:i2]:
                    for rrow in right_group:
                        joined = lrow + rrow
                        if residual is None or residual(joined):
                            out.append(joined if project is None else project(joined))
                    if len(out) >= size:
                        yield out
                        out = []
                i, j = i2, j2
        if out:
            yield out

    def _batches(self, size: int) -> Iterator[Batch]:
        left_index = self._presorted_input(self.left)
        if left_index is not None:
            right_index = self._presorted_input(self.right)
            if right_index is not None:
                lkeys = self._monotone_sortkeys(left_index)
                rkeys = self._monotone_sortkeys(right_index)
                if lkeys is not None and rkeys is not None:
                    yield from self._merge_presorted(
                        left_index, lkeys, right_index, rkeys, size
                    )
                    return
        left_rows = _drain(self.left, size)
        right_rows = _drain(self.right, size)
        lpos, rpos = self.left_positions, self.right_positions
        lproject = _projector(lpos)
        rproject = _projector(rpos)
        # precompute sort keys once per row (the rows() path recomputes them
        # on every group-boundary probe)
        lkeys = [_sort_key(lproject(row)) for row in left_rows]
        rkeys = [_sort_key(rproject(row)) for row in right_rows]
        residual = self._compiled_residual
        project = (
            _projector(self.output_positions)
            if self.output_positions is not None
            else None
        )

        out: Batch = []
        i = j = 0
        n, m = len(left_rows), len(right_rows)
        while i < n and j < m:
            lk, rk = lkeys[i], rkeys[j]
            if lk < rk:
                i += 1
            elif lk > rk:
                j += 1
            else:
                i2 = i
                while i2 < n and lkeys[i2] == lk:
                    i2 += 1
                j2 = j
                while j2 < m and rkeys[j2] == rk:
                    j2 += 1
                if not any(v is None for v in lproject(left_rows[i])):
                    right_group = right_rows[j:j2]
                    for lrow in left_rows[i:i2]:
                        if residual is None and project is None:
                            out.extend(lrow + rrow for rrow in right_group)
                        else:
                            for rrow in right_group:
                                joined = lrow + rrow
                                if residual is None or residual(joined):
                                    out.append(
                                        joined if project is None else project(joined)
                                    )
                        if len(out) >= size:
                            yield out
                            out = []
                i, j = i2, j2
        if out:
            yield out

    def column_nullable(self, position: int) -> bool:
        if self.output_positions is not None:
            position = self.output_positions[position]
        split = len(self.left.schema)
        if position < split:
            return self.left.column_nullable(position)
        return self.right.column_nullable(position - split)

    def explain_label(self) -> str:
        return "Merge Join"

    def explain_details(self) -> List[str]:
        cond = " AND ".join(f"({l} = {r})" for l, r in self.pairs)
        details = [f"Merge Cond: {cond}"]
        if self.residual is not None:
            details.append(f"Join Filter: {self.residual!r}")
        if self.output_positions is not None:
            details.append(f"Output: {', '.join(self.schema.names)}")
        return details


class Materialize(PhysicalPlan):
    """Materializes (and caches) the child output for repeated scans."""

    def __init__(self, child: PhysicalPlan):
        self.child = child
        self.schema = child.schema
        self.estimated_rows = child.estimated_rows
        self._cache: Optional[List[Row]] = None

    @property
    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.child,)

    def _materialized(self, size: int = BATCH_SIZE) -> List[Row]:
        if self._cache is None:
            self._cache = _drain(self.child, size)
        return self._cache

    def rows(self) -> Iterator[Row]:
        if self._cache is None:
            self._cache = list(self.child.rows())
        return iter(self._cache)

    def _batches(self, size: int) -> Iterator[Batch]:
        return _chunks(self._materialized(size), size)

    def column_nullable(self, position: int) -> bool:
        return self.child.column_nullable(position)

    def explain_label(self) -> str:
        return "Materialize"


class NestedLoopJoin(PhysicalPlan):
    """Nested-loop join with an arbitrary predicate (or cross product)."""

    def __init__(
        self,
        left: PhysicalPlan,
        right: PhysicalPlan,
        predicate: Optional[Expression] = None,
    ):
        self.left = left
        self.right = Materialize(right)
        self.predicate = predicate
        self.schema = left.schema.concat(right.schema)
        self._bound = predicate.bind(self.schema) if predicate is not None else None
        self._compiled = predicate.compile(self.schema) if predicate is not None else None
        self.estimated_rows = left.estimated_rows * max(right.estimated_rows, 1.0)

    @property
    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.left, self.right)

    def rows(self) -> Iterator[Row]:
        bound = self._bound
        for lrow in self.left.rows():
            for rrow in self.right.rows():
                out = lrow + rrow
                if bound is None or bound(out):
                    yield out

    def _batches(self, size: int) -> Iterator[Batch]:
        predicate = self._compiled
        right_rows = _drain(self.right, size)
        out: Batch = []
        for batch in self.left.batches(size):
            for lrow in batch:
                if predicate is None:
                    out.extend(lrow + rrow for rrow in right_rows)
                else:
                    for rrow in right_rows:
                        joined = lrow + rrow
                        if predicate(joined):
                            out.append(joined)
                if len(out) >= size:
                    yield out
                    out = []
        if out:
            yield out

    def explain_label(self) -> str:
        return "Nested Loop"

    def explain_details(self) -> List[str]:
        if self.predicate is not None:
            return [f"Join Filter: {self.predicate!r}"]
        return []


class HashDistinct(PhysicalPlan):
    """Duplicate elimination preserving first-seen order."""

    def __init__(self, child: PhysicalPlan):
        self.child = child
        self.schema = child.schema
        self.estimated_rows = child.estimated_rows

    @property
    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.child,)

    def rows(self) -> Iterator[Row]:
        seen = set()
        for row in self.child.rows():
            if row not in seen:
                seen.add(row)
                yield row

    def _batches(self, size: int) -> Iterator[Batch]:
        seen: set = set()
        add = seen.add
        for batch in self.child.batches(size):
            fresh = [row for row in batch if not (row in seen or add(row))]
            if fresh:
                yield fresh

    def _column_batches(self, size: int) -> Iterator[ColumnBatch]:
        # dedup needs row identity: transpose at the boundary (C-speed zip),
        # keeping the child pipeline columnar
        width = len(self.schema)
        seen: set = set()
        add = seen.add
        for batch in self.child.column_batches(size):
            fresh = [
                row for row in batch.to_rows() if not (row in seen or add(row))
            ]
            if fresh:
                yield ColumnBatch.from_rows(fresh, width)

    def column_nullable(self, position: int) -> bool:
        return self.child.column_nullable(position)

    def explain_label(self) -> str:
        return "HashAggregate"

    def explain_details(self) -> List[str]:
        return ["Group Key: all output columns (distinct)"]


class Append(PhysicalPlan):
    """Bag union of two inputs (schema from the left)."""

    def __init__(self, left: PhysicalPlan, right: PhysicalPlan):
        self.left = left
        self.right = right
        self.schema = left.schema
        self.estimated_rows = left.estimated_rows + right.estimated_rows

    @property
    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.left, self.right)

    def rows(self) -> Iterator[Row]:
        for row in self.left.rows():
            yield row
        for row in self.right.rows():
            yield row

    def _batches(self, size: int) -> Iterator[Batch]:
        yield from self.left.batches(size)
        yield from self.right.batches(size)

    def _column_batches(self, size: int) -> Iterator[ColumnBatch]:
        yield from self.left.column_batches(size)
        yield from self.right.column_batches(size)

    def column_nullable(self, position: int) -> bool:
        return self.left.column_nullable(position) or self.right.column_nullable(position)

    def explain_label(self) -> str:
        return "Append"


class Except(PhysicalPlan):
    """Set difference left − right (distinct output)."""

    def __init__(self, left: PhysicalPlan, right: PhysicalPlan):
        self.left = left
        self.right = right
        self.schema = left.schema
        self.estimated_rows = left.estimated_rows

    @property
    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.left, self.right)

    def rows(self) -> Iterator[Row]:
        gone = set(self.right.rows())
        seen = set()
        for row in self.left.rows():
            if row not in gone and row not in seen:
                seen.add(row)
                yield row

    def _batches(self, size: int) -> Iterator[Batch]:
        gone: set = set()
        for batch in self.right.batches(size):
            gone.update(batch)
        add = gone.add  # emitted rows join `gone`, deduplicating the output
        for batch in self.left.batches(size):
            fresh = [row for row in batch if not (row in gone or add(row))]
            if fresh:
                yield fresh

    def column_nullable(self, position: int) -> bool:
        return self.left.column_nullable(position)

    def explain_label(self) -> str:
        return "SetOp Except"


class Confidence(PhysicalPlan):
    """Per-value-tuple confidence over a translated U-relation input.

    The child produces rows in the canonical U-relation column order:
    ``d_width`` ws-descriptor pairs, ``tid_count`` tuple-id columns, then
    the value columns.  The operator groups rows by value tuple
    batch-at-a-time (columnar batches are grouped natively, without
    materializing a :class:`~repro.core.urelation.URelation` or even row
    tuples beyond the group keys), deduplicates encoded descriptor
    prefixes per group, and computes each group's confidence — the
    probability of the union of its descriptors' world-sets — through the
    world table's shared memoized
    :class:`~repro.core.probability.ConfidenceEngine`.

    ``method`` selects exact enumeration, the bounded-error ``(epsilon,
    delta)`` sampler, or per-component auto selection; the method actually
    used, group counts, and error budget are recorded in ``last_summary``
    (the serving layer returns it as the ``conf`` wire field) and in the
    ``conf_groups_total`` / ``conf_method`` / ``conf_seconds`` metrics.

    Output rows are ``value columns + conf``, sorted by descending
    confidence (ties by value repr), matching
    :func:`~repro.core.probability.confidence_relation`.
    """

    def __init__(
        self,
        child: PhysicalPlan,
        d_width: int,
        tid_count: int,
        value_names: Sequence[str],
        world_table,
        method: str = "auto",
        epsilon: float = 0.01,
        delta: float = 0.05,
        seed: int = 0,
    ):
        self.child = child
        self.d_width = int(d_width)
        self.tid_count = int(tid_count)
        self.value_names = list(value_names)
        self.world_table = world_table
        self.method = method
        self.epsilon = float(epsilon)
        self.delta = float(delta)
        self.seed = int(seed)
        self.schema = Schema(self.value_names + ["conf"])
        # distinct value tuples are a fraction of the input U-relation rows
        self.estimated_rows = max(child.estimated_rows * 0.5, 1.0)
        #: encoded descriptor prefix -> Descriptor, shared across executions
        #: of this (plan-cached) operator
        self._decode_cache: Dict[Tuple[Any, ...], Any] = {}
        #: summary of the most recent execution (wire/trace metadata)
        self.last_summary: Optional[Dict[str, Any]] = None

    @property
    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.child,)

    # -- grouping ------------------------------------------------------
    def _grouped_rows(self, size: int) -> Dict[Row, set]:
        """values tuple -> set of encoded descriptor prefixes (row path)."""
        dend = 2 * self.d_width
        vstart = dend + self.tid_count
        groups: Dict[Row, set] = {}
        for batch in self.child.batches(size):
            for row in batch:
                group = groups.get(row[vstart:])
                if group is None:
                    groups[row[vstart:]] = {row[:dend]}
                else:
                    group.add(row[:dend])
        return groups

    def _grouped_columns(self, size: int) -> Dict[Row, set]:
        """Native columnar grouping: zip only the needed column slices."""
        dend = 2 * self.d_width
        vstart = dend + self.tid_count
        groups: Dict[Row, set] = {}
        for batch in self.child.column_batches(size):
            columns = batch.columns
            if vstart < len(columns):
                values_iter = zip(*columns[vstart:])
            else:
                values_iter = (() for _ in range(batch.length))
            if dend:
                descs_iter = zip(*columns[:dend])
            else:
                descs_iter = (() for _ in range(batch.length))
            for values, enc in zip(values_iter, descs_iter):
                group = groups.get(values)
                if group is None:
                    groups[values] = {enc}
                else:
                    group.add(enc)
        return groups

    # -- confidence computation ----------------------------------------
    def _compute(self, groups: Dict[Row, set]) -> List[Row]:
        import time

        from ..core.descriptor import decode_descriptor
        from ..core.probability import confidence_engine
        from ..obs import counter, histogram

        started = time.perf_counter()
        engine = confidence_engine(self.world_table)
        decode = self._decode_cache
        exact = approx = 0
        out: List[Row] = []
        for values, encs in groups.items():
            descriptors = []
            for enc in encs:
                descriptor = decode.get(enc)
                if descriptor is None:
                    descriptor = decode_descriptor(enc)
                    decode[enc] = descriptor
                descriptors.append(descriptor)
            conf, used = engine.confidence_detail(
                descriptors, self.method, self.epsilon, self.delta, self.seed
            )
            if used == "approx":
                approx += 1
            else:
                exact += 1
            out.append(values + (conf,))
        out.sort(key=lambda row: (-row[-1], tuple(map(repr, row[:-1]))))
        elapsed = time.perf_counter() - started
        counter("conf_groups_total", "Value groups confidence-computed").inc(
            len(groups)
        )
        method_counter = counter(
            "conf_method", "Confidence computations by method actually used"
        )
        if exact:
            method_counter.inc(exact, method="exact")
        if approx:
            method_counter.inc(approx, method="approx")
        histogram("conf_seconds", "Confidence kernel wall time").observe(elapsed)
        self.last_summary = {
            "method": self.method,
            "epsilon": self.epsilon,
            "delta": self.delta,
            "seed": self.seed,
            "groups": len(groups),
            "exact_groups": exact,
            "approx_groups": approx,
            "seconds": elapsed,
        }
        return out

    # -- execution modes -----------------------------------------------
    def rows(self) -> Iterator[Row]:
        yield from self._compute(self._grouped_rows(BATCH_SIZE))

    def _batches(self, size: int) -> Iterator[Batch]:
        yield from _chunks(self._compute(self._grouped_rows(size)), size)

    def _column_batches(self, size: int) -> Iterator[ColumnBatch]:
        width = len(self.schema)
        for batch in _chunks(self._compute(self._grouped_columns(size)), size):
            yield ColumnBatch.from_rows(batch, width)

    def column_nullable(self, position: int) -> bool:
        if position == len(self.schema) - 1:
            return False  # conf is always a float
        return self.child.column_nullable(2 * self.d_width + self.tid_count + position)

    def explain_label(self) -> str:
        return "Confidence"

    def explain_details(self) -> List[str]:
        details = [
            f"Group Key: {', '.join(self.value_names) or '(none)'}",
            f"Method: {self.method}",
        ]
        if self.method != "exact":
            details.append(
                f"Error Budget: epsilon={self.epsilon}, delta={self.delta}, "
                f"seed={self.seed}"
            )
        return details


def execute(
    plan: PhysicalPlan, mode: str = "columns", batch_size: int = BATCH_SIZE
) -> Relation:
    """Run a physical plan to completion and materialize the result.

    ``mode="columns"`` (the default) runs the columnar executor,
    ``mode="blocks"`` the row-batch vectorized path, and ``mode="rows"``
    the legacy tuple-at-a-time iterators.  All three produce identical
    relations.
    """
    if mode == "rows":
        return Relation(plan.schema, plan.rows())
    if mode == "blocks":
        return Relation.from_trusted(plan.schema, _drain(plan, batch_size))
    if mode != "columns":
        raise ValueError(
            f"unknown execution mode {mode!r} (use 'rows', 'blocks', or 'columns')"
        )
    rows: List[Row] = []
    extend = rows.extend
    for batch in plan.column_batches(batch_size):
        extend(batch.to_rows())
    return Relation.from_trusted(plan.schema, rows)
