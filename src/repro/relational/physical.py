"""Physical operators and plan execution.

Physical plans mirror the logical nodes but carry concrete algorithms:

* ``SeqScan``        — iterate a base relation
* ``Filter``         — predicate filter
* ``Projection``     — positional projection
* ``HashJoin``       — build/probe equi-join with residual filter
* ``MergeJoin``      — sort-merge equi-join with residual filter
* ``NestedLoopJoin`` — general-predicate join (also cross product)
* ``HashDistinct``   — duplicate elimination
* ``Append``         — bag union
* ``Except``         — set difference
* ``Sort``           — explicit sort (used under MergeJoin)
* ``Materialize``    — caches child output (inner of nested loops)

Each operator implements ``rows()`` returning an iterator of tuples and
``schema``.  ``execute`` materializes a physical plan into a
:class:`~repro.relational.relation.Relation`.  Operators also expose
``explain_label`` and estimated cardinality for EXPLAIN output.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from .expressions import Expression
from .relation import Relation, _sort_key
from .schema import Schema

__all__ = [
    "PhysicalPlan",
    "SeqScan",
    "Filter",
    "Projection",
    "ProjectionAs",
    "ExtendOp",
    "HashJoin",
    "MergeJoin",
    "NestedLoopJoin",
    "SemiJoinOp",
    "HashDistinct",
    "Append",
    "Except",
    "Sort",
    "Materialize",
    "execute",
]

Row = Tuple[Any, ...]


class PhysicalPlan:
    """Base class for physical operators."""

    schema: Schema
    estimated_rows: float = 0.0

    @property
    def children(self) -> Tuple["PhysicalPlan", ...]:
        return ()

    def rows(self) -> Iterator[Row]:
        raise NotImplementedError

    def explain_label(self) -> str:
        return type(self).__name__

    def explain_details(self) -> List[str]:
        """Extra indented lines under the node header in EXPLAIN output."""
        return []


class SeqScan(PhysicalPlan):
    """Sequential scan over a materialized base relation."""

    def __init__(self, relation: Relation, name: str = "relation", alias: Optional[str] = None):
        self.relation = relation
        self.name = name
        self.alias = alias
        self.schema = relation.schema.qualify(alias) if alias else relation.schema
        self.estimated_rows = float(len(relation))

    def rows(self) -> Iterator[Row]:
        return iter(self.relation.rows)

    def explain_label(self) -> str:
        if self.alias:
            return f"Seq Scan on {self.name} {self.alias}"
        return f"Seq Scan on {self.name}"


class Filter(PhysicalPlan):
    """Row filter by a bound predicate."""

    def __init__(self, child: PhysicalPlan, predicate: Expression):
        self.child = child
        self.predicate = predicate
        self._bound = predicate.bind(child.schema)
        self.schema = child.schema
        self.estimated_rows = child.estimated_rows

    @property
    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.child,)

    def rows(self) -> Iterator[Row]:
        bound = self._bound
        for row in self.child.rows():
            if bound(row):
                yield row

    def explain_label(self) -> str:
        return "Filter"

    def explain_details(self) -> List[str]:
        return [f"Filter: {self.predicate!r}"]


class Projection(PhysicalPlan):
    """Positional projection (bag semantics)."""

    def __init__(self, child: PhysicalPlan, columns: Sequence[str]):
        self.child = child
        self.columns = list(columns)
        self.positions = child.schema.positions(self.columns)
        self.schema = child.schema.project(self.columns)
        self.estimated_rows = child.estimated_rows

    @property
    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.child,)

    def rows(self) -> Iterator[Row]:
        positions = self.positions
        for row in self.child.rows():
            yield tuple(row[i] for i in positions)

    def explain_label(self) -> str:
        return "Project"

    def explain_details(self) -> List[str]:
        return [f"Output: {', '.join(self.columns)}"]


class ProjectionAs(PhysicalPlan):
    """Generalized projection with duplication and renaming."""

    def __init__(self, child: PhysicalPlan, items: Sequence[Tuple[str, str]]):
        self.child = child
        self.items = list(items)
        self.positions = [child.schema.resolve(ref) for ref, _ in self.items]
        attrs = []
        for (ref, new), pos in zip(self.items, self.positions):
            attrs.append(child.schema[pos].renamed(new))
        self.schema = Schema(attrs)
        self.estimated_rows = child.estimated_rows

    @property
    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.child,)

    def rows(self) -> Iterator[Row]:
        positions = self.positions
        for row in self.child.rows():
            yield tuple(row[i] for i in positions)

    def explain_label(self) -> str:
        return "Project"

    def explain_details(self) -> List[str]:
        return ["Output: " + ", ".join(f"{ref} AS {new}" for ref, new in self.items)]


class ExtendOp(PhysicalPlan):
    """Extended projection: pass-through plus computed columns."""

    def __init__(self, child: PhysicalPlan, items: Sequence[Tuple[str, Expression]]):
        self.child = child
        self.items = list(items)
        self._bound = [expr.bind(child.schema) for _, expr in self.items]
        attrs = list(child.schema.attributes)
        for name, _expr in self.items:
            attrs.append(child.schema.attributes[0].renamed(name))
        self.schema = Schema(attrs)
        self.estimated_rows = child.estimated_rows

    @property
    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.child,)

    def rows(self) -> Iterator[Row]:
        bound = self._bound
        for row in self.child.rows():
            yield row + tuple(fn(row) for fn in bound)

    def explain_label(self) -> str:
        return "Extend"

    def explain_details(self) -> List[str]:
        return ["Output: *, " + ", ".join(f"{expr!r} AS {name}" for name, expr in self.items)]


class HashJoin(PhysicalPlan):
    """Equi-join: hash-build on the right input, probe with the left.

    ``pairs`` is a list of ``(left_col, right_col)`` equalities; an optional
    ``residual`` predicate (over the concatenated schema) filters join
    candidates — this is where the U-relations ψ-condition typically lands.
    """

    def __init__(
        self,
        left: PhysicalPlan,
        right: PhysicalPlan,
        pairs: Sequence[Tuple[str, str]],
        residual: Optional[Expression] = None,
    ):
        if not pairs:
            raise ValueError("HashJoin requires at least one equi-pair")
        self.left = left
        self.right = right
        self.pairs = list(pairs)
        self.residual = residual
        self.schema = left.schema.concat(right.schema)
        self.left_positions = [left.schema.resolve(l) for l, _ in self.pairs]
        self.right_positions = [right.schema.resolve(r) for _, r in self.pairs]
        self._bound_residual = residual.bind(self.schema) if residual is not None else None
        self.estimated_rows = max(left.estimated_rows, right.estimated_rows)

    @property
    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.left, self.right)

    def rows(self) -> Iterator[Row]:
        table: Dict[Tuple[Any, ...], List[Row]] = {}
        right_positions = self.right_positions
        for row in self.right.rows():
            key = tuple(row[i] for i in right_positions)
            if any(v is None for v in key):
                continue  # NULLs never join
            table.setdefault(key, []).append(row)
        left_positions = self.left_positions
        residual = self._bound_residual
        for lrow in self.left.rows():
            key = tuple(lrow[i] for i in left_positions)
            if any(v is None for v in key):
                continue
            for rrow in table.get(key, ()):
                out = lrow + rrow
                if residual is None or residual(out):
                    yield out

    def explain_label(self) -> str:
        return "Hash Join"

    def explain_details(self) -> List[str]:
        cond = " AND ".join(f"({l} = {r})" for l, r in self.pairs)
        details = [f"Hash Cond: {cond}"]
        if self.residual is not None:
            details.append(f"Join Filter: {self.residual!r}")
        return details


class SemiJoinOp(PhysicalPlan):
    """Left semijoin: keeps left rows with at least one right partner.

    When the predicate contains equi-pairs (the α tuple-id condition of the
    reduction program always does), the right side is hashed on them and
    only the matching bucket is scanned for the residual (ψ) check;
    otherwise the operator degrades to a nested loop.
    """

    def __init__(self, left: PhysicalPlan, right: PhysicalPlan, predicate: Expression):
        from .expressions import conjunction, equijoin_pairs

        self.left = left
        self.right = Materialize(right)
        self.predicate = predicate
        self.schema = left.schema
        self.pairs, residual_list = equijoin_pairs(
            predicate, left.schema, right.schema
        )
        self.residual = conjunction(residual_list) if residual_list else None
        self._bound_residual = (
            self.residual.bind(left.schema.concat(right.schema))
            if self.residual is not None
            else None
        )
        self._bound_full = predicate.bind(left.schema.concat(right.schema))
        self.left_positions = [left.schema.resolve(l) for l, _ in self.pairs]
        self.right_positions = [right.schema.resolve(r) for _, r in self.pairs]
        self.estimated_rows = left.estimated_rows

    @property
    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.left, self.right)

    def rows(self) -> Iterator[Row]:
        if self.pairs:
            yield from self._hash_rows()
        else:
            yield from self._loop_rows()

    def _hash_rows(self) -> Iterator[Row]:
        table: Dict[Tuple[Any, ...], List[Row]] = {}
        right_positions = self.right_positions
        for rrow in self.right.rows():
            key = tuple(rrow[i] for i in right_positions)
            if any(v is None for v in key):
                continue
            table.setdefault(key, []).append(rrow)
        left_positions = self.left_positions
        residual = self._bound_residual
        for lrow in self.left.rows():
            key = tuple(lrow[i] for i in left_positions)
            if any(v is None for v in key):
                continue
            bucket = table.get(key)
            if not bucket:
                continue
            if residual is None:
                yield lrow
                continue
            for rrow in bucket:
                if residual(lrow + rrow):
                    yield lrow
                    break

    def _loop_rows(self) -> Iterator[Row]:
        bound = self._bound_full
        for lrow in self.left.rows():
            for rrow in self.right.rows():
                if bound(lrow + rrow):
                    yield lrow
                    break

    def explain_label(self) -> str:
        return "Hash Semi Join" if self.pairs else "Semi Join"

    def explain_details(self) -> List[str]:
        details = []
        if self.pairs:
            cond = " AND ".join(f"({l} = {r})" for l, r in self.pairs)
            details.append(f"Hash Cond: {cond}")
        if self.residual is not None or not self.pairs:
            details.append(f"Join Filter: {(self.residual or self.predicate)!r}")
        return details


class Sort(PhysicalPlan):
    """Full sort of the child output by the given key columns."""

    def __init__(self, child: PhysicalPlan, keys: Sequence[str]):
        self.child = child
        self.keys = list(keys)
        self.positions = child.schema.positions(self.keys)
        self.schema = child.schema
        self.estimated_rows = child.estimated_rows

    @property
    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.child,)

    def rows(self) -> Iterator[Row]:
        positions = self.positions

        def key(row: Row):
            return _sort_key(tuple(row[i] for i in positions))

        return iter(sorted(self.child.rows(), key=key))

    def explain_label(self) -> str:
        return "Sort"

    def explain_details(self) -> List[str]:
        return [f"Sort Key: {', '.join(self.keys)}"]


class MergeJoin(PhysicalPlan):
    """Sort-merge equi-join (inputs are sorted internally).

    Kept primarily for plan-shape parity with the PostgreSQL plans shown in
    the paper (Figure 13 uses merge joins on tuple-id columns).
    """

    def __init__(
        self,
        left: PhysicalPlan,
        right: PhysicalPlan,
        pairs: Sequence[Tuple[str, str]],
        residual: Optional[Expression] = None,
    ):
        if not pairs:
            raise ValueError("MergeJoin requires at least one equi-pair")
        self.left = Sort(left, [l for l, _ in pairs])
        self.right = Sort(right, [r for _, r in pairs])
        self.pairs = list(pairs)
        self.residual = residual
        self.schema = left.schema.concat(right.schema)
        self.left_positions = [left.schema.resolve(l) for l, _ in pairs]
        self.right_positions = [right.schema.resolve(r) for _, r in pairs]
        self._bound_residual = residual.bind(self.schema) if residual is not None else None
        self.estimated_rows = max(left.estimated_rows, right.estimated_rows)

    @property
    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.left, self.right)

    def rows(self) -> Iterator[Row]:
        left_rows = list(self.left.rows())
        right_rows = list(self.right.rows())
        lpos, rpos = self.left_positions, self.right_positions
        residual = self._bound_residual

        def lkey(row: Row):
            return _sort_key(tuple(row[i] for i in lpos))

        def rkey(row: Row):
            return _sort_key(tuple(row[i] for i in rpos))

        i = j = 0
        n, m = len(left_rows), len(right_rows)
        while i < n and j < m:
            lk, rk = lkey(left_rows[i]), rkey(right_rows[j])
            if lk < rk:
                i += 1
            elif lk > rk:
                j += 1
            else:
                # gather the equal-key groups on both sides
                i2 = i
                while i2 < n and lkey(left_rows[i2]) == lk:
                    i2 += 1
                j2 = j
                while j2 < m and rkey(right_rows[j2]) == rk:
                    j2 += 1
                if not any(
                    v is None for v in (left_rows[i][p] for p in lpos)
                ):  # NULL keys never join
                    for lrow in left_rows[i:i2]:
                        for rrow in right_rows[j:j2]:
                            out = lrow + rrow
                            if residual is None or residual(out):
                                yield out
                i, j = i2, j2

    def explain_label(self) -> str:
        return "Merge Join"

    def explain_details(self) -> List[str]:
        cond = " AND ".join(f"({l} = {r})" for l, r in self.pairs)
        details = [f"Merge Cond: {cond}"]
        if self.residual is not None:
            details.append(f"Join Filter: {self.residual!r}")
        return details


class Materialize(PhysicalPlan):
    """Materializes (and caches) the child output for repeated scans."""

    def __init__(self, child: PhysicalPlan):
        self.child = child
        self.schema = child.schema
        self.estimated_rows = child.estimated_rows
        self._cache: Optional[List[Row]] = None

    @property
    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.child,)

    def rows(self) -> Iterator[Row]:
        if self._cache is None:
            self._cache = list(self.child.rows())
        return iter(self._cache)

    def explain_label(self) -> str:
        return "Materialize"


class NestedLoopJoin(PhysicalPlan):
    """Nested-loop join with an arbitrary predicate (or cross product)."""

    def __init__(
        self,
        left: PhysicalPlan,
        right: PhysicalPlan,
        predicate: Optional[Expression] = None,
    ):
        self.left = left
        self.right = Materialize(right)
        self.predicate = predicate
        self.schema = left.schema.concat(right.schema)
        self._bound = predicate.bind(self.schema) if predicate is not None else None
        self.estimated_rows = left.estimated_rows * max(right.estimated_rows, 1.0)

    @property
    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.left, self.right)

    def rows(self) -> Iterator[Row]:
        bound = self._bound
        for lrow in self.left.rows():
            for rrow in self.right.rows():
                out = lrow + rrow
                if bound is None or bound(out):
                    yield out

    def explain_label(self) -> str:
        return "Nested Loop"

    def explain_details(self) -> List[str]:
        if self.predicate is not None:
            return [f"Join Filter: {self.predicate!r}"]
        return []


class HashDistinct(PhysicalPlan):
    """Duplicate elimination preserving first-seen order."""

    def __init__(self, child: PhysicalPlan):
        self.child = child
        self.schema = child.schema
        self.estimated_rows = child.estimated_rows

    @property
    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.child,)

    def rows(self) -> Iterator[Row]:
        seen = set()
        for row in self.child.rows():
            if row not in seen:
                seen.add(row)
                yield row

    def explain_label(self) -> str:
        return "HashAggregate"

    def explain_details(self) -> List[str]:
        return ["Group Key: all output columns (distinct)"]


class Append(PhysicalPlan):
    """Bag union of two inputs (schema from the left)."""

    def __init__(self, left: PhysicalPlan, right: PhysicalPlan):
        self.left = left
        self.right = right
        self.schema = left.schema
        self.estimated_rows = left.estimated_rows + right.estimated_rows

    @property
    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.left, self.right)

    def rows(self) -> Iterator[Row]:
        for row in self.left.rows():
            yield row
        for row in self.right.rows():
            yield row

    def explain_label(self) -> str:
        return "Append"


class Except(PhysicalPlan):
    """Set difference left − right (distinct output)."""

    def __init__(self, left: PhysicalPlan, right: PhysicalPlan):
        self.left = left
        self.right = right
        self.schema = left.schema
        self.estimated_rows = left.estimated_rows

    @property
    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.left, self.right)

    def rows(self) -> Iterator[Row]:
        gone = set(self.right.rows())
        seen = set()
        for row in self.left.rows():
            if row not in gone and row not in seen:
                seen.add(row)
                yield row

    def explain_label(self) -> str:
        return "SetOp Except"


def execute(plan: PhysicalPlan) -> Relation:
    """Run a physical plan to completion and materialize the result."""
    return Relation(plan.schema, plan.rows())
