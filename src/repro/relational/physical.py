"""Physical operators and plan execution (block-at-a-time, vectorized).

Physical plans mirror the logical nodes but carry concrete algorithms:

* ``SeqScan``        — iterate a base relation
* ``IndexScan``      — point/range access through a secondary index
* ``Filter``         — predicate filter
* ``Projection``     — positional projection
* ``HashJoin``       — build/probe equi-join with residual filter
* ``IndexNestedLoopJoin`` — probe a prebuilt inner-side index per outer row
* ``MergeJoin``      — sort-merge equi-join with residual filter
* ``NestedLoopJoin`` — general-predicate join (also cross product)
* ``HashDistinct``   — duplicate elimination
* ``Append``         — bag union
* ``Except``         — set difference
* ``Sort``           — explicit sort (used under MergeJoin)
* ``Materialize``    — caches child output (inner of nested loops)

Execution model
---------------
Operators exchange *batches* — plain Python lists of row tuples, at most
:data:`BATCH_SIZE` (1024) rows each — instead of one row at a time.  Every
operator implements ``_batches(size)`` returning an iterator of batches;
the inherited :meth:`PhysicalPlan.batches` wrapper additionally tracks the
``actual_rows`` / ``actual_batches`` counters that ``EXPLAIN ANALYZE``
reports.  Inside a batch the work is done by tight list comprehensions over
*compiled* expressions (:meth:`Expression.compile` collapses a predicate
tree into a single generated Python callable) and ``operator.itemgetter``
projections, so the per-row interpreter overhead of the old layered
iterator design — one closure call per AST node per row — disappears.

The legacy tuple-at-a-time path is retained: each operator still implements
``rows()`` exactly as before, and ``execute(plan, mode="rows")`` runs it.
``execute(plan)`` defaults to ``mode="blocks"``; the two modes produce
identical relations (a property test asserts this on randomized plans) and
the benchmarks report their head-to-head speedup.

Operators also expose ``explain_label`` and estimated cardinality for
EXPLAIN output.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from .expressions import Expression
from .index import Index, SortedIndex
from .relation import Relation, _sort_key
from .schema import Schema

__all__ = [
    "BATCH_SIZE",
    "Batch",
    "PhysicalPlan",
    "SeqScan",
    "IndexScan",
    "Filter",
    "Projection",
    "ProjectionAs",
    "ExtendOp",
    "HashJoin",
    "IndexNestedLoopJoin",
    "MergeJoin",
    "NestedLoopJoin",
    "SemiJoinOp",
    "HashDistinct",
    "Append",
    "Except",
    "Sort",
    "Materialize",
    "execute",
]

Row = Tuple[Any, ...]
Batch = List[Row]

#: Default number of rows per exchanged batch.
BATCH_SIZE = 1024


def _projector(positions: Sequence[int]) -> Callable[[Row], Row]:
    """A row -> tuple projection onto ``positions`` (always returns tuples)."""
    if len(positions) == 1:
        i = positions[0]
        return lambda row: (row[i],)
    if not positions:
        return lambda row: ()
    return itemgetter(*positions)


def _keyer(positions: Sequence[int]) -> Callable[[Row], Any]:
    """A hash-key extractor; single-column keys stay scalar (cheaper)."""
    if len(positions) == 1:
        i = positions[0]
        return lambda row: row[i]
    return itemgetter(*positions)


def _key_is_null(key: Any, single: bool) -> bool:
    if single:
        return key is None
    return None in key


class PhysicalPlan:
    """Base class for physical operators."""

    schema: Schema
    estimated_rows: float = 0.0
    #: Runtime statistics, populated when a ``batches()`` scan completes.
    actual_rows: Optional[int] = None
    actual_batches: Optional[int] = None

    @property
    def children(self) -> Tuple["PhysicalPlan", ...]:
        return ()

    def rows(self) -> Iterator[Row]:
        """Legacy tuple-at-a-time iterator (``mode="rows"``)."""
        raise NotImplementedError

    def batches(self, size: int = BATCH_SIZE) -> Iterator[Batch]:
        """Block-at-a-time iterator with runtime row/batch accounting.

        Non-positive ``size`` degrades to 1 (tuple-at-a-time batches)
        rather than erroring, so callers can sweep batch sizes freely.
        """
        if size <= 0:
            size = 1
        produced_rows = 0
        produced_batches = 0
        for batch in self._batches(size):
            produced_rows += len(batch)
            produced_batches += 1
            yield batch
        self.actual_rows = produced_rows
        self.actual_batches = produced_batches

    def _batches(self, size: int) -> Iterator[Batch]:
        """Operator-specific batch production; default chunks ``rows()``."""
        batch: Batch = []
        append = batch.append
        for row in self.rows():
            append(row)
            if len(batch) >= size:
                yield batch
                batch = []
                append = batch.append
        if batch:
            yield batch

    def explain_label(self) -> str:
        return type(self).__name__

    def explain_details(self) -> List[str]:
        """Extra indented lines under the node header in EXPLAIN output."""
        return []


def _chunks(rows: List[Row], size: int) -> Iterator[Batch]:
    """Slice a materialized row list into batches."""
    for start in range(0, len(rows), size):
        yield rows[start : start + size]


def _drain(plan: PhysicalPlan, size: int) -> List[Row]:
    """All rows of a plan via its batch interface (keeps stats accurate)."""
    out: List[Row] = []
    for batch in plan.batches(size):
        out.extend(batch)
    return out


class SeqScan(PhysicalPlan):
    """Sequential scan over a materialized base relation."""

    def __init__(self, relation: Relation, name: str = "relation", alias: Optional[str] = None):
        self.relation = relation
        self.name = name
        self.alias = alias
        self.schema = relation.schema.qualify(alias) if alias else relation.schema
        self.estimated_rows = float(len(relation))

    def rows(self) -> Iterator[Row]:
        return iter(self.relation.rows)

    def _batches(self, size: int) -> Iterator[Batch]:
        return _chunks(self.relation.rows, size)

    def explain_label(self) -> str:
        if self.alias:
            return f"Seq Scan on {self.name} {self.alias}"
        return f"Seq Scan on {self.name}"


#: Sentinel distinguishing "no point lookup" from a point lookup on NULL.
_NO_POINT = object()


class IndexScan(PhysicalPlan):
    """Base-relation access through a secondary index.

    Three access modes:

    * *point* — ``point`` is the lookup key (scalar for single-column
      indexes, tuple otherwise); works on hash and sorted indexes,
    * *range* — ``lower``/``upper`` bounds on the first index column
      (sorted indexes only),
    * *full*  — no condition: an ordered scan of a sorted index.

    ``residual`` is the leftover predicate the index condition does not
    cover; it is evaluated against every fetched row.  The ``schema`` is
    the scan's *output* schema, which may be a renamed/qualified view of
    the indexed relation's schema — positions are identical, so index rows
    flow through unchanged.

    A ``probe=True`` instance is the display-only inner side of an
    :class:`IndexNestedLoopJoin`; it is never executed (the join probes the
    index directly) and produces nothing if drained.
    """

    def __init__(
        self,
        index: Index,
        name: str,
        schema: Schema,
        alias: Optional[str] = None,
        point: Any = _NO_POINT,
        lower: Any = None,
        upper: Any = None,
        lower_inclusive: bool = True,
        upper_inclusive: bool = True,
        index_cond: Optional[str] = None,
        residual: Optional[Expression] = None,
        probe: bool = False,
    ):
        if len(schema) != len(index.relation.schema):
            raise ValueError("IndexScan schema must mirror the indexed relation")
        ranged = lower is not None or upper is not None
        if point is not _NO_POINT and ranged:
            raise ValueError("IndexScan takes a point key or range bounds, not both")
        if ranged and not isinstance(index, SortedIndex):
            raise ValueError("range access requires a SortedIndex")
        if point is _NO_POINT and not ranged and not probe and not isinstance(index, SortedIndex):
            raise ValueError("full scan access requires a SortedIndex")
        self.index = index
        self.name = name
        self.alias = alias
        self.schema = schema
        self.point = point
        self.lower = lower
        self.upper = upper
        self.lower_inclusive = lower_inclusive
        self.upper_inclusive = upper_inclusive
        self.index_cond = index_cond
        self.probe = probe
        self.residual = residual
        self._bound_residual = residual.bind(schema) if residual is not None else None
        self._compiled_residual = residual.compile(schema) if residual is not None else None
        self.estimated_rows = float(len(index))

    def _matched(self) -> Sequence[Row]:
        if self.probe:
            return ()
        if self.point is not _NO_POINT:
            return self.index.lookup(self.point)
        if self.lower is None and self.upper is None:
            return self.index.ordered()  # type: ignore[union-attr]  # SortedIndex per __init__
        return self.index.range(  # type: ignore[union-attr]  # SortedIndex checked in __init__
            self.lower, self.upper, self.lower_inclusive, self.upper_inclusive
        )

    def rows(self) -> Iterator[Row]:
        residual = self._bound_residual
        if residual is None:
            return iter(self._matched())
        return (row for row in self._matched() if residual(row))

    def _batches(self, size: int) -> Iterator[Batch]:
        matched = self._matched()
        residual = self._compiled_residual
        if residual is not None:
            matched = [row for row in matched if residual(row)]
        elif not isinstance(matched, list):
            matched = list(matched)
        return _chunks(matched, size)

    def explain_label(self) -> str:
        target = f"{self.name} {self.alias}" if self.alias else self.name
        return f"Index Scan using {self.index.name} on {target}"

    def explain_details(self) -> List[str]:
        details = []
        if self.index_cond:
            details.append(f"Index Cond: {self.index_cond}")
        if self.residual is not None:
            details.append(f"Filter: {self.residual!r}")
        return details


class Filter(PhysicalPlan):
    """Row filter by a bound predicate."""

    def __init__(self, child: PhysicalPlan, predicate: Expression):
        self.child = child
        self.predicate = predicate
        self._bound = predicate.bind(child.schema)
        self._compiled = predicate.compile(child.schema)
        self.schema = child.schema
        self.estimated_rows = child.estimated_rows

    @property
    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.child,)

    def rows(self) -> Iterator[Row]:
        bound = self._bound
        for row in self.child.rows():
            if bound(row):
                yield row

    def _batches(self, size: int) -> Iterator[Batch]:
        predicate = self._compiled
        for batch in self.child.batches(size):
            kept = [row for row in batch if predicate(row)]
            if kept:
                yield kept

    def explain_label(self) -> str:
        return "Filter"

    def explain_details(self) -> List[str]:
        return [f"Filter: {self.predicate!r}"]


class Projection(PhysicalPlan):
    """Positional projection (bag semantics)."""

    def __init__(self, child: PhysicalPlan, columns: Sequence[str]):
        self.child = child
        self.columns = list(columns)
        self.positions = child.schema.positions(self.columns)
        self.schema = child.schema.project(self.columns)
        self.estimated_rows = child.estimated_rows

    @property
    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.child,)

    def rows(self) -> Iterator[Row]:
        positions = self.positions
        for row in self.child.rows():
            yield tuple(row[i] for i in positions)

    def _batches(self, size: int) -> Iterator[Batch]:
        project = _projector(self.positions)
        for batch in self.child.batches(size):
            yield [project(row) for row in batch]

    def explain_label(self) -> str:
        return "Project"

    def explain_details(self) -> List[str]:
        return [f"Output: {', '.join(self.columns)}"]


class ProjectionAs(PhysicalPlan):
    """Generalized projection with duplication and renaming."""

    def __init__(self, child: PhysicalPlan, items: Sequence[Tuple[str, str]]):
        self.child = child
        self.items = list(items)
        self.positions = [child.schema.resolve(ref) for ref, _ in self.items]
        attrs = []
        for (ref, new), pos in zip(self.items, self.positions):
            attrs.append(child.schema[pos].renamed(new))
        self.schema = Schema(attrs)
        self.estimated_rows = child.estimated_rows

    @property
    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.child,)

    def rows(self) -> Iterator[Row]:
        positions = self.positions
        for row in self.child.rows():
            yield tuple(row[i] for i in positions)

    def _batches(self, size: int) -> Iterator[Batch]:
        project = _projector(self.positions)
        for batch in self.child.batches(size):
            yield [project(row) for row in batch]

    def explain_label(self) -> str:
        return "Project"

    def explain_details(self) -> List[str]:
        return ["Output: " + ", ".join(f"{ref} AS {new}" for ref, new in self.items)]


class ExtendOp(PhysicalPlan):
    """Extended projection: pass-through plus computed columns."""

    def __init__(self, child: PhysicalPlan, items: Sequence[Tuple[str, Expression]]):
        self.child = child
        self.items = list(items)
        self._bound = [expr.bind(child.schema) for _, expr in self.items]
        self._compiled = [expr.compile(child.schema) for _, expr in self.items]
        attrs = list(child.schema.attributes)
        for name, _expr in self.items:
            attrs.append(child.schema.attributes[0].renamed(name))
        self.schema = Schema(attrs)
        self.estimated_rows = child.estimated_rows

    @property
    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.child,)

    def rows(self) -> Iterator[Row]:
        bound = self._bound
        for row in self.child.rows():
            yield row + tuple(fn(row) for fn in bound)

    def _batches(self, size: int) -> Iterator[Batch]:
        fns = self._compiled
        if len(fns) == 1:
            f0 = fns[0]
            for batch in self.child.batches(size):
                yield [row + (f0(row),) for row in batch]
        elif len(fns) == 2:
            f0, f1 = fns
            for batch in self.child.batches(size):
                yield [row + (f0(row), f1(row)) for row in batch]
        else:
            for batch in self.child.batches(size):
                yield [row + tuple(fn(row) for fn in fns) for row in batch]

    def explain_label(self) -> str:
        return "Extend"

    def explain_details(self) -> List[str]:
        return ["Output: *, " + ", ".join(f"{expr!r} AS {name}" for name, expr in self.items)]


class HashJoin(PhysicalPlan):
    """Equi-join: hash-build on one input, probe with the other.

    ``pairs`` is a list of ``(left_col, right_col)`` equalities; an optional
    ``residual`` predicate (over the concatenated schema) filters join
    candidates — this is where the U-relations ψ-condition typically lands.

    By default the *right* input is hashed (the PostgreSQL convention the
    paper's plans show); ``build="left"`` hashes the left input instead and
    streams the right through as the probe side.  The planner picks the
    side with the smaller estimated cardinality.  Output rows are always
    ``left ++ right`` regardless of build side.
    """

    def __init__(
        self,
        left: PhysicalPlan,
        right: PhysicalPlan,
        pairs: Sequence[Tuple[str, str]],
        residual: Optional[Expression] = None,
        build: str = "right",
    ):
        if not pairs:
            raise ValueError("HashJoin requires at least one equi-pair")
        if build not in ("left", "right"):
            raise ValueError(f"build side must be 'left' or 'right', got {build!r}")
        self.left = left
        self.right = right
        self.pairs = list(pairs)
        self.residual = residual
        self.build = build
        self.schema = left.schema.concat(right.schema)
        self.left_positions = [left.schema.resolve(l) for l, _ in self.pairs]
        self.right_positions = [right.schema.resolve(r) for _, r in self.pairs]
        self._bound_residual = residual.bind(self.schema) if residual is not None else None
        self._compiled_residual = (
            residual.compile(self.schema) if residual is not None else None
        )
        self.estimated_rows = max(left.estimated_rows, right.estimated_rows)

    @property
    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.left, self.right)

    def rows(self) -> Iterator[Row]:
        build_left = self.build == "left"
        build_plan, build_positions = (
            (self.left, self.left_positions)
            if build_left
            else (self.right, self.right_positions)
        )
        probe_plan, probe_positions = (
            (self.right, self.right_positions)
            if build_left
            else (self.left, self.left_positions)
        )
        table: Dict[Tuple[Any, ...], List[Row]] = {}
        for row in build_plan.rows():
            key = tuple(row[i] for i in build_positions)
            if any(v is None for v in key):
                continue  # NULLs never join
            table.setdefault(key, []).append(row)
        residual = self._bound_residual
        for prow in probe_plan.rows():
            key = tuple(prow[i] for i in probe_positions)
            if any(v is None for v in key):
                continue
            for brow in table.get(key, ()):
                out = brow + prow if build_left else prow + brow
                if residual is None or residual(out):
                    yield out

    def _batches(self, size: int) -> Iterator[Batch]:
        single = len(self.pairs) == 1
        build_left = self.build == "left"
        build_plan, build_positions = (
            (self.left, self.left_positions)
            if build_left
            else (self.right, self.right_positions)
        )
        probe_plan, probe_positions = (
            (self.right, self.right_positions)
            if build_left
            else (self.left, self.left_positions)
        )
        bkey = _keyer(build_positions)
        table: Dict[Any, List[Row]] = {}
        setdefault = table.setdefault
        for batch in build_plan.batches(size):
            for row in batch:
                key = bkey(row)
                if _key_is_null(key, single):
                    continue  # NULLs never join
                setdefault(key, []).append(row)
        pkey = _keyer(probe_positions)
        residual = self._compiled_residual
        get = table.get
        out: Batch = []
        for batch in probe_plan.batches(size):
            for prow in batch:
                key = pkey(prow)
                if _key_is_null(key, single):
                    continue
                bucket = get(key)
                if not bucket:
                    continue
                if residual is None:
                    if build_left:
                        out.extend(brow + prow for brow in bucket)
                    else:
                        out.extend(prow + brow for brow in bucket)
                elif build_left:
                    for brow in bucket:
                        joined = brow + prow
                        if residual(joined):
                            out.append(joined)
                else:
                    for brow in bucket:
                        joined = prow + brow
                        if residual(joined):
                            out.append(joined)
                if len(out) >= size:
                    yield out
                    out = []
        if out:
            yield out

    def explain_label(self) -> str:
        return "Hash Join"

    def explain_details(self) -> List[str]:
        cond = " AND ".join(f"({l} = {r})" for l, r in self.pairs)
        details = [f"Hash Cond: {cond}"]
        if self.residual is not None:
            details.append(f"Join Filter: {self.residual!r}")
        return details


class IndexNestedLoopJoin(PhysicalPlan):
    """Equi-join that probes a prebuilt index on the inner relation.

    For every outer row the join key is extracted (ordered to match the
    index's column order) and looked up in the index — no scan or hash
    build of the inner side happens at all, which is the access-path win
    the paper gets from indexed U-relation partitions: the tid-equijoins
    that reassemble vertical partitions probe the partition's tid index.

    ``inner`` is a display-only plan (normally a probe-mode
    :class:`IndexScan`) supplying the inner schema for EXPLAIN; rows come
    straight out of ``index``.  ``flipped=False`` means the outer is the
    join's logical *left* (output rows are ``outer + inner``);
    ``flipped=True`` swaps the roles but preserves the left-to-right output
    schema (``inner + outer``).  ``pairs`` is ``(outer_col, inner_col)``
    per index column; ``residual`` filters the concatenated row.

    ``inner_filters`` are compiled row predicates applied to every probed
    inner row before concatenation — the planner moves the inner side's
    pushed-down selections here, so a *filtered* partition scan can still
    be replaced by index probes (the filter runs on the few matched rows
    instead of the whole table).  ``inner_filter_exprs`` are the matching
    expressions, kept for EXPLAIN only.
    """

    def __init__(
        self,
        outer: PhysicalPlan,
        inner: PhysicalPlan,
        index: Index,
        outer_positions: Sequence[int],
        pairs: Sequence[Tuple[str, str]],
        residual: Optional[Expression] = None,
        flipped: bool = False,
        inner_filters: Sequence[Callable[[Row], Any]] = (),
        inner_filter_exprs: Sequence[Expression] = (),
    ):
        if len(outer_positions) != len(index.positions):
            raise ValueError("outer key width must match the index column count")
        self.outer = outer
        self.inner = inner
        self.index = index
        self.outer_positions = list(outer_positions)
        self.pairs = list(pairs)
        self.residual = residual
        self.flipped = flipped
        self.inner_filters = list(inner_filters)
        self.inner_filter_exprs = list(inner_filter_exprs)
        self.schema = (
            inner.schema.concat(outer.schema)
            if flipped
            else outer.schema.concat(inner.schema)
        )
        self._bound_residual = residual.bind(self.schema) if residual is not None else None
        self._compiled_residual = (
            residual.compile(self.schema) if residual is not None else None
        )
        self.estimated_rows = max(outer.estimated_rows, inner.estimated_rows)

    @property
    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.outer, self.inner)

    def _probe(self, key: Any) -> Sequence[Row]:
        """Matched inner rows for a key, after the inner-side filters."""
        bucket = self.index.lookup(key)
        if not bucket or not self.inner_filters:
            return bucket
        filters = self.inner_filters
        if len(filters) == 1:
            predicate = filters[0]
            return [row for row in bucket if predicate(row)]
        return [row for row in bucket if all(f(row) for f in filters)]

    def rows(self) -> Iterator[Row]:
        single = len(self.outer_positions) == 1
        key = _keyer(self.outer_positions)
        probe = self._probe
        residual = self._bound_residual
        flipped = self.flipped
        for orow in self.outer.rows():
            k = key(orow)
            if _key_is_null(k, single):
                continue
            for irow in probe(k):
                out = irow + orow if flipped else orow + irow
                if residual is None or residual(out):
                    yield out

    def _batches(self, size: int) -> Iterator[Batch]:
        # hot path: everything hoisted out of the per-row loop (index
        # lookup as a bare dict.get for hash indexes, single-column keys
        # read by position, single compiled filter unwrapped, one-row
        # buckets — the typical tid-index case — handled without a list
        # comprehension allocation)
        single = len(self.outer_positions) == 1
        position = self.outer_positions[0] if single else -1
        key = None if single else _keyer(self.outer_positions)
        lookup = self.index.lookup_fn()
        filters = self.inner_filters
        only_filter = filters[0] if len(filters) == 1 else None
        residual = self._compiled_residual
        flipped = self.flipped
        out: Batch = []
        append = out.append
        for batch in self.outer.batches(size):
            for orow in batch:
                if single:
                    k = orow[position]
                    if k is None:
                        continue
                else:
                    k = key(orow)
                    if None in k:
                        continue
                bucket = lookup(k)
                if not bucket:
                    continue
                if only_filter is not None:
                    if len(bucket) == 1:
                        irow = bucket[0]
                        if not only_filter(irow):
                            continue
                        joined = irow + orow if flipped else orow + irow
                        if residual is None or residual(joined):
                            append(joined)
                            if len(out) >= size:
                                yield out
                                out = []
                                append = out.append
                        continue
                    bucket = [irow for irow in bucket if only_filter(irow)]
                    if not bucket:
                        continue
                elif filters:
                    bucket = [
                        irow for irow in bucket if all(f(irow) for f in filters)
                    ]
                    if not bucket:
                        continue
                if residual is None:
                    if flipped:
                        out.extend(irow + orow for irow in bucket)
                    else:
                        out.extend(orow + irow for irow in bucket)
                elif flipped:
                    for irow in bucket:
                        joined = irow + orow
                        if residual(joined):
                            append(joined)
                else:
                    for irow in bucket:
                        joined = orow + irow
                        if residual(joined):
                            append(joined)
                if len(out) >= size:
                    yield out
                    out = []
                    append = out.append
        if out:
            yield out

    def explain_label(self) -> str:
        return "Index Nested Loop Join"

    def explain_details(self) -> List[str]:
        cond = " AND ".join(f"({i} = {o})" for o, i in self.pairs)
        details = [f"Index Cond: {cond}"]
        if self.inner_filter_exprs:
            shown = " AND ".join(repr(e) for e in self.inner_filter_exprs)
            details.append(f"Probe Filter: {shown}")
        if self.residual is not None:
            details.append(f"Join Filter: {self.residual!r}")
        return details


class SemiJoinOp(PhysicalPlan):
    """Left semijoin: keeps left rows with at least one right partner.

    When the predicate contains equi-pairs (the α tuple-id condition of the
    reduction program always does), the right side is hashed on them and
    only the matching bucket is scanned for the residual (ψ) check;
    otherwise the operator degrades to a nested loop.
    """

    def __init__(self, left: PhysicalPlan, right: PhysicalPlan, predicate: Expression):
        from .expressions import conjunction, equijoin_pairs

        self.left = left
        self.right = Materialize(right)
        self.predicate = predicate
        self.schema = left.schema
        self.pairs, residual_list = equijoin_pairs(
            predicate, left.schema, right.schema
        )
        self.residual = conjunction(residual_list) if residual_list else None
        combined = left.schema.concat(right.schema)
        self._bound_residual = (
            self.residual.bind(combined) if self.residual is not None else None
        )
        self._compiled_residual = (
            self.residual.compile(combined) if self.residual is not None else None
        )
        self._bound_full = predicate.bind(combined)
        self._compiled_full = predicate.compile(combined)
        self.left_positions = [left.schema.resolve(l) for l, _ in self.pairs]
        self.right_positions = [right.schema.resolve(r) for _, r in self.pairs]
        self.estimated_rows = left.estimated_rows

    @property
    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.left, self.right)

    def rows(self) -> Iterator[Row]:
        if self.pairs:
            yield from self._hash_rows()
        else:
            yield from self._loop_rows()

    def _hash_rows(self) -> Iterator[Row]:
        table: Dict[Tuple[Any, ...], List[Row]] = {}
        right_positions = self.right_positions
        for rrow in self.right.rows():
            key = tuple(rrow[i] for i in right_positions)
            if any(v is None for v in key):
                continue
            table.setdefault(key, []).append(rrow)
        left_positions = self.left_positions
        residual = self._bound_residual
        for lrow in self.left.rows():
            key = tuple(lrow[i] for i in left_positions)
            if any(v is None for v in key):
                continue
            bucket = table.get(key)
            if not bucket:
                continue
            if residual is None:
                yield lrow
                continue
            for rrow in bucket:
                if residual(lrow + rrow):
                    yield lrow
                    break

    def _loop_rows(self) -> Iterator[Row]:
        bound = self._bound_full
        for lrow in self.left.rows():
            for rrow in self.right.rows():
                if bound(lrow + rrow):
                    yield lrow
                    break

    def _batches(self, size: int) -> Iterator[Batch]:
        if self.pairs:
            yield from self._hash_batches(size)
        else:
            yield from self._loop_batches(size)

    def _hash_batches(self, size: int) -> Iterator[Batch]:
        single = len(self.pairs) == 1
        rkey = _keyer(self.right_positions)
        table: Dict[Any, List[Row]] = {}
        setdefault = table.setdefault
        for batch in self.right.batches(size):
            for rrow in batch:
                key = rkey(rrow)
                if _key_is_null(key, single):
                    continue
                setdefault(key, []).append(rrow)
        lkey = _keyer(self.left_positions)
        residual = self._compiled_residual
        get = table.get
        for batch in self.left.batches(size):
            out: Batch = []
            for lrow in batch:
                key = lkey(lrow)
                if _key_is_null(key, single):
                    continue
                bucket = get(key)
                if not bucket:
                    continue
                if residual is None:
                    out.append(lrow)
                    continue
                for rrow in bucket:
                    if residual(lrow + rrow):
                        out.append(lrow)
                        break
            if out:
                yield out

    def _loop_batches(self, size: int) -> Iterator[Batch]:
        bound = self._compiled_full
        right_rows = _drain(self.right, size)
        for batch in self.left.batches(size):
            out: Batch = []
            for lrow in batch:
                for rrow in right_rows:
                    if bound(lrow + rrow):
                        out.append(lrow)
                        break
            if out:
                yield out

    def explain_label(self) -> str:
        return "Hash Semi Join" if self.pairs else "Semi Join"

    def explain_details(self) -> List[str]:
        details = []
        if self.pairs:
            cond = " AND ".join(f"({l} = {r})" for l, r in self.pairs)
            details.append(f"Hash Cond: {cond}")
        if self.residual is not None or not self.pairs:
            details.append(f"Join Filter: {(self.residual or self.predicate)!r}")
        return details


class Sort(PhysicalPlan):
    """Full sort of the child output by the given key columns."""

    def __init__(self, child: PhysicalPlan, keys: Sequence[str]):
        self.child = child
        self.keys = list(keys)
        self.positions = child.schema.positions(self.keys)
        self.schema = child.schema
        self.estimated_rows = child.estimated_rows

    @property
    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.child,)

    def _key(self) -> Callable[[Row], Any]:
        positions = self.positions

        def key(row: Row):
            return _sort_key(tuple(row[i] for i in positions))

        return key

    def rows(self) -> Iterator[Row]:
        return iter(sorted(self.child.rows(), key=self._key()))

    def _batches(self, size: int) -> Iterator[Batch]:
        gathered = _drain(self.child, size)
        gathered.sort(key=self._key())
        return _chunks(gathered, size)

    def explain_label(self) -> str:
        return "Sort"

    def explain_details(self) -> List[str]:
        return [f"Sort Key: {', '.join(self.keys)}"]


class MergeJoin(PhysicalPlan):
    """Sort-merge equi-join (inputs are sorted internally).

    Kept primarily for plan-shape parity with the PostgreSQL plans shown in
    the paper (Figure 13 uses merge joins on tuple-id columns).
    """

    def __init__(
        self,
        left: PhysicalPlan,
        right: PhysicalPlan,
        pairs: Sequence[Tuple[str, str]],
        residual: Optional[Expression] = None,
    ):
        if not pairs:
            raise ValueError("MergeJoin requires at least one equi-pair")
        self.left = Sort(left, [l for l, _ in pairs])
        self.right = Sort(right, [r for _, r in pairs])
        self.pairs = list(pairs)
        self.residual = residual
        self.schema = left.schema.concat(right.schema)
        self.left_positions = [left.schema.resolve(l) for l, _ in pairs]
        self.right_positions = [right.schema.resolve(r) for _, r in pairs]
        self._bound_residual = residual.bind(self.schema) if residual is not None else None
        self._compiled_residual = (
            residual.compile(self.schema) if residual is not None else None
        )
        self.estimated_rows = max(left.estimated_rows, right.estimated_rows)

    @property
    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.left, self.right)

    def rows(self) -> Iterator[Row]:
        left_rows = list(self.left.rows())
        right_rows = list(self.right.rows())
        lpos, rpos = self.left_positions, self.right_positions
        residual = self._bound_residual

        def lkey(row: Row):
            return _sort_key(tuple(row[i] for i in lpos))

        def rkey(row: Row):
            return _sort_key(tuple(row[i] for i in rpos))

        i = j = 0
        n, m = len(left_rows), len(right_rows)
        while i < n and j < m:
            lk, rk = lkey(left_rows[i]), rkey(right_rows[j])
            if lk < rk:
                i += 1
            elif lk > rk:
                j += 1
            else:
                # gather the equal-key groups on both sides
                i2 = i
                while i2 < n and lkey(left_rows[i2]) == lk:
                    i2 += 1
                j2 = j
                while j2 < m and rkey(right_rows[j2]) == rk:
                    j2 += 1
                if not any(
                    v is None for v in (left_rows[i][p] for p in lpos)
                ):  # NULL keys never join
                    for lrow in left_rows[i:i2]:
                        for rrow in right_rows[j:j2]:
                            out = lrow + rrow
                            if residual is None or residual(out):
                                yield out
                i, j = i2, j2

    def _batches(self, size: int) -> Iterator[Batch]:
        left_rows = _drain(self.left, size)
        right_rows = _drain(self.right, size)
        lpos, rpos = self.left_positions, self.right_positions
        lproject = _projector(lpos)
        rproject = _projector(rpos)
        # precompute sort keys once per row (the rows() path recomputes them
        # on every group-boundary probe)
        lkeys = [_sort_key(lproject(row)) for row in left_rows]
        rkeys = [_sort_key(rproject(row)) for row in right_rows]
        residual = self._compiled_residual

        out: Batch = []
        i = j = 0
        n, m = len(left_rows), len(right_rows)
        while i < n and j < m:
            lk, rk = lkeys[i], rkeys[j]
            if lk < rk:
                i += 1
            elif lk > rk:
                j += 1
            else:
                i2 = i
                while i2 < n and lkeys[i2] == lk:
                    i2 += 1
                j2 = j
                while j2 < m and rkeys[j2] == rk:
                    j2 += 1
                if not any(v is None for v in lproject(left_rows[i])):
                    right_group = right_rows[j:j2]
                    for lrow in left_rows[i:i2]:
                        if residual is None:
                            out.extend(lrow + rrow for rrow in right_group)
                        else:
                            for rrow in right_group:
                                joined = lrow + rrow
                                if residual(joined):
                                    out.append(joined)
                        if len(out) >= size:
                            yield out
                            out = []
                i, j = i2, j2
        if out:
            yield out

    def explain_label(self) -> str:
        return "Merge Join"

    def explain_details(self) -> List[str]:
        cond = " AND ".join(f"({l} = {r})" for l, r in self.pairs)
        details = [f"Merge Cond: {cond}"]
        if self.residual is not None:
            details.append(f"Join Filter: {self.residual!r}")
        return details


class Materialize(PhysicalPlan):
    """Materializes (and caches) the child output for repeated scans."""

    def __init__(self, child: PhysicalPlan):
        self.child = child
        self.schema = child.schema
        self.estimated_rows = child.estimated_rows
        self._cache: Optional[List[Row]] = None

    @property
    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.child,)

    def _materialized(self, size: int = BATCH_SIZE) -> List[Row]:
        if self._cache is None:
            self._cache = _drain(self.child, size)
        return self._cache

    def rows(self) -> Iterator[Row]:
        if self._cache is None:
            self._cache = list(self.child.rows())
        return iter(self._cache)

    def _batches(self, size: int) -> Iterator[Batch]:
        return _chunks(self._materialized(size), size)

    def explain_label(self) -> str:
        return "Materialize"


class NestedLoopJoin(PhysicalPlan):
    """Nested-loop join with an arbitrary predicate (or cross product)."""

    def __init__(
        self,
        left: PhysicalPlan,
        right: PhysicalPlan,
        predicate: Optional[Expression] = None,
    ):
        self.left = left
        self.right = Materialize(right)
        self.predicate = predicate
        self.schema = left.schema.concat(right.schema)
        self._bound = predicate.bind(self.schema) if predicate is not None else None
        self._compiled = predicate.compile(self.schema) if predicate is not None else None
        self.estimated_rows = left.estimated_rows * max(right.estimated_rows, 1.0)

    @property
    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.left, self.right)

    def rows(self) -> Iterator[Row]:
        bound = self._bound
        for lrow in self.left.rows():
            for rrow in self.right.rows():
                out = lrow + rrow
                if bound is None or bound(out):
                    yield out

    def _batches(self, size: int) -> Iterator[Batch]:
        predicate = self._compiled
        right_rows = _drain(self.right, size)
        out: Batch = []
        for batch in self.left.batches(size):
            for lrow in batch:
                if predicate is None:
                    out.extend(lrow + rrow for rrow in right_rows)
                else:
                    for rrow in right_rows:
                        joined = lrow + rrow
                        if predicate(joined):
                            out.append(joined)
                if len(out) >= size:
                    yield out
                    out = []
        if out:
            yield out

    def explain_label(self) -> str:
        return "Nested Loop"

    def explain_details(self) -> List[str]:
        if self.predicate is not None:
            return [f"Join Filter: {self.predicate!r}"]
        return []


class HashDistinct(PhysicalPlan):
    """Duplicate elimination preserving first-seen order."""

    def __init__(self, child: PhysicalPlan):
        self.child = child
        self.schema = child.schema
        self.estimated_rows = child.estimated_rows

    @property
    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.child,)

    def rows(self) -> Iterator[Row]:
        seen = set()
        for row in self.child.rows():
            if row not in seen:
                seen.add(row)
                yield row

    def _batches(self, size: int) -> Iterator[Batch]:
        seen: set = set()
        add = seen.add
        for batch in self.child.batches(size):
            fresh = [row for row in batch if not (row in seen or add(row))]
            if fresh:
                yield fresh

    def explain_label(self) -> str:
        return "HashAggregate"

    def explain_details(self) -> List[str]:
        return ["Group Key: all output columns (distinct)"]


class Append(PhysicalPlan):
    """Bag union of two inputs (schema from the left)."""

    def __init__(self, left: PhysicalPlan, right: PhysicalPlan):
        self.left = left
        self.right = right
        self.schema = left.schema
        self.estimated_rows = left.estimated_rows + right.estimated_rows

    @property
    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.left, self.right)

    def rows(self) -> Iterator[Row]:
        for row in self.left.rows():
            yield row
        for row in self.right.rows():
            yield row

    def _batches(self, size: int) -> Iterator[Batch]:
        yield from self.left.batches(size)
        yield from self.right.batches(size)

    def explain_label(self) -> str:
        return "Append"


class Except(PhysicalPlan):
    """Set difference left − right (distinct output)."""

    def __init__(self, left: PhysicalPlan, right: PhysicalPlan):
        self.left = left
        self.right = right
        self.schema = left.schema
        self.estimated_rows = left.estimated_rows

    @property
    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.left, self.right)

    def rows(self) -> Iterator[Row]:
        gone = set(self.right.rows())
        seen = set()
        for row in self.left.rows():
            if row not in gone and row not in seen:
                seen.add(row)
                yield row

    def _batches(self, size: int) -> Iterator[Batch]:
        gone: set = set()
        for batch in self.right.batches(size):
            gone.update(batch)
        add = gone.add  # emitted rows join `gone`, deduplicating the output
        for batch in self.left.batches(size):
            fresh = [row for row in batch if not (row in gone or add(row))]
            if fresh:
                yield fresh

    def explain_label(self) -> str:
        return "SetOp Except"


def execute(
    plan: PhysicalPlan, mode: str = "blocks", batch_size: int = BATCH_SIZE
) -> Relation:
    """Run a physical plan to completion and materialize the result.

    ``mode="blocks"`` (the default) uses the vectorized block-at-a-time
    path; ``mode="rows"`` runs the legacy tuple-at-a-time iterators.  Both
    produce identical relations.
    """
    if mode == "rows":
        return Relation(plan.schema, plan.rows())
    if mode != "blocks":
        raise ValueError(f"unknown execution mode {mode!r} (use 'rows' or 'blocks')")
    return Relation.from_trusted(plan.schema, _drain(plan, batch_size))
