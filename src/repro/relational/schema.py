"""Schemas: ordered lists of (possibly qualified) attribute names.

Attribute names may be *qualified* with a relation alias, e.g.
``"o.orderkey"``.  Name resolution follows SQL rules: an unqualified
reference ``orderkey`` resolves against a schema containing
``o.orderkey`` as long as exactly one attribute has that base name;
ambiguity raises :class:`AmbiguousColumnError`.

Schemas are immutable; operations (concat, project, rename) return new
instances.  Positional access is what the physical operators use — name
resolution happens once, when expressions are bound.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .types import DataType

__all__ = [
    "Attribute",
    "Schema",
    "SchemaError",
    "UnknownColumnError",
    "AmbiguousColumnError",
    "split_qualified",
]


class SchemaError(ValueError):
    """Base class for schema construction / resolution errors."""


class UnknownColumnError(SchemaError):
    """Raised when a column reference matches no attribute."""


class AmbiguousColumnError(SchemaError):
    """Raised when an unqualified reference matches several attributes."""


def split_qualified(name: str) -> Tuple[Optional[str], str]:
    """Split ``"alias.base"`` into ``(alias, base)``; unqualified -> ``(None, name)``."""
    if "." in name:
        alias, base = name.split(".", 1)
        return alias, base
    return None, name


class Attribute:
    """A single schema attribute: a name, optional qualifier, and a type."""

    __slots__ = ("qualifier", "base", "dtype")

    def __init__(self, name: str, dtype: DataType = DataType.ANY):
        qualifier, base = split_qualified(name)
        self.qualifier = qualifier
        self.base = base
        self.dtype = dtype

    @property
    def name(self) -> str:
        """The full (qualified if applicable) attribute name."""
        if self.qualifier is None:
            return self.base
        return f"{self.qualifier}.{self.base}"

    def with_qualifier(self, qualifier: Optional[str]) -> "Attribute":
        """A copy of this attribute under a new (or no) qualifier."""
        attr = Attribute(self.base, self.dtype)
        attr.qualifier = qualifier
        return attr

    def renamed(self, new_name: str) -> "Attribute":
        """A copy of this attribute with a completely new name."""
        return Attribute(new_name, self.dtype)

    def matches(self, reference: str) -> bool:
        """Whether a column reference (qualified or not) refers to this attribute."""
        ref_qualifier, ref_base = split_qualified(reference)
        if ref_qualifier is None:
            return ref_base == self.base
        return ref_qualifier == self.qualifier and ref_base == self.base

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Attribute)
            and self.qualifier == other.qualifier
            and self.base == other.base
        )

    def __hash__(self) -> int:
        return hash((self.qualifier, self.base))

    def __repr__(self) -> str:
        return f"Attribute({self.name!r}, {self.dtype.value})"


class Schema:
    """An ordered, immutable sequence of :class:`Attribute` objects."""

    __slots__ = ("attributes", "_index")

    def __init__(self, attributes: Iterable):
        attrs: List[Attribute] = []
        for item in attributes:
            if isinstance(item, Attribute):
                attrs.append(item)
            elif isinstance(item, tuple):
                attrs.append(Attribute(item[0], item[1]))
            else:
                attrs.append(Attribute(str(item)))
        self.attributes: Tuple[Attribute, ...] = tuple(attrs)
        names = [a.name for a in self.attributes]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate attribute names in schema: {dupes}")
        self._index: Dict[str, int] = {a.name: i for i, a in enumerate(self.attributes)}

    # ------------------------------------------------------------------
    # basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __getitem__(self, i: int) -> Attribute:
        return self.attributes[i]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self.attributes == other.attributes

    def __hash__(self) -> int:
        return hash(self.attributes)

    def __repr__(self) -> str:
        return "Schema(" + ", ".join(a.name for a in self.attributes) + ")"

    @property
    def names(self) -> List[str]:
        """Full attribute names in order."""
        return [a.name for a in self.attributes]

    # ------------------------------------------------------------------
    # name resolution
    # ------------------------------------------------------------------
    def resolve(self, reference: str) -> int:
        """Return the position of the attribute a reference denotes.

        Exact (qualified) matches win; otherwise the reference is matched
        against base names, and must be unambiguous.
        """
        if reference in self._index:
            return self._index[reference]
        matches = [i for i, a in enumerate(self.attributes) if a.matches(reference)]
        if not matches:
            raise UnknownColumnError(
                f"column {reference!r} not found in schema {self.names}"
            )
        if len(matches) > 1:
            raise AmbiguousColumnError(
                f"column {reference!r} is ambiguous in schema {self.names}"
            )
        return matches[0]

    def has(self, reference: str) -> bool:
        """Whether a reference resolves (unambiguously) in this schema."""
        try:
            self.resolve(reference)
            return True
        except SchemaError:
            return False

    def positions(self, references: Sequence[str]) -> List[int]:
        """Resolve a list of references to positions (in the given order)."""
        return [self.resolve(r) for r in references]

    # ------------------------------------------------------------------
    # construction of derived schemas
    # ------------------------------------------------------------------
    def concat(self, other: "Schema") -> "Schema":
        """Schema of a product/join: attributes of ``self`` then ``other``."""
        return Schema(self.attributes + other.attributes)

    def project(self, references: Sequence[str]) -> "Schema":
        """Schema restricted (and reordered) to the referenced attributes."""
        return Schema([self.attributes[i] for i in self.positions(references)])

    def rename(self, mapping: Dict[str, str]) -> "Schema":
        """Rename attributes; keys are resolved references, values new names."""
        positions = {self.resolve(old): new for old, new in mapping.items()}
        return Schema(
            [
                a.renamed(positions[i]) if i in positions else a
                for i, a in enumerate(self.attributes)
            ]
        )

    def qualify(self, alias: str) -> "Schema":
        """Re-qualify *all* attributes under a single alias (SQL ``AS``)."""
        return Schema([a.with_qualifier(alias) for a in self.attributes])

    def unqualify(self) -> "Schema":
        """Drop all qualifiers (used when materializing named results)."""
        return Schema([a.with_qualifier(None) for a in self.attributes])
