"""Lineage analysis and data minimization for ULDBs.

Section 5: "erroneous tuples may appear in the answers to queries on
ULDBs... The removal of such tuples is called data minimization, an
expensive operation that involves the computation of the transitive
closure of lineage."

:func:`minimize` removes every alternative whose transitive lineage closure
is unsatisfiable (dangles, or demands two different alternatives of one
x-tuple); x-tuples left without alternatives disappear.
:func:`erroneous_alternatives` reports them without removing, and
:func:`well_formed` checks the structural conditions of [8].
"""

from __future__ import annotations

from typing import Any, Dict, List, Set, Tuple

from .uldb import ULDB, Alternative, AltRef, ULDBRelation, XTuple

__all__ = ["minimize", "erroneous_alternatives", "well_formed"]


def erroneous_alternatives(db: ULDB, relation: ULDBRelation) -> List[AltRef]:
    """References to alternatives that occur in no possible world."""
    out: List[AltRef] = []
    for xtuple in relation:
        for index in range(1, len(xtuple.alternatives) + 1):
            ref = (relation.name, xtuple.tid, index)
            if not db.closure_consistent([ref]):
                out.append(ref)
    return out


def minimize(db: ULDB, relation: ULDBRelation) -> ULDBRelation:
    """Data minimization: drop erroneous alternatives (and empty x-tuples).

    Returns a new relation registered in ``db``; lineage of surviving
    alternatives now points at the surviving copy's inputs unchanged (the
    indices of surviving alternatives are preserved by keeping placeholder
    positions out of the result and re-pointing lineage to the original
    relation, which stays in the database).
    """
    bad = set(erroneous_alternatives(db, relation))
    out = ULDBRelation(f"{relation.name}_min", relation.attributes)
    for xtuple in relation:
        kept = []
        for index, alternative in enumerate(xtuple.alternatives, start=1):
            if (relation.name, xtuple.tid, index) in bad:
                continue
            kept.append(
                Alternative(
                    alternative.values,
                    lineage=[(relation.name, xtuple.tid, index)],
                )
            )
        if kept:
            optional = xtuple.optional or len(kept) < len(xtuple.alternatives)
            out.add(XTuple(xtuple.tid, kept, optional=optional))
    db.add_relation(out)
    return out


def well_formed(db: ULDB) -> bool:
    """Structural well-formedness: lineage acyclic and base-terminated.

    [8] requires lineage to form a DAG ending at base (lineage-free)
    alternatives.  External symbols (dangling references) are permitted by
    the model; cycles are not.
    """
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[AltRef, int] = {}

    def visit(ref: AltRef) -> bool:
        state = color.get(ref, WHITE)
        if state == GRAY:
            return False  # cycle
        if state == BLACK:
            return True
        color[ref] = GRAY
        alternative = db.resolve(ref)
        if alternative is not None:
            for dep in alternative.lineage:
                if not visit(dep):
                    return False
        color[ref] = BLACK
        return True

    for name, relation in db.relations.items():
        for xtuple in relation:
            for index in range(1, len(xtuple.alternatives) + 1):
                if not visit((name, xtuple.tid, index)):
                    return False
    return True
