"""``repro.uldb`` — ULDBs: databases with uncertainty and lineage (Trio).

The tuple-level baseline of Section 5 and Figure 14: x-tuples with
alternatives and conjunctive lineage, select-project-join evaluation with
lineage propagation (and the erroneous tuples it admits), data minimization
via transitive lineage closure, and the Lemma 5.5 / Example 5.4
conversions to and from U-relational databases.
"""

from .convert import ABSENT, udatabase_to_uldb, uldb_to_udatabase
from .lineage import erroneous_alternatives, minimize, well_formed
from .query import join, possible_tuples, project, select
from .uldb import ULDB, Alternative, AltRef, ULDBRelation, XTuple

__all__ = [
    "ULDB",
    "ULDBRelation",
    "XTuple",
    "Alternative",
    "AltRef",
    "select",
    "project",
    "join",
    "possible_tuples",
    "minimize",
    "erroneous_alternatives",
    "well_formed",
    "udatabase_to_uldb",
    "uldb_to_udatabase",
    "ABSENT",
]
