"""Query evaluation on ULDBs with lineage propagation.

Select-project-join evaluation in the style of Trio [8]:

* selection keeps the alternatives satisfying the predicate (an x-tuple
  whose alternatives partially qualify becomes optional),
* projection maps alternatives, keeping lineage to the input alternatives,
* join combines alternatives pairwise; the lineage of an output alternative
  is the union of the input lineages plus references to the two inputs.

Crucially — and this is the Section 5 contrast with U-relations — the join
performs **no consistency filtering**: output lineage only points to input
alternatives, so *erroneous tuples* (alternatives whose transitive lineage
is unsatisfiable) can appear in answers.  Removing them is *data
minimization* (:func:`repro.uldb.lineage.minimize`), an expensive
transitive-closure computation; U-relations avoid it by construction via
the ψ condition.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..relational.expressions import Expression
from ..relational.relation import Relation
from ..relational.schema import Schema
from .uldb import ULDB, Alternative, ULDBRelation, XTuple

__all__ = ["select", "project", "join", "possible_tuples"]

_result_counter = itertools.count(1)


def _fresh_name(prefix: str) -> str:
    return f"{prefix}#{next(_result_counter)}"


def select(db: ULDB, relation: ULDBRelation, predicate: Expression) -> ULDBRelation:
    """σ over a ULDB relation; result registered in ``db``."""
    schema = Schema(relation.attributes)
    bound = predicate.bind(schema)
    out = ULDBRelation(_fresh_name(f"sel_{relation.name}"), relation.attributes)
    for xtuple in relation:
        kept = []
        for index, alternative in enumerate(xtuple.alternatives, start=1):
            if bound(alternative.values):
                kept.append(
                    Alternative(
                        alternative.values,
                        lineage=[(relation.name, xtuple.tid, index)],
                    )
                )
        if kept:
            optional = xtuple.optional or len(kept) < len(xtuple.alternatives)
            out.add(XTuple(xtuple.tid, kept, optional=optional))
    db.add_relation(out)
    return out


def project(db: ULDB, relation: ULDBRelation, attributes: Sequence[str]) -> ULDBRelation:
    """π over a ULDB relation; duplicates within an x-tuple collapse."""
    positions = [relation.attributes.index(a) for a in attributes]
    out = ULDBRelation(_fresh_name(f"proj_{relation.name}"), attributes)
    for xtuple in relation:
        alternatives = []
        seen = set()
        for index, alternative in enumerate(xtuple.alternatives, start=1):
            values = tuple(alternative.values[i] for i in positions)
            if values in seen:
                continue
            seen.add(values)
            alternatives.append(
                Alternative(values, lineage=[(relation.name, xtuple.tid, index)])
            )
        out.add(XTuple(xtuple.tid, alternatives, optional=xtuple.optional))
    db.add_relation(out)
    return out


def join(
    db: ULDB,
    left: ULDBRelation,
    right: ULDBRelation,
    predicate: Expression,
    minimize_result: bool = False,
) -> ULDBRelation:
    """⋈ of two ULDB relations with lineage to both inputs.

    With ``minimize_result=False`` (Trio's default behaviour as benchmarked
    in Figure 14), erroneous tuples may remain in the output; pass ``True``
    to run data minimization afterwards.
    """
    attributes = [f"l.{a}" for a in left.attributes] + [f"r.{a}" for a in right.attributes]
    schema = Schema(attributes)
    bound = predicate.bind(schema)
    out = ULDBRelation(_fresh_name(f"join_{left.name}_{right.name}"), attributes)
    for ltuple in left:
        for rtuple in right:
            alternatives = []
            for li, lalt in enumerate(ltuple.alternatives, start=1):
                for ri, ralt in enumerate(rtuple.alternatives, start=1):
                    combined = lalt.values + ralt.values
                    if not bound(combined):
                        continue
                    alternatives.append(
                        Alternative(
                            combined,
                            lineage=[
                                (left.name, ltuple.tid, li),
                                (right.name, rtuple.tid, ri),
                            ],
                        )
                    )
            if alternatives:
                out.add(
                    XTuple(
                        (ltuple.tid, rtuple.tid),
                        alternatives,
                        optional=True,  # join results are conditional on inputs
                    )
                )
    db.add_relation(out)
    if minimize_result:
        from .lineage import minimize

        return minimize(db, out)
    return out


def possible_tuples(db: ULDB, relation: ULDBRelation, minimized: bool = True) -> Relation:
    """The ``poss`` analogue: distinct alternative values.

    With ``minimized=True``, erroneous alternatives (unsatisfiable lineage)
    are excluded — this invokes the expensive lineage closure per
    alternative, which Trio folds into confidence computation.
    """
    rows = []
    for xtuple in relation:
        for index, alternative in enumerate(xtuple.alternatives, start=1):
            if minimized and not db.closure_consistent(
                [(relation.name, xtuple.tid, index)]
            ):
                continue
            rows.append(alternative.values)
    return Relation(Schema(relation.attributes), rows).distinct()
