"""Conversions between ULDBs and U-relational databases (Section 5).

* :func:`uldb_to_udatabase` — Lemma 5.5: the *linear* embedding.  Every
  x-tuple ``t`` becomes a variable ``c_t`` with one domain value per
  alternative (plus an "absent" value for optional x-tuples); every
  alternative becomes one tuple-level U-relation tuple whose ws-descriptor
  fixes ``c_t`` and the choices demanded by the alternative's (transitively
  closed) lineage.

* :func:`udatabase_to_uldb` — the reverse direction, which is worst-case
  *exponential in the arity* (Theorem 5.6 / Example 5.4): for every logical
  tuple id, all consistent combinations of its partitions' values must be
  enumerated as alternatives.  Cross-x-tuple dependencies are expressed
  with lineage to per-variable *selector* x-tuples (one alternative per
  domain value, stored in auxiliary ``_var_<x>`` relations), the standard
  Trio encoding of shared choices.  The data relations' alternative counts
  are the representation-size measure used by the Figure 14 comparison.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..core.descriptor import Descriptor
from ..core.udatabase import UDatabase
from ..core.urelation import URelation, tid_column
from ..core.worldtable import WorldTable
from .uldb import ULDB, Alternative, AltRef, ULDBRelation, XTuple

__all__ = ["uldb_to_udatabase", "udatabase_to_uldb", "ABSENT"]

#: Extra domain value representing "the optional x-tuple is absent".
ABSENT = "absent"


def _variable_for(relation_name: str, tid: Any) -> str:
    return f"c[{relation_name}:{tid!r}]"


def uldb_to_udatabase(db: ULDB, skip_selectors: bool = True) -> UDatabase:
    """Lemma 5.5: translate a ULDB linearly into a U-relational database.

    ``skip_selectors``: auxiliary ``_var_*`` relations produced by
    :func:`udatabase_to_uldb` are choice bookkeeping, not data; they are
    translated into world-table variables but not into logical relations.
    """
    # An x-tuple is a *base choice* when its alternatives carry no lineage:
    # only those get a free choice variable.  X-tuples whose alternatives
    # have lineage are determined by the choices they reference (their own
    # "choice" would double-count worlds).
    world = WorldTable()
    is_base: Dict[Tuple[str, Any], bool] = {}
    for name, relation in sorted(db.relations.items()):
        for xtuple in relation:
            base = all(not alt.lineage for alt in xtuple.alternatives)
            is_base[(name, xtuple.tid)] = base
            if not base:
                continue
            domain: List[Any] = list(range(1, len(xtuple.alternatives) + 1))
            if xtuple.optional:
                domain.append(ABSENT)
            if len(domain) > 1:
                world.add_variable(_variable_for(name, xtuple.tid), domain)

    udb = UDatabase(world)
    for name, relation in sorted(db.relations.items()):
        if skip_selectors and name.startswith("_var_"):
            continue
        triples = []
        for xtuple in relation:
            for index, alternative in enumerate(xtuple.alternatives, start=1):
                closure = db.lineage_closure((name, xtuple.tid, index))
                if closure is None:
                    continue  # erroneous alternative: occurs in no world
                assignments: Dict[str, Any] = {}
                ok = True
                for dep_name, dep_tid, dep_index in closure:
                    if not is_base.get((dep_name, dep_tid), True):
                        continue  # determined x-tuple: no variable of its own
                    var = _variable_for(dep_name, dep_tid)
                    if var not in world:
                        # single-alternative mandatory x-tuple: always chosen
                        continue
                    if assignments.get(var, dep_index) != dep_index:
                        ok = False
                        break
                    assignments[var] = dep_index
                if not ok:
                    continue
                triples.append(
                    (Descriptor(assignments), xtuple.tid, alternative.values)
                )
        partition = URelation.build(
            triples, tid_column(name), list(relation.attributes)
        )
        udb.add_relation(name, relation.attributes, [partition])
    return udb


def udatabase_to_uldb(udb: UDatabase) -> ULDB:
    """Translate a U-relational database to an equivalent ULDB.

    Worst-case exponential in the number of partitions per relation
    (Theorem 5.6): every consistent combination of per-partition values of
    one logical tuple becomes one alternative (Example 5.4's enumeration).
    """
    db = ULDB()

    # selector x-tuples: one per world-table variable
    selector_ref: Dict[Tuple[str, Any], AltRef] = {}
    for var in udb.world_table.variables():
        relation = ULDBRelation(f"_var_{var}", ["value"])
        domain = udb.world_table.domain(var)
        relation.add(XTuple(var, [Alternative((v,)) for v in domain]))
        db.add_relation(relation)
        for index, value in enumerate(domain, start=1):
            selector_ref[(var, value)] = (f"_var_{var}", var, index)

    for name in udb.relation_names():
        schema = udb.logical_schema(name)
        relation = ULDBRelation(name, schema.attributes)
        combos = _tuple_combinations(udb, name)
        for tid, alternatives in sorted(combos.items(), key=lambda kv: repr(kv[0])):
            alts = []
            covered_all = _covers_all_worlds(
                [d for d, _ in alternatives], udb.world_table
            )
            for descriptor, values in alternatives:
                lineage = [
                    selector_ref[(var, val)] for var, val in descriptor.items()
                ]
                alts.append(Alternative(values, lineage=lineage))
            if alts:
                relation.add(XTuple(tid, alts, optional=not covered_all))
        db.add_relation(relation)
    return db


def _tuple_combinations(
    udb: UDatabase, name: str
) -> Dict[Any, List[Tuple[Descriptor, Tuple[Any, ...]]]]:
    """All consistent full-attribute combinations per logical tuple id."""
    schema = udb.logical_schema(name)
    parts = udb.partitions(name)
    per_tid: Dict[Any, List[List[Tuple[Descriptor, Dict[str, Any]]]]] = {}
    for part_index, part in enumerate(parts):
        for descriptor, tids, values in part:
            (tid,) = tids
            buckets = per_tid.setdefault(tid, [[] for _ in parts])
            buckets[part_index].append(
                (descriptor, dict(zip(part.value_names, values)))
            )
    out: Dict[Any, List[Tuple[Descriptor, Tuple[Any, ...]]]] = {}
    for tid, buckets in per_tid.items():
        non_empty = [b for b in buckets if b]
        if len(non_empty) < len(buckets):
            continue  # some partition never defines this tuple: never complete
        combos: List[Tuple[Descriptor, Tuple[Any, ...]]] = []
        seen: Set[Tuple] = set()
        for choice in itertools.product(*non_empty):
            descriptor = Descriptor()
            consistent = True
            for d, _vals in choice:
                if not descriptor.consistent_with(d):
                    consistent = False
                    break
                descriptor = descriptor.union(d)
            if not consistent:
                continue
            merged: Dict[str, Any] = {}
            conflict = False
            for _d, vals in choice:
                for attr, value in vals.items():
                    if merged.setdefault(attr, value) != value:
                        conflict = True
                        break
                if conflict:
                    break
            if conflict or set(merged) != set(schema.attributes):
                continue
            values = tuple(merged[a] for a in schema.attributes)
            key = (descriptor.items(), tuple(map(repr, values)))
            if key not in seen:
                seen.add(key)
                combos.append((descriptor, values))
        out[tid] = combos
    return out


def _covers_all_worlds(descriptors: Sequence[Descriptor], world: WorldTable) -> bool:
    """Whether the union of descriptor world-sets is the full world-set."""
    if any(d.empty for d in descriptors):
        return True
    if not descriptors:
        return False
    touched = sorted({var for d in descriptors for var in d.variables()})
    for combo in itertools.product(*(world.domain(v) for v in touched)):
        assignment = dict(zip(touched, combo))
        assignment["_t"] = 0
        if not any(d.extended_by(assignment) for d in descriptors):
            return False
    return True
