"""ULDBs — databases with uncertainty and lineage (the Trio baseline [8]).

A ULDB relation is a set of *x-tuples*; each x-tuple has one or more
*alternatives* (value tuples) and may be marked optional (``?``).  One
possible world chooses exactly one alternative per x-tuple (or none, for
optional x-tuples).  Dependencies between alternatives of different
x-tuples are expressed through *lineage*: alternative ``(t, j)`` occurs in
exactly the worlds where all alternatives its lineage points to occur.

This implementation follows Section 5's account of [8]:

* lineage is a conjunction of references to other alternatives (or to
  external symbols, which we model as references to absent alternatives),
* a world is a choice of alternatives consistent with lineage closure,
* query answers carry lineage to input alternatives, which can admit
  *erroneous tuples* (tuples in no world) until data minimization removes
  them — the expensive transitive-closure operation the paper contrasts
  with U-relations' ψ-filtered joins.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from ..relational.relation import Relation
from ..relational.schema import Schema

__all__ = ["AltRef", "Alternative", "XTuple", "ULDBRelation", "ULDB"]

#: A reference to an alternative: (relation name, x-tuple id, alternative index).
AltRef = Tuple[str, Any, int]


class Alternative:
    """One alternative of an x-tuple: values plus conjunctive lineage."""

    __slots__ = ("values", "lineage")

    def __init__(self, values: Sequence[Any], lineage: Iterable[AltRef] = ()):
        self.values: Tuple[Any, ...] = tuple(values)
        self.lineage: FrozenSet[AltRef] = frozenset(lineage)

    def __repr__(self) -> str:
        if self.lineage:
            return f"{self.values} λ{sorted(self.lineage)}"
        return repr(self.values)


class XTuple:
    """An x-tuple: a set of mutually exclusive alternatives."""

    __slots__ = ("tid", "alternatives", "optional")

    def __init__(self, tid: Any, alternatives: Sequence[Alternative], optional: bool = False):
        if not alternatives:
            raise ValueError("an x-tuple needs at least one alternative")
        self.tid = tid
        self.alternatives: Tuple[Alternative, ...] = tuple(alternatives)
        self.optional = optional

    def __len__(self) -> int:
        return len(self.alternatives)

    def __repr__(self) -> str:
        mark = " ?" if self.optional else ""
        return f"XTuple({self.tid}: {list(self.alternatives)}{mark})"


class ULDBRelation:
    """A ULDB relation: schema plus x-tuples."""

    def __init__(self, name: str, attributes: Sequence[str]):
        self.name = name
        self.attributes: Tuple[str, ...] = tuple(attributes)
        self.xtuples: List[XTuple] = []
        self._by_tid: Dict[Any, XTuple] = {}

    def add(self, xtuple: XTuple) -> None:
        if xtuple.tid in self._by_tid:
            raise ValueError(f"duplicate x-tuple id {xtuple.tid!r} in {self.name!r}")
        for alt in xtuple.alternatives:
            if len(alt.values) != len(self.attributes):
                raise ValueError(
                    f"alternative arity {len(alt.values)} does not match "
                    f"schema {list(self.attributes)}"
                )
        self.xtuples.append(xtuple)
        self._by_tid[xtuple.tid] = xtuple

    def xtuple(self, tid: Any) -> Optional[XTuple]:
        return self._by_tid.get(tid)

    def alternative_count(self) -> int:
        """Total number of alternatives — the size measure of Figure 14."""
        return sum(len(x) for x in self.xtuples)

    def __len__(self) -> int:
        return len(self.xtuples)

    def __iter__(self) -> Iterator[XTuple]:
        return iter(self.xtuples)

    def __repr__(self) -> str:
        return (
            f"ULDBRelation({self.name}, {len(self.xtuples)} x-tuples, "
            f"{self.alternative_count()} alternatives)"
        )


class ULDB:
    """A ULDB database: named ULDB relations sharing a lineage space."""

    def __init__(self) -> None:
        self.relations: Dict[str, ULDBRelation] = {}

    def add_relation(self, relation: ULDBRelation) -> None:
        if relation.name in self.relations:
            raise ValueError(f"relation {relation.name!r} already exists")
        self.relations[relation.name] = relation

    def get(self, name: str) -> ULDBRelation:
        try:
            return self.relations[name]
        except KeyError:
            raise KeyError(
                f"unknown ULDB relation {name!r}; have {sorted(self.relations)}"
            ) from None

    # ------------------------------------------------------------------
    # lineage machinery
    # ------------------------------------------------------------------
    def resolve(self, ref: AltRef) -> Optional[Alternative]:
        """The alternative a reference denotes, or None (external symbol)."""
        name, tid, index = ref
        relation = self.relations.get(name)
        if relation is None:
            return None
        xtuple = relation.xtuple(tid)
        if xtuple is None or not (1 <= index <= len(xtuple.alternatives)):
            return None
        return xtuple.alternatives[index - 1]

    def lineage_closure(self, ref: AltRef) -> Optional[Set[AltRef]]:
        """Transitive closure of lineage from one alternative.

        Returns the set of base references the alternative (transitively)
        depends on, or ``None`` when the closure hits a dangling reference
        (an external symbol that is not satisfiable).
        """
        seen: Set[AltRef] = set()
        frontier = [ref]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            alternative = self.resolve(current)
            if alternative is None:
                return None
            frontier.extend(alternative.lineage)
        return seen

    def closure_consistent(self, refs: Iterable[AltRef]) -> bool:
        """Whether a set of references can hold in one world.

        The closure must not require two different alternatives of the same
        x-tuple, and must not dangle.
        """
        combined: Set[AltRef] = set()
        for ref in refs:
            closure = self.lineage_closure(ref)
            if closure is None:
                return False
            combined |= closure
        chosen: Dict[Tuple[str, Any], int] = {}
        for name, tid, index in combined:
            key = (name, tid)
            if chosen.setdefault(key, index) != index:
                return False
        return True

    # ------------------------------------------------------------------
    # possible-worlds semantics
    # ------------------------------------------------------------------
    def worlds(self) -> Iterator[Dict[str, Relation]]:
        """Enumerate all worlds (exponential — oracle for tests).

        A world is a choice of one alternative per x-tuple (or none for
        optional x-tuples) whose combined lineage closure is consistent.
        """
        all_xtuples: List[Tuple[str, XTuple]] = [
            (name, x) for name, rel in sorted(self.relations.items()) for x in rel
        ]
        options: List[List[Optional[int]]] = []
        for _name, xtuple in all_xtuples:
            indices: List[Optional[int]] = list(range(1, len(xtuple.alternatives) + 1))
            if xtuple.optional:
                indices.append(None)
            options.append(indices)
        seen_worlds: Set[Tuple] = set()
        for combo in itertools.product(*options):
            chosen_refs = [
                (name, x.tid, index)
                for (name, x), index in zip(all_xtuples, combo)
                if index is not None
            ]
            if not self._world_consistent(chosen_refs, dict(
                ((name, x.tid), index) for (name, x), index in zip(all_xtuples, combo)
            )):
                continue
            world = self._materialize(chosen_refs)
            key = tuple(sorted((n, tuple(sorted(map(repr, r.rows)))) for n, r in world.items()))
            if key not in seen_worlds:
                seen_worlds.add(key)
                yield world

    def _world_consistent(
        self, refs: List[AltRef], assignment: Dict[Tuple[str, Any], Optional[int]]
    ) -> bool:
        """Every chosen alternative's lineage must hold under the assignment."""
        for ref in refs:
            closure = self.lineage_closure(ref)
            if closure is None:
                return False
            for name, tid, index in closure:
                if assignment.get((name, tid)) != index:
                    return False
        return True

    def _materialize(self, refs: List[AltRef]) -> Dict[str, Relation]:
        rows: Dict[str, List[Tuple[Any, ...]]] = {name: [] for name in self.relations}
        for name, tid, index in refs:
            alternative = self.resolve((name, tid, index))
            assert alternative is not None
            rows[name].append(alternative.values)
        return {
            name: Relation(Schema(self.relations[name].attributes), rows[name]).distinct()
            for name in self.relations
        }

    def total_alternatives(self) -> int:
        return sum(rel.alternative_count() for rel in self.relations.values())

    def __repr__(self) -> str:
        inner = ", ".join(repr(rel) for rel in self.relations.values())
        return f"ULDB({inner})"
